#include "bus/tl2_bus.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <stdexcept>

namespace sct::bus {

Tl2Bus::Tl2Bus(sim::Clock& clock, std::string name)
    : sim::Module(clock.kernel(), std::move(name)), clock_(clock) {
  processId_ = clock_.onFallingRaw(
      [](void* self) {
        auto* bus = static_cast<Tl2Bus*>(self);
        if (bus->perCycle_) {
          bus->busProcess();
        } else {
          bus->eventProcess();
        }
      },
      this);
  firstEdge_ = currentEdge();
  // Event mode: nothing scheduled yet, so sleep until the first accept.
  parkProcess(sim::Clock::kNeverWake);
}

Tl2Bus::~Tl2Bus() { clock_.removeHandler(processId_); }

void Tl2Bus::setPerCycleProcess(bool v) {
  if (v == perCycle_) return;
  if (!idle()) {
    throw std::logic_error(name() +
                           ": setPerCycleProcess with transactions in flight");
  }
  if (v) {
    // Materialise the lazily derived counters, then continue ticking
    // them per falling edge from the next edge on.
    syncLazyStats();
    parkProcess(0);
  } else {
    // Re-base the lazy counters so they extend the ticked ones.
    firstEdge_ = lastVirtualEdge() + 1 - stats_.cycles;
    closedBusyCycles_ = stats_.busyCycles;
    busyOpen_ = false;
    addrFree_ = readFree_ = writeFree_ = 0;
    parkProcess(sim::Clock::kNeverWake);
  }
  perCycle_ = v;
}

void Tl2Bus::removeObserver(Tl2Observer& obs) {
  auto it = std::find(observers_.begin(), observers_.end(), &obs);
  if (it == observers_.end()) return;
  if (notifyDepth_ > 0) {
    // Mid-notification: keep indices stable, compact afterwards.
    *it = nullptr;
    observersDirty_ = true;
  } else {
    observers_.erase(it);
  }
}

void Tl2Bus::notifyAddressPhase(const Tl2PhaseInfo& info) {
  ++notifyDepth_;
  // By index, with the size snapshotted: callbacks may detach any
  // observer (slot nulled above) or attach new ones (first notified
  // from the next phase).
  const std::size_t n = observers_.size();
  for (std::size_t i = 0; i < n && i < observers_.size(); ++i) {
    if (Tl2Observer* obs = observers_[i]) obs->addressPhaseDone(info);
  }
  --notifyDepth_;
  if (notifyDepth_ == 0 && observersDirty_) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(),
                                 static_cast<Tl2Observer*>(nullptr)),
                     observers_.end());
    observersDirty_ = false;
  }
}

void Tl2Bus::notifyDataPhase(const Tl2PhaseInfo& info) {
  ++notifyDepth_;
  const std::size_t n = observers_.size();
  for (std::size_t i = 0; i < n && i < observers_.size(); ++i) {
    if (Tl2Observer* obs = observers_[i]) obs->dataPhaseDone(info);
  }
  --notifyDepth_;
  if (notifyDepth_ == 0 && observersDirty_) {
    observers_.erase(std::remove(observers_.begin(), observers_.end(),
                                 static_cast<Tl2Observer*>(nullptr)),
                     observers_.end());
    observersDirty_ = false;
  }
}

BusStatus Tl2Bus::read(Tl2Request& req) {
  if (req.kind == Kind::Write) {
    throw std::logic_error(name() + ": write request on the read interface");
  }
  return submitOrPoll(req);
}

BusStatus Tl2Bus::write(Tl2Request& req) {
  if (req.kind != Kind::Write) {
    throw std::logic_error(name() + ": read request on the write interface");
  }
  return submitOrPoll(req);
}

bool Tl2Bus::validate(const Tl2Request& req) const {
  if (req.data == nullptr) return false;
  if ((req.address & ~kAddressMask) != 0) return false;
  switch (req.bytes) {
    case 1: return true;
    case 2: return (req.address & 0x1u) == 0;
    case 4:
    case 8:
    case 12:
    case 16: return (req.address & 0x3u) == 0;
    default: return false;
  }
}

unsigned& Tl2Bus::outstanding(Kind k) {
  switch (k) {
    case Kind::InstrFetch: return outstandingInstr_;
    case Kind::Read: return outstandingRead_;
    case Kind::Write: return outstandingWrite_;
  }
  assert(false && "Tl2Bus::outstanding: corrupted Kind");
  std::abort();
}

std::uint64_t Tl2Bus::currentEdge() const {
  // The falling edge the bus process would next run in (equivalently:
  // the edge a submit made right now is first visible to). During the
  // rising dispatch of cycle C that is C's own falling edge; during the
  // falling dispatch it is already the *next* cycle's, because this
  // bus's falling slot precedes any code that could call in here (the
  // bus is constructed before its masters). Outside a cycle, cycle C is
  // complete and the next falling edge belongs to C + 1.
  const std::uint64_t c = clock_.cycle();
  return (clock_.midCycle() && !clock_.inFallingDispatch()) ? c : c + 1;
}

BusStatus Tl2Bus::submitOrPoll(Tl2Request& req) {
  // Event mode defers phase bookkeeping while no observer is attached;
  // bring it current first so the outstanding slots, stages and results
  // below reflect every boundary the per-cycle model would have
  // processed by now.
  if (!perCycle_) retireDue();
  switch (req.stage) {
    case Tl2Stage::Idle: {
      if (!validate(req)) {
        req.result = BusStatus::Error;
        return BusStatus::Error;
      }
      if (outstanding(req.kind) >= kMaxOutstandingPerClass) {
        return BusStatus::Wait;
      }
      // Timing estimation happens at creation time: sample the decoded
      // slave's wait states now (paper, Section 3.2).
      req.slave = decoder_.decode(req.address);
      const unsigned beats = req.beatCount();
      if (req.slave >= 0) {
        const SlaveControl& c = decoder_.control(req.slave);
        const bool allowed =
            c.allows(req.kind) && c.contains(req.address + req.bytes - 1);
        if (allowed) {
          req.addrCycles = c.addrWait + 1;
          const unsigned dataWait =
              req.kind == Kind::Write ? c.writeWait : c.readWait;
          req.dataCycles = dataWait + beats + c.burstBeatWait * (beats - 1);
        } else {
          req.slave = -1;  // Treated like a decode miss below.
        }
      }
      if (req.slave < 0) {
        req.addrCycles = 1;
        req.dataCycles = 0;
      }
      req.addrCyclesLeft = req.addrCycles;
      req.dataCyclesLeft = req.dataCycles;
      req.stage = Tl2Stage::Queued;
      req.result = BusStatus::Wait;
      req.acceptCycle = clock_.cycle();
      ++outstanding(req.kind);
      if (perCycle_) {
        requestQueue_.push_back(&req);
      } else {
        scheduleRequest(req);
      }
      if constexpr (obs::kEnabled) {
        if (obsDepth_ != nullptr) {
          obsDepth_->record(requestQueue_.size());
        }
      }
      return BusStatus::Request;
    }
    case Tl2Stage::Finished: {
      const BusStatus result = req.result;
      req.stage = Tl2Stage::Idle;
      return result;
    }
    default:
      return BusStatus::Wait;
  }
}

bool Tl2Bus::idle() const {
  if (!perCycle_) retireDue();
  return requestQueue_.empty() && readQueue_.empty() && writeQueue_.empty() &&
         addrCurrent_ == nullptr && readCurrent_ == nullptr &&
         writeCurrent_ == nullptr;
}

const Tl2BusStats& Tl2Bus::stats() const {
  if (!perCycle_) {
    retireDue();
    syncLazyStats();
  }
  return stats_;
}

void Tl2Bus::retireDue() const {
  const std::uint64_t e = lastVirtualEdge();
  if (e == lastRetireEdge_) return;
  lastRetireEdge_ = e;
  // Logically const: everything retired here is determined by the
  // schedule fixed at accept; only its materialisation is deferred.
  const_cast<Tl2Bus*>(this)->retireThrough(e);
}

void Tl2Bus::retireThrough(std::uint64_t through) {
  std::uint64_t last = 0;
  bool any = false;
  // Address boundaries first: a request's address phase always precedes
  // its data phase, and address completions touch no slave state, so
  // draining them ahead of the data walk is order-safe.
  while (!requestQueue_.empty() &&
         requestQueue_.front()->addrDoneCycle <= through) {
    Tl2Request& req = *requestQueue_.front();
    requestQueue_.pop_front();
    last = req.addrDoneCycle;  // Fronts ascend.
    any = true;
    completeAddressPhase(req, /*notify=*/false);
  }
  // Data boundaries in global completion order: block transfers touch
  // slave memory, so reads and writes must interleave exactly as the
  // per-cycle units dispatch them (ascending cycle; the read unit runs
  // first on a shared edge).
  for (;;) {
    const std::uint64_t r = readQueue_.empty()
                                ? sim::Clock::kNeverWake
                                : readQueue_.front()->dataDoneCycle;
    const std::uint64_t w = writeQueue_.empty()
                                ? sim::Clock::kNeverWake
                                : writeQueue_.front()->dataDoneCycle;
    const std::uint64_t boundary = std::min(r, w);
    if (boundary > through) break;
    completeDataPhase(r <= w ? readQueue_ : writeQueue_, /*notify=*/false);
    if (boundary > last) last = boundary;
    any = true;
  }
  if (any && busyOpen_ && requestQueue_.empty() && readQueue_.empty() &&
      writeQueue_.empty()) {
    closedBusyCycles_ += last - busyFrom_ + 1;
    busyOpen_ = false;
  }
}

std::uint64_t Tl2Bus::lastVirtualEdge() const {
  // Last falling edge the per-cycle process would have seen by now.
  const std::uint64_t c = clock_.cycle();
  if (clock_.midCycle() && !clock_.inFallingDispatch()) {
    return c == 0 ? 0 : c - 1;
  }
  return c;
}

void Tl2Bus::syncLazyStats() const {
  const std::uint64_t e = lastVirtualEdge();
  stats_.cycles = (e >= firstEdge_) ? e - firstEdge_ + 1 : 0;
  stats_.busyCycles = closedBusyCycles_;
  if (busyOpen_) {
    const std::uint64_t upTo = std::min(e, nextEventCycle());
    if (upTo >= busyFrom_) stats_.busyCycles += upTo - busyFrom_ + 1;
  }
}

std::uint64_t Tl2Bus::nextEventCycle() const {
  std::uint64_t next = sim::Clock::kNeverWake;
  if (!requestQueue_.empty()) {
    next = std::min(next, requestQueue_.front()->addrDoneCycle);
  }
  if (!readQueue_.empty()) {
    next = std::min(next, readQueue_.front()->dataDoneCycle);
  }
  if (!writeQueue_.empty()) {
    next = std::min(next, writeQueue_.front()->dataDoneCycle);
  }
  return next;
}

std::uint64_t Tl2Bus::nextFinishCycle() const {
  if (perCycle_) return kFinishUnknown;
  // Doubles as the masters' sync point: a wake-on-completion master
  // asks for the next finish at the top of its cycle, and the retire
  // below publishes every stage transition the per-cycle model would
  // have made by now (O(1) when already current).
  retireDue();
  // Earliest pending completion: per class the oldest unfinished
  // transaction completes first (the unit is FIFO and its free cycle is
  // monotone), so the queue fronts carry the candidates. Decode misses
  // finish with their address phase and are tracked separately —
  // a miss queued behind a slow transfer may finish long before it.
  std::uint64_t next = kFinishNone;
  if (!readQueue_.empty()) {
    next = std::min(next, readQueue_.front()->dataDoneCycle);
  }
  if (!writeQueue_.empty()) {
    next = std::min(next, writeQueue_.front()->dataDoneCycle);
  }
  if (!missFinishCycles_.empty()) {
    next = std::min(next, missFinishCycles_.front());
  }
  return next;
}

void Tl2Bus::scheduleRequest(Tl2Request& req) {
  // Resolve the whole phase schedule with event arithmetic. The first
  // falling edge that can serve the request is the one a per-cycle
  // process would first see it on; each unit serialises FIFO, so its
  // next-free cycle fully determines the phase placement.
  const std::uint64_t submit = currentEdge();
  const std::uint64_t addrStart = std::max(submit, addrFree_);
  req.addrDoneCycle = addrStart + req.addrCycles - 1;
  addrFree_ = req.addrDoneCycle + 1;
  if (req.slave < 0) {
    // Decode miss: finishes (with Error) at the end of the address
    // phase; no data phase.
    req.dataDoneCycle = 0;
    missFinishCycles_.push_back(req.addrDoneCycle);
  } else {
    // Pipeline-fill coarseness: the data unit picks the transaction up
    // the cycle after the address phase completed, or as soon as the
    // unit drains its backlog.
    std::uint64_t& dataFree =
        (req.kind == Kind::Write) ? writeFree_ : readFree_;
    const std::uint64_t dataStart = std::max(req.addrDoneCycle + 1, dataFree);
    req.dataDoneCycle = dataStart + req.dataCycles - 1;
    dataFree = req.dataDoneCycle + 1;
    auto& queue = (req.kind == Kind::Write) ? writeQueue_ : readQueue_;
    queue.push_back(&req);
  }
  requestQueue_.push_back(&req);
  if (!busyOpen_) {
    busyOpen_ = true;
    busyFrom_ = submit;
  }
  // Wake the bus process for the earliest pending boundary — but only
  // if somebody needs exact-cycle callbacks. With no observers the
  // whole schedule retires lazily from the interface entry points and
  // the process never has to run.
  parkProcess(observers_.empty() ? sim::Clock::kNeverWake : nextEventCycle());
}

void Tl2Bus::eventProcess() {
  const std::uint64_t e = clock_.cycle();
  // Boundaries deferred from an observer-free stretch (the process only
  // wakes while observers are attached, but a detach can leave it armed
  // with older boundaries still pending) retire silently first.
  retireThrough(e - 1);
  // Same intra-edge order as the per-cycle process: both data units
  // before the address unit. At most one boundary per unit can land on
  // one edge, and a data phase never completes on its own address-done
  // edge, so the front checks below are exhaustive.
  if (!readQueue_.empty() && readQueue_.front()->dataDoneCycle == e) {
    completeDataPhase(readQueue_, /*notify=*/true);
  }
  if (!writeQueue_.empty() && writeQueue_.front()->dataDoneCycle == e) {
    completeDataPhase(writeQueue_, /*notify=*/true);
  }
  if (!requestQueue_.empty() && requestQueue_.front()->addrDoneCycle == e) {
    Tl2Request& req = *requestQueue_.front();
    requestQueue_.pop_front();
    completeAddressPhase(req, /*notify=*/true);
  }
  const std::uint64_t next = nextEventCycle();
  if (next == sim::Clock::kNeverWake && busyOpen_) {
    // Last boundary of the backlog: close the busy interval.
    closedBusyCycles_ += e - busyFrom_ + 1;
    busyOpen_ = false;
  }
  parkProcess(observers_.empty() ? sim::Clock::kNeverWake : next);
}

void Tl2Bus::completeAddressPhase(Tl2Request& req, bool notify) {
  if (notify && !observers_.empty()) {
    Tl2PhaseInfo info;
    info.kind = req.kind;
    info.address = req.address;
    info.bytes = req.bytes;
    info.beats = req.beatCount();
    info.cycles = req.addrCycles;
    info.slave = req.slave;
    info.error = req.slave < 0;
    notifyAddressPhase(info);
  }
  req.addrCyclesLeft = 0;
  if constexpr (obs::kEnabled) {
    if (obsRec_ != nullptr) noteAddrPhaseObs(req);
  }
  if (req.slave < 0) {
    missFinishCycles_.pop_front();
    finish(req, BusStatus::Error, req.addrDoneCycle);
  } else {
    req.stage = Tl2Stage::DataWait;
  }
}

void Tl2Bus::completeDataPhase(RequestRing& queue, bool notify) {
  Tl2Request& req = *queue.front();
  queue.pop_front();

  // One pointer-passing block transfer at the end of the phase.
  EcSlave& slave = decoder_.slave(req.slave);
  bool ok;
  if (req.kind == Kind::Write) {
    ok = slave.writeBlock(req.address, req.data, req.bytes);
  } else {
    ok = slave.readBlock(req.address, req.data, req.bytes);
  }

  if (notify && !observers_.empty()) {
    Tl2PhaseInfo info;
    info.kind = req.kind;
    info.address = req.address;
    info.data = req.data;
    info.bytes = req.bytes;
    info.beats = req.beatCount();
    info.cycles = req.dataCycles;
    info.slave = req.slave;
    info.error = !ok;
    notifyDataPhase(info);
  }
  req.dataCyclesLeft = 0;
  if constexpr (obs::kEnabled) {
    if (obsRec_ != nullptr) noteDataPhaseObs(req);
  }
  finish(req, ok ? BusStatus::Ok : BusStatus::Error, req.dataDoneCycle);
}

void Tl2Bus::busProcess() {
  ++stats_.cycles;
  const bool busy = !idle();
  // Data units run before the address unit: a transaction leaving the
  // address phase this cycle is first served by an idle data unit in
  // the next cycle (the pipeline-fill estimation coarseness documented
  // in the header), while a backlogged data unit loses nothing.
  dataPhase(readCurrent_, readQueue_);
  dataPhase(writeCurrent_, writeQueue_);
  addressPhase();
  if (busy) ++stats_.busyCycles;
}

void Tl2Bus::finish(Tl2Request& req, BusStatus result, std::uint64_t cycle) {
  req.result = result;
  req.stage = Tl2Stage::Finished;
  req.finishCycle = cycle;
  --outstanding(req.kind);
  switch (req.kind) {
    case Kind::InstrFetch: ++stats_.instrTransactions; break;
    case Kind::Read: ++stats_.readTransactions; break;
    case Kind::Write: ++stats_.writeTransactions; break;
  }
  if (result == BusStatus::Error) {
    ++stats_.errors;
  } else if (req.kind == Kind::Write) {
    stats_.bytesWritten += req.bytes;
  } else {
    stats_.bytesRead += req.bytes;
  }
  if constexpr (obs::kEnabled) {
    if (obsLatency_ != nullptr) noteFinishObs(req, result);
  }
}

void Tl2Bus::reset() {
  if (!idle()) {  // idle() retires due boundaries in event mode first.
    throw std::logic_error(name() + ": reset with transactions in flight");
  }
  assert(missFinishCycles_.empty());
  assert(outstandingInstr_ == 0 && outstandingRead_ == 0 &&
         outstandingWrite_ == 0);
  stats_ = Tl2BusStats{};
  addrFree_ = readFree_ = writeFree_ = 0;
  lastRetireEdge_ = 0;
  firstEdge_ = currentEdge();
  busyFrom_ = 0;
  closedBusyCycles_ = 0;
  busyOpen_ = false;
  parkProcess(perCycle_ ? 0 : sim::Clock::kNeverWake);
}

void Tl2Bus::saveState(ckpt::StateWriter& w) const {
  if (!idle()) {  // Retires due boundaries, so the lazy state is current.
    throw ckpt::CheckpointError(
        "Tl2Bus::saveState: bus is not idle (not a quiesce point)");
  }
  w.b(perCycle_);
  w.u64(stats_.cycles);
  w.u64(stats_.busyCycles);
  w.u64(stats_.instrTransactions);
  w.u64(stats_.readTransactions);
  w.u64(stats_.writeTransactions);
  w.u64(stats_.errors);
  w.u64(stats_.bytesRead);
  w.u64(stats_.bytesWritten);
  w.u64(addrFree_);
  w.u64(readFree_);
  w.u64(writeFree_);
  w.u64(parkedWake_);
  w.u64(lastRetireEdge_);
  w.u64(firstEdge_);
  w.u64(busyFrom_);
  w.u64(closedBusyCycles_);
  w.b(busyOpen_);
}

void Tl2Bus::loadState(ckpt::StateReader& r) {
  if (!idle()) {
    throw ckpt::CheckpointError(
        "Tl2Bus::loadState: restore target bus is not idle");
  }
  const bool savedPerCycle = r.b();
  if (savedPerCycle != perCycle_) {
    throw ckpt::CheckpointError(
        "Tl2Bus::loadState: process mode differs from the saved bus "
        "(call setPerCycleProcess before restoring)");
  }
  stats_.cycles = r.u64();
  stats_.busyCycles = r.u64();
  stats_.instrTransactions = r.u64();
  stats_.readTransactions = r.u64();
  stats_.writeTransactions = r.u64();
  stats_.errors = r.u64();
  stats_.bytesRead = r.u64();
  stats_.bytesWritten = r.u64();
  addrFree_ = r.u64();
  readFree_ = r.u64();
  writeFree_ = r.u64();
  // Mirror only: the handler's actual wake cycle was restored by the
  // Clock section, which loads before any bus.
  parkedWake_ = r.u64();
  lastRetireEdge_ = r.u64();
  firstEdge_ = r.u64();
  busyFrom_ = r.u64();
  closedBusyCycles_ = r.u64();
  busyOpen_ = r.b();
}

void Tl2Bus::attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec) {
  if constexpr (obs::kEnabled) {
    const std::string& n = name();
    obsDepth_ = &reg.histogram(n + ".queue_depth", {1, 2, 4, 8});
    obsErrors_ = &reg.counter(n + ".bus_errors");
    obsRec_ = rec;
    // Last: obsLatency_ doubles as the attached flag, so it must only
    // become non-null once every other handle is live.
    obsLatency_ =
        &reg.histogram(n + ".txn_latency_cycles", {1, 2, 4, 8, 16, 32});
  } else {
    (void)reg;
    (void)rec;
  }
}

void Tl2Bus::noteAddrPhaseObs(const Tl2Request& req) {
  obsRec_->span("tl2", "addr_phase", req.addrDoneCycle - req.addrCycles + 1,
                req.addrDoneCycle, obs::Track::AddrPhase,
                obs::TraceArg{"addr", req.address});
}

void Tl2Bus::noteDataPhaseObs(const Tl2Request& req) {
  obsRec_->span("tl2", "data_phase", req.dataDoneCycle - req.dataCycles + 1,
                req.dataDoneCycle, obs::Track::DataPhase,
                obs::TraceArg{"addr", req.address},
                obs::TraceArg{"bytes", req.bytes});
}

void Tl2Bus::noteFinishObs(const Tl2Request& req, BusStatus result) {
  obsLatency_->record(req.finishCycle - req.acceptCycle + 1);
  if (result == BusStatus::Error) obsErrors_->add();
  if (obsRec_ != nullptr) {
    obsRec_->span("tl2", toString(req.kind).data(), req.acceptCycle,
                  req.finishCycle, obs::Track::Bus,
                  obs::TraceArg{"addr", req.address},
                  obs::TraceArg{"bytes", req.bytes});
  }
}

void Tl2Bus::addressPhase() {
  if (addrCurrent_ == nullptr) {
    if (requestQueue_.empty()) return;
    addrCurrent_ = requestQueue_.front();
    requestQueue_.pop_front();
  }
  Tl2Request& req = *addrCurrent_;
  if (req.addrCyclesLeft > 0) --req.addrCyclesLeft;
  if (req.addrCyclesLeft > 0) return;

  // Address phase finishes this cycle.
  Tl2PhaseInfo info;
  info.kind = req.kind;
  info.address = req.address;
  info.bytes = req.bytes;
  info.beats = req.beatCount();
  info.cycles = req.addrCycles;
  info.slave = req.slave;
  info.error = req.slave < 0;
  notifyAddressPhase(info);

  if (req.slave < 0) {
    finish(req, BusStatus::Error, clock_.cycle());
  } else {
    req.stage = Tl2Stage::DataWait;
    if (req.kind == Kind::Write) {
      writeQueue_.push_back(&req);
    } else {
      readQueue_.push_back(&req);
    }
  }
  addrCurrent_ = nullptr;
}

void Tl2Bus::dataPhase(Tl2Request*& current, RequestRing& queue) {
  if (current == nullptr) {
    if (queue.empty()) return;
    current = queue.front();
    queue.pop_front();
  }
  Tl2Request& req = *current;
  if (req.dataCyclesLeft > 0) --req.dataCyclesLeft;
  if (req.dataCyclesLeft > 0) return;

  // Data phase finishes this cycle: one pointer-passing block transfer.
  EcSlave& slave = decoder_.slave(req.slave);
  bool ok;
  if (req.kind == Kind::Write) {
    ok = slave.writeBlock(req.address, req.data, req.bytes);
  } else {
    ok = slave.readBlock(req.address, req.data, req.bytes);
  }

  Tl2PhaseInfo info;
  info.kind = req.kind;
  info.address = req.address;
  info.data = req.data;
  info.bytes = req.bytes;
  info.beats = req.beatCount();
  info.cycles = req.dataCycles;
  info.slave = req.slave;
  info.error = !ok;
  notifyDataPhase(info);

  finish(req, ok ? BusStatus::Ok : BusStatus::Error, clock_.cycle());
  current = nullptr;
}

} // namespace sct::bus
