#include "bus/memory_slave.h"

#include <cstring>
#include <stdexcept>

namespace sct::bus {

MemorySlave::MemorySlave(std::string name, const SlaveControl& control)
    : name_(std::move(name)),
      control_(control),
      size_(static_cast<std::size_t>(control.size)) {
  if (control_.size == 0) {
    throw std::invalid_argument("MemorySlave: zero-sized window");
  }
  bytes_.resize(size_, 0);
}

MemorySlave::MemorySlave(std::string name, const SlaveControl& control,
                         const std::uint8_t* sharedImage)
    : name_(std::move(name)),
      control_(control),
      shared_(sharedImage),
      size_(static_cast<std::size_t>(control.size)) {
  if (control_.size == 0) {
    throw std::invalid_argument("MemorySlave: zero-sized window");
  }
  if (sharedImage == nullptr) {
    throw std::invalid_argument("MemorySlave: null shared image");
  }
}

BusStatus MemorySlave::readBeat(Address addr, AccessSize size, Word& out) {
  const auto n = static_cast<std::size_t>(size);
  if (!inWindow(addr, n)) return BusStatus::Error;
  // Reads are returned on word-aligned lanes, as on the EC read bus.
  const std::size_t wordOff = offset(addr) & ~std::size_t{3};
  Word w = 0;
  std::memcpy(&w, roData() + wordOff, 4);
  out = w;
  return BusStatus::Ok;
}

BusStatus MemorySlave::writeBeat(Address addr, AccessSize size,
                                 std::uint8_t byteEnables, Word in) {
  const auto n = static_cast<std::size_t>(size);
  if (!inWindow(addr, n)) return BusStatus::Error;
  if (pendingStretch_ < extraWritePerBeat_) {
    ++pendingStretch_;
    return BusStatus::Wait;
  }
  pendingStretch_ = 0;
  materialize();
  const std::size_t wordOff = offset(addr) & ~std::size_t{3};
  for (unsigned lane = 0; lane < 4; ++lane) {
    if (byteEnables & (1u << lane)) {
      bytes_[wordOff + lane] =
          static_cast<std::uint8_t>((in >> (8 * lane)) & 0xFFu);
    }
  }
  return BusStatus::Ok;
}

bool MemorySlave::readBlock(Address addr, std::uint8_t* dst, std::size_t n) {
  if (!inWindow(addr, n)) return false;
  std::memcpy(dst, roData() + offset(addr), n);
  return true;
}

bool MemorySlave::writeBlock(Address addr, const std::uint8_t* src,
                             std::size_t n) {
  if (!inWindow(addr, n)) return false;
  materialize();
  std::memcpy(&bytes_[offset(addr)], src, n);
  return true;
}

void MemorySlave::load(Address busAddr, const std::uint8_t* src,
                       std::size_t n) {
  if (!inWindow(busAddr, n)) {
    throw std::out_of_range("MemorySlave::load outside window");
  }
  materialize();
  std::memcpy(&bytes_[offset(busAddr)], src, n);
}

Word MemorySlave::peekWord(Address busAddr) const {
  if (!inWindow(busAddr, 4)) {
    throw std::out_of_range("MemorySlave::peekWord outside window");
  }
  Word w = 0;
  std::memcpy(&w, roData() + offset(busAddr), 4);
  return w;
}

void MemorySlave::pokeWord(Address busAddr, Word value) {
  if (!inWindow(busAddr, 4)) {
    throw std::out_of_range("MemorySlave::pokeWord outside window");
  }
  materialize();
  std::memcpy(&bytes_[offset(busAddr)], &value, 4);
}

} // namespace sct::bus
