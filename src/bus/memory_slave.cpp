#include "bus/memory_slave.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sct::bus {

MemorySlave::MemorySlave(std::string name, const SlaveControl& control)
    : name_(std::move(name)),
      control_(control),
      size_(static_cast<std::size_t>(control.size)) {
  if (control_.size == 0) {
    throw std::invalid_argument("MemorySlave: zero-sized window");
  }
  bytes_.resize(size_, 0);
  dirty_.resize((pageCount() + 63) / 64, 0);
}

MemorySlave::MemorySlave(std::string name, const SlaveControl& control,
                         const std::uint8_t* sharedImage)
    : name_(std::move(name)),
      control_(control),
      shared_(sharedImage),
      baseline_(sharedImage),
      size_(static_cast<std::size_t>(control.size)) {
  if (control_.size == 0) {
    throw std::invalid_argument("MemorySlave: zero-sized window");
  }
  if (sharedImage == nullptr) {
    throw std::invalid_argument("MemorySlave: null shared image");
  }
  dirty_.resize((pageCount() + 63) / 64, 0);
}

bool MemorySlave::readBlock(Address addr, std::uint8_t* dst, std::size_t n) {
  if (!inWindow(addr, n)) return false;
  std::memcpy(dst, roData() + offset(addr), n);
  return true;
}

bool MemorySlave::writeBlock(Address addr, const std::uint8_t* src,
                             std::size_t n) {
  if (!inWindow(addr, n)) return false;
  materialize();
  markRange(offset(addr), n);
  std::memcpy(&bytes_[offset(addr)], src, n);
  return true;
}

void MemorySlave::load(Address busAddr, const std::uint8_t* src,
                       std::size_t n) {
  if (!inWindow(busAddr, n)) {
    throw std::out_of_range("MemorySlave::load outside window");
  }
  materialize();
  markRange(offset(busAddr), n);
  std::memcpy(&bytes_[offset(busAddr)], src, n);
}

Word MemorySlave::peekWord(Address busAddr) const {
  if (!inWindow(busAddr, 4)) {
    throw std::out_of_range("MemorySlave::peekWord outside window");
  }
  Word w = 0;
  std::memcpy(&w, roData() + offset(busAddr), 4);
  return w;
}

void MemorySlave::pokeWord(Address busAddr, Word value) {
  if (!inWindow(busAddr, 4)) {
    throw std::out_of_range("MemorySlave::pokeWord outside window");
  }
  materialize();
  markRange(offset(busAddr), 4);
  std::memcpy(&bytes_[offset(busAddr)], &value, 4);
}

std::uint64_t MemorySlave::imageDigest() const {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  const std::uint8_t* p = roData();
  for (std::size_t i = 0; i < size_; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a 64-bit prime.
  }
  return h;
}

void MemorySlave::saveState(ckpt::StateWriter& w) const {
  w.u64(static_cast<std::uint64_t>(size_));
  w.u64(static_cast<std::uint64_t>(extraWritePerBeat_));
  w.u64(static_cast<std::uint64_t>(pendingStretch_));
  // A still-shared slave is bit-identical to its baseline by
  // construction; pay the page diff only once something materialized.
  if (shared_ != nullptr) {
    w.u32(0);
    return;
  }
  // Only runtime-marked pages can differ from the baseline; the memcmp
  // drops false positives (a write that restored the original bytes),
  // so the emitted page set — and the snapshot bytes — are identical
  // to a full scan.
  std::vector<std::uint32_t> dirty;
  const std::uint8_t* live = bytes_.data();
  for (std::size_t off = 0, page = 0; off < size_;
       off += kCkptPageBytes, ++page) {
    if (!pageDirty(page)) continue;
    const std::size_t n = std::min(kCkptPageBytes, size_ - off);
    bool same;
    if (baseline_ != nullptr) {
      same = std::memcmp(live + off, baseline_ + off, n) == 0;
    } else {
      same = true;
      for (std::size_t i = 0; i < n && same; ++i) {
        same = live[off + i] == 0;
      }
    }
    if (!same) dirty.push_back(static_cast<std::uint32_t>(page));
  }
  w.u32(static_cast<std::uint32_t>(dirty.size()));
  for (const std::uint32_t page : dirty) {
    const std::size_t off = static_cast<std::size_t>(page) * kCkptPageBytes;
    const std::size_t n = std::min(kCkptPageBytes, size_ - off);
    w.u32(page);
    w.u32(static_cast<std::uint32_t>(n));
    w.bytes(live + off, n);
  }
}

void MemorySlave::loadState(ckpt::StateReader& r) {
  if (r.u64() != size_) {
    throw ckpt::CheckpointError("MemorySlave::loadState: '" + name_ +
                                "' size differs from the saved slave");
  }
  extraWritePerBeat_ = static_cast<unsigned>(r.u64());
  pendingStretch_ = static_cast<unsigned>(r.u64());
  const std::uint32_t pages = r.u32();
  if (pages == 0 && shared_ != nullptr) {
    return;  // Clean snapshot onto a still-shared slave: stay COW.
  }
  // Re-baseline only the runtime-dirty pages (the only ones that can
  // differ), then overwrite with the snapshot's pages — each snapshot
  // page carries its full span, so it needs no baseline reset first.
  // Restore cost is proportional to pages touched since the last
  // restore, not to the memory size.
  materialize();
  for (std::size_t page = 0, count = pageCount(); page < count; ++page) {
    if (!pageDirty(page)) continue;
    const std::size_t off = page * kCkptPageBytes;
    const std::size_t n = std::min(kCkptPageBytes, size_ - off);
    if (baseline_ != nullptr) {
      std::memcpy(&bytes_[off], baseline_ + off, n);
    } else {
      std::memset(&bytes_[off], 0, n);
    }
  }
  std::fill(dirty_.begin(), dirty_.end(), 0);
  for (std::uint32_t i = 0; i < pages; ++i) {
    const std::uint32_t page = r.u32();
    const std::uint32_t n = r.u32();
    const std::size_t off = static_cast<std::size_t>(page) * kCkptPageBytes;
    if (off + n > size_ || n > kCkptPageBytes) {
      throw ckpt::CheckpointError("MemorySlave::loadState: '" + name_ +
                                  "' dirty page out of range");
    }
    r.bytes(&bytes_[off], n);
    // The restored page differs from the baseline (saveState only
    // records true diffs), so it re-enters the runtime dirty set.
    markPage(page);
  }
}

} // namespace sct::bus
