// Fixed-capacity FIFO ring for the transaction-level bus queues.
//
// The layer-2 bus bounds its backlog by construction: at most
// kMaxOutstandingPerClass transactions per class can be outstanding, so
// every internal queue holds a small, statically known maximum. A ring
// over an inline array keeps push/pop/front at a couple of ALU ops with
// no allocation — std::deque pays a heap segment map plus an
// indirection per access for queues that never exceed a dozen entries.
#ifndef SCT_BUS_SMALL_RING_H
#define SCT_BUS_SMALL_RING_H

#include <array>
#include <cassert>
#include <cstdint>

namespace sct::bus {

/// N must be a power of two and an upper bound the caller can prove;
/// overflow is a programming error (asserted, not handled).
template <typename T, unsigned N>
class SmallRing {
  static_assert(N > 0 && (N & (N - 1)) == 0, "capacity must be a power of two");

 public:
  bool empty() const { return head_ == tail_; }
  std::uint32_t size() const { return tail_ - head_; }

  T& front() {
    assert(!empty());
    return slots_[head_ & (N - 1)];
  }
  const T& front() const {
    assert(!empty());
    return slots_[head_ & (N - 1)];
  }

  void push_back(const T& v) {
    assert(size() < N && "SmallRing overflow: bound proven too small");
    slots_[tail_++ & (N - 1)] = v;
  }
  void pop_front() {
    assert(!empty());
    ++head_;
  }

 private:
  std::array<T, N> slots_{};
  std::uint32_t head_ = 0;
  std::uint32_t tail_ = 0;
};

} // namespace sct::bus

#endif // SCT_BUS_SMALL_RING_H
