// EC bus model at transaction level layer 1 (transfer layer).
//
// Cycle-true model of the EC interface plus bus controller, following
// the paper's Figure 3: the single bus process is sensitive to the
// falling edge of the system clock (masters and slaves trigger on the
// rising edge) and executes four phases per cycle —
//   getSlaveState();  addressPhase();  readPhase();  writePhase();
// Four queues connect the interfaces and the phases: a request queue
// filled by the master interfaces, a read queue and a write queue
// filled by the address phase, and the finished state picked up by the
// next master interface call addressing the request. Because the
// address and data phases execute sequentially within one activation, a
// zero-wait request can pass from the request queue to the finish state
// in a single cycle, exactly as the paper describes.
//
// The master interfaces are non-blocking and return
// {Request, Wait, Ok, Error}; by polling, a master can keep several
// transactions in flight (up to four outstanding burst instruction
// reads, four burst data reads and four burst writes — the 4KSc limit).
#ifndef SCT_BUS_TL1_BUS_H
#define SCT_BUS_TL1_BUS_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/ec_types.h"
#include "obs/stats.h"
#include "obs/trace_json.h"
#include "sim/clock.h"
#include "sim/module.h"

namespace sct::bus {

/// Aggregate counters kept by the layer-1 bus.
struct Tl1BusStats {
  std::uint64_t cycles = 0;        ///< Bus-process activations.
  std::uint64_t busyCycles = 0;    ///< Cycles with any phase active.
  std::uint64_t addrCycles = 0;    ///< Cycles the address phase was active.
  std::uint64_t readBeats = 0;
  std::uint64_t writeBeats = 0;
  std::uint64_t instrTransactions = 0;
  std::uint64_t readTransactions = 0;
  std::uint64_t writeTransactions = 0;
  std::uint64_t readBusErrors = 0;   ///< Errors signalled on the read bus.
  std::uint64_t writeBusErrors = 0;  ///< Errors signalled on the write bus.
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;

  std::uint64_t transactions() const {
    return instrTransactions + readTransactions + writeTransactions;
  }
};

class Tl1Bus final : public sim::Module, public EcInstrIf, public EcDataIf {
 public:
  /// Creates the bus and hooks its process onto the falling clock edge.
  Tl1Bus(sim::Clock& clock, std::string name);
  ~Tl1Bus() override;

  /// Register a slave with the bus controller's address decoder.
  /// Returns the slave index (select line).
  int attach(EcSlave& slave) {
    const int idx = decoder_.attach(slave);
    slaveControls_.push_back(&slave.control());
    return idx;
  }

  void addObserver(Tl1Observer& obs) { observers_.push_back(&obs); }
  void removeObserver(Tl1Observer& obs);

  // EcInstrIf / EcDataIf (master side, call on rising edges).
  BusStatus fetch(Tl1Request& req) override;
  BusStatus read(Tl1Request& req) override;
  BusStatus write(Tl1Request& req) override;
  // The bus process moves req.stage to Finished itself; intermediate
  // polls are side-effect-free, so masters may gate on the stage field.
  bool publishesStage() const override { return true; }

  /// True when no transaction is queued or in flight.
  bool idle() const;

  /// Accepted-but-unfinished transactions across all three classes.
  /// Zero exactly when idle() — finish() decrements the class count as
  /// it posts the result, so a Finished payload awaiting master pickup
  /// is no longer outstanding (the pickup needs no bus process cycle).
  /// Assert-guarded against the queue state, so quiesce checks can rely
  /// on either view.
  std::uint64_t outstandingTotal() const;

  /// Park the falling-edge bus process indefinitely. Legal only while
  /// idle(): a suspended bus accepts no work (masters must stop
  /// submitting first), runs no observer callbacks, and counts no
  /// cycles, so the clock may warp over it. Finished payloads can still
  /// be picked up — submitOrPoll() runs in the caller's context.
  void suspendProcess();
  /// Re-arm the bus process; it runs again from the next falling edge
  /// not yet dispatched.
  void resumeProcess();
  bool suspended() const { return suspended_; }

  const Tl1BusStats& stats() const { return stats_; }
  const AddressDecoder& decoder() const { return decoder_; }
  std::uint64_t cycle() const { return clock_.cycle(); }

  /// Resolve observability handles under "<name>." in `reg`
  /// (txn_latency_cycles, txn_wait_cycles, burst_beats, queue_depth,
  /// bus_errors) and optionally emit transaction spans to `rec`.
  void attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec = nullptr);

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// Only legal while idle(): at a quiesce point every queue is empty
  /// and no request pointer is held, so the section is just the stats
  /// block plus the cycle/suspend bookkeeping. The process handler's
  /// park state is owned (and restored) by the Clock section.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  BusStatus submitOrPoll(Tl1Request& req, Kind expectedKind);
  bool validate(const Tl1Request& req) const;
  unsigned& outstanding(Kind k);
  unsigned outstanding(Kind k) const;

  void busProcess();
  void addressPhase();
  void readPhase();
  void writePhase();
  void dataPhase(Tl1Request*& current, std::deque<Tl1Request*>& queue);
  void finish(Tl1Request& req, BusStatus result);
  void noteFinishObs(const Tl1Request& req, BusStatus result);
  void publishAddressPhase(const AddressPhaseInfo& info);
  void publishBeat(const DataBeatInfo& info, bool isWrite);

  sim::Clock& clock_;
  sim::Clock::HandlerId processId_;
  AddressDecoder decoder_;
  std::vector<Tl1Observer*> observers_;
  std::vector<const SlaveControl*> slaveControls_;  ///< Cached at attach().

  std::deque<Tl1Request*> requestQueue_;
  std::deque<Tl1Request*> readQueue_;   ///< Instr fetches + data reads.
  std::deque<Tl1Request*> writeQueue_;
  Tl1Request* addrCurrent_ = nullptr;
  Tl1Request* readCurrent_ = nullptr;
  Tl1Request* writeCurrent_ = nullptr;

  unsigned outstandingInstr_ = 0;
  unsigned outstandingRead_ = 0;
  unsigned outstandingWrite_ = 0;

  std::uint64_t cycleNow_ = 0;
  bool suspended_ = false;
  bool anyActivityThisCycle_ = false;
  Tl1BusStats stats_;

  // Observability handles, resolved once by attachObs (null = detached;
  // obsLatency_ doubles as the attached flag).
  obs::Histogram* obsLatency_ = nullptr;
  obs::Histogram* obsWaits_ = nullptr;
  obs::Histogram* obsBurst_ = nullptr;
  obs::Histogram* obsDepth_ = nullptr;
  obs::Counter* obsErrors_ = nullptr;
  obs::TraceRecorder* obsRec_ = nullptr;
};

} // namespace sct::bus

#endif // SCT_BUS_TL1_BUS_H
