// EC bus model at transaction level layer 1 (transfer layer).
//
// Cycle-true model of the EC interface plus bus controller, following
// the paper's Figure 3: the single bus process is sensitive to the
// falling edge of the system clock (masters and slaves trigger on the
// rising edge) and executes four phases per cycle —
//   getSlaveState();  addressPhase();  readPhase();  writePhase();
// Four queues connect the interfaces and the phases: a request queue
// filled by the master interfaces, a read queue and a write queue
// filled by the address phase, and the finished state picked up by the
// next master interface call addressing the request. Because the
// address and data phases execute sequentially within one activation, a
// zero-wait request can pass from the request queue to the finish state
// in a single cycle, exactly as the paper describes.
//
// The master interfaces are non-blocking and return
// {Request, Wait, Ok, Error}; by polling, a master can keep several
// transactions in flight (up to four outstanding burst instruction
// reads, four burst data reads and four burst writes — the 4KSc limit).
#ifndef SCT_BUS_TL1_BUS_H
#define SCT_BUS_TL1_BUS_H

#include <array>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/ec_types.h"
#include "obs/stats.h"
#include "obs/trace_json.h"
#include "sim/clock.h"
#include "sim/module.h"

namespace sct::bus {

class BusCodec;
class MemorySlave;

/// Aggregate counters kept by the layer-1 bus.
struct Tl1BusStats {
  std::uint64_t cycles = 0;        ///< Bus-process activations.
  std::uint64_t busyCycles = 0;    ///< Cycles with any phase active.
  std::uint64_t addrCycles = 0;    ///< Cycles the address phase was active.
  std::uint64_t readBeats = 0;
  std::uint64_t writeBeats = 0;
  std::uint64_t instrTransactions = 0;
  std::uint64_t readTransactions = 0;
  std::uint64_t writeTransactions = 0;
  std::uint64_t readBusErrors = 0;   ///< Errors signalled on the read bus.
  std::uint64_t writeBusErrors = 0;  ///< Errors signalled on the write bus.
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;

  std::uint64_t transactions() const {
    return instrTransactions + readTransactions + writeTransactions;
  }
};

class Tl1Bus final : public sim::Module, public EcInstrIf, public EcDataIf {
 public:
  /// Creates the bus and hooks its process onto the falling clock edge.
  Tl1Bus(sim::Clock& clock, std::string name);
  ~Tl1Bus() override;

  /// Register a slave with the bus controller's address decoder.
  /// Returns the slave index (select line).
  int attach(EcSlave& slave);

  /// Register an observer. An observer advertising a fused frame-energy
  /// engine (Tl1Observer::fusedFrameEnergy) is captured into the direct
  /// drive slot instead of the observer list — one engine per bus; any
  /// further fusing observers fall back to the virtual path.
  void addObserver(Tl1Observer& obs);
  void removeObserver(Tl1Observer& obs);

  /// Install a low-power bus codec (see bus/bus_codec.h) or remove it
  /// (nullptr). The codec transforms the words driven on the wires —
  /// the power model prices the encoded values plus the EB_Inv
  /// sideband — while the functional side keeps seeing decoded
  /// payloads. Only legal while idle(): swapping codecs mid-transfer
  /// would split a burst across encodings. The codec is exploration
  /// configuration, not bus state: it is NOT part of the bus's
  /// checkpoint section (register stateful codecs separately).
  void setCodec(BusCodec* codec);
  BusCodec* codec() const { return codec_; }

  // EcInstrIf / EcDataIf (master side, call on rising edges).
  BusStatus fetch(Tl1Request& req) override;
  BusStatus read(Tl1Request& req) override;
  BusStatus write(Tl1Request& req) override;
  // The bus process moves req.stage to Finished itself; intermediate
  // polls are side-effect-free, so masters may gate on the stage field.
  bool publishesStage() const override { return true; }
  /// Completion epoch (see EcInstrIf::finishEpoch): bumped by finish(),
  /// i.e. exactly when a Finished payload becomes collectable and when
  /// an outstanding class slot frees — the only two events a
  /// stage-gated master waits on. One counter serves both interfaces;
  /// masters summing the two reads still observe a monotonic value.
  std::uint64_t finishEpoch() const override { return finishEpoch_; }

  /// True when no transaction is queued or in flight.
  bool idle() const;

  /// Accepted-but-unfinished transactions across all three classes.
  /// Zero exactly when idle() — finish() decrements the class count as
  /// it posts the result, so a Finished payload awaiting master pickup
  /// is no longer outstanding (the pickup needs no bus process cycle).
  /// Assert-guarded against the queue state, so quiesce checks can rely
  /// on either view.
  std::uint64_t outstandingTotal() const;

  /// Park the falling-edge bus process indefinitely. Legal only while
  /// idle(): a suspended bus accepts no work (masters must stop
  /// submitting first), runs no observer callbacks, and counts no
  /// cycles, so the clock may warp over it. Finished payloads can still
  /// be picked up — submitOrPoll() runs in the caller's context.
  void suspendProcess();
  /// Re-arm the bus process; it runs again from the next falling edge
  /// not yet dispatched.
  void resumeProcess();
  bool suspended() const { return suspended_; }

  const Tl1BusStats& stats() const { return stats_; }
  const AddressDecoder& decoder() const { return decoder_; }
  std::uint64_t cycle() const { return clock_.cycle(); }

  /// Resolve observability handles under "<name>." in `reg`
  /// (txn_latency_cycles, txn_wait_cycles, burst_beats, queue_depth,
  /// bus_errors) and optionally emit transaction spans to `rec`.
  void attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec = nullptr);

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// Only legal while idle(): at a quiesce point every queue is empty
  /// and no request pointer is held, so the section is just the stats
  /// block plus the cycle/suspend bookkeeping. The process handler's
  /// park state is owned (and restored) by the Clock section.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  /// Fixed-capacity FIFO of request pointers. Total queue occupancy is
  /// bounded by the per-class outstanding limits (at most
  /// 3 * kMaxOutstandingPerClass accepted-but-unfinished requests exist
  /// at any time), so a 16-slot ring never overflows — asserted. The
  /// unsigned head/tail cursors may wrap; the masked difference stays
  /// correct because the capacity divides the cursor modulus.
  class RequestRing {
   public:
    bool empty() const { return head_ == tail_; }
    std::size_t size() const {
      return static_cast<std::size_t>(tail_ - head_);
    }
    void push_back(Tl1Request* r) {
      assert(size() < kCap && "request ring overflow");
      slots_[tail_++ & kMask] = r;
    }
    Tl1Request* front() const { return slots_[head_ & kMask]; }
    void pop_front() { ++head_; }

   private:
    static constexpr std::uint32_t kCap = 16;
    static constexpr std::uint32_t kMask = kCap - 1;
    std::array<Tl1Request*, kCap> slots_{};
    std::uint32_t head_ = 0;
    std::uint32_t tail_ = 0;
  };

  BusStatus submitOrPoll(Tl1Request& req, Kind expectedKind);
  bool validate(const Tl1Request& req) const;
  unsigned& outstanding(Kind k);
  unsigned outstanding(Kind k) const;

  void busProcess();
  void addressPhase();
  void readPhase();
  void writePhase();
  void dataPhase(Tl1Request*& current, RequestRing& queue);
  void finish(Tl1Request& req, BusStatus result);
  void noteFinishObs(const Tl1Request& req, BusStatus result);
  void publishAddressPhase(const AddressPhaseInfo& info);
  void publishBeat(const DataBeatInfo& info, bool isWrite);

  sim::Clock& clock_;
  sim::Clock::HandlerId processId_;
  AddressDecoder decoder_;
  /// Installed low-power codec (null = plain binary wires). Checked on
  /// the data-phase hot path only after a beat actually completes, so
  /// the null case costs one predictable branch per beat.
  BusCodec* codec_ = nullptr;
  /// Fused frame-energy engine (see Tl1Observer::fusedFrameEnergy):
  /// driven directly from the phases, before the observer list, and
  /// never a member of it. Null when no fusing observer is attached.
  Tl1FrameEnergy* fe_ = nullptr;
  /// The observer that supplied fe_ (for removeObserver symmetry).
  Tl1Observer* feOwner_ = nullptr;
  /// True iff anyone consumes phase events (fe_ or observers_): lets
  /// the phases skip building the per-event info structs entirely.
  bool publish_ = false;
  std::vector<Tl1Observer*> observers_;
  std::vector<const SlaveControl*> slaveControls_;  ///< Cached at attach().
  /// Beat-call devirtualization: slot i holds the slave as a
  /// MemorySlave* iff its dynamic type is exactly MemorySlave (checked
  /// at attach), so the data phase can call the beat functions
  /// directly — same functions, no vtable hop, inlinable under LTO.
  /// Subclasses and foreign EcSlave implementations leave a null slot
  /// and take the virtual path.
  std::vector<MemorySlave*> directSlaves_;

  RequestRing requestQueue_;
  RequestRing readQueue_;   ///< Instr fetches + data reads.
  RequestRing writeQueue_;
  Tl1Request* addrCurrent_ = nullptr;
  Tl1Request* readCurrent_ = nullptr;
  Tl1Request* writeCurrent_ = nullptr;

  unsigned outstandingInstr_ = 0;
  unsigned outstandingRead_ = 0;
  unsigned outstandingWrite_ = 0;
  std::uint64_t finishEpoch_ = 0;  ///< Bumped by finish(); not persisted
                                   ///  (masters resync on restore).

  std::uint64_t cycleNow_ = 0;
  bool suspended_ = false;
  bool anyActivityThisCycle_ = false;
  Tl1BusStats stats_;

  // Observability handles, resolved once by attachObs (null = detached;
  // obsLatency_ doubles as the attached flag).
  obs::Histogram* obsLatency_ = nullptr;
  obs::Histogram* obsWaits_ = nullptr;
  obs::Histogram* obsBurst_ = nullptr;
  obs::Histogram* obsDepth_ = nullptr;
  obs::Counter* obsErrors_ = nullptr;
  obs::TraceRecorder* obsRec_ = nullptr;
};

} // namespace sct::bus

#endif // SCT_BUS_TL1_BUS_H
