// EC bus model at transaction level layer 2 (transaction layer).
//
// Timed but not cycle-accurate (paper, Section 3.2): data is transferred
// by pointer passing and a whole burst is a single transaction. The
// actual wait states of the decoded slave are sampled when the request
// is created during the first interface call; from them the model
// derives an address-phase length and a data-phase length in cycles.
// The bus process (falling clock edge) decrements the address wait-state
// counter until the address phase can be finished, then the data
// wait-state counter; at the end of the data phase the slave's block
// data interface is invoked once.
//
// Like layer 1, the model keeps one address unit and parallel read and
// write data units (the EC interface has separate read and write data
// buses). Two abstractions make the timing an estimate rather than
// cycle truth:
//  1. Pipeline fill: when a data unit is idle, a transaction leaving
//     the address phase reaches it one estimated cycle later than in
//     the cycle-true model (which hands over within the same bus
//     process activation). Under backlog nothing is lost, so dense
//     traffic sees only a small systematic over-estimation — the
//     paper's Table 1 "+0.5 %" shape.
//  2. Wait states are sampled once at creation: a slave stretching a
//     beat dynamically at run time (EEPROM programming, busy
//     coprocessor) is invisible, which under-estimates such workloads.
//
// Because all timing is sampled at creation, nothing about a phase
// depends on the cycles in between — so by default the bus is
// *event-driven*: at accept it resolves the whole phase schedule with
// event arithmetic (address-done cycle, data-done cycle, serialised
// per unit exactly as the counters would serialise them) and parks its
// clock handler until the next phase boundary. Combined with the
// clock's dead-cycle warp, idle and wait-state cycles cost nothing.
// The original per-cycle countdown survives behind a testing hook
// (setPerCycleProcess) as the reference implementation; both paths
// produce bit-identical stats, observer callbacks and request fields.
#ifndef SCT_BUS_TL2_BUS_H
#define SCT_BUS_TL2_BUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/ec_types.h"
#include "bus/small_ring.h"
#include "obs/stats.h"
#include "obs/trace_json.h"
#include "sim/clock.h"
#include "sim/module.h"

namespace sct::bus {

struct Tl2BusStats {
  std::uint64_t cycles = 0;
  std::uint64_t busyCycles = 0;
  std::uint64_t instrTransactions = 0;
  std::uint64_t readTransactions = 0;
  std::uint64_t writeTransactions = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;

  std::uint64_t transactions() const {
    return instrTransactions + readTransactions + writeTransactions;
  }
};

class Tl2Bus final : public sim::Module, public Tl2MasterIf {
 public:
  Tl2Bus(sim::Clock& clock, std::string name);
  ~Tl2Bus() override;

  int attach(EcSlave& slave) { return decoder_.attach(slave); }

  /// Observers may attach and detach from within their own callbacks;
  /// a removal during a notification takes effect immediately (the
  /// observer is not called again, not even for the current phase), an
  /// addition from the next phase on.
  ///
  /// While no observer is attached the event-driven bus defers phase
  /// bookkeeping entirely (see retireDue); attaching first retires the
  /// backlog — phases that completed before the attach are never
  /// reported, exactly as in the per-cycle model — and re-arms the bus
  /// process so every later boundary is processed (and notified) on its
  /// own cycle.
  void addObserver(Tl2Observer& obs) {
    if (!perCycle_ && notifyDepth_ == 0) {
      retireDue();
      parkProcess(nextEventCycle());
    }
    observers_.push_back(&obs);
  }
  void removeObserver(Tl2Observer& obs);

  // Tl2MasterIf. Instruction fetches use read() with kind ==
  // Kind::InstrFetch (the "instruction bit" parameter of the paper).
  BusStatus read(Tl2Request& req) override;
  BusStatus write(Tl2Request& req) override;
  // The bus process moves req.stage to Finished itself; intermediate
  // polls are side-effect-free, so masters may gate on the stage field.
  bool publishesStage() const override { return true; }
  std::uint64_t nextFinishCycle() const override;

  bool idle() const;

  const Tl2BusStats& stats() const;
  const AddressDecoder& decoder() const { return decoder_; }
  std::uint64_t cycle() const { return clock_.cycle(); }

  /// Testing hook (PR 1 kernel fast-path pattern): route the bus back
  /// through the original per-cycle countdown process instead of the
  /// event-driven schedule. Reference behaviour by construction; the
  /// equivalence suite pins the event path against it. Only legal while
  /// the bus is idle. In per-cycle mode nextFinishCycle() answers
  /// kFinishUnknown, so masters fall back to polling every cycle and
  /// the hook covers the whole TL2 stack.
  void setPerCycleProcess(bool v);
  bool perCycleProcess() const { return perCycle_; }

  /// Resolve observability handles under "<name>." in `reg`
  /// (txn_latency_cycles, queue_depth, bus_errors) and optionally emit
  /// transaction/phase spans to `rec`. Spans carry the schedule's cycle
  /// numbers (acceptCycle, addrDoneCycle, dataDoneCycle), so they are
  /// exact even when boundaries are retired lazily after a clock warp.
  void attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec = nullptr);

  /// Deterministic reset to the state a bus constructed at this instant
  /// would have (the companion of Tl2MasterBridge::reset()): zeroed
  /// stats, free units, re-based lazy cycle counters, process parked
  /// until the next accept. Requires idle() — every schedule retired,
  /// no master-owned request pointer held; masters holding Finished
  /// payloads keep them (pickup needs no bus state).
  void reset();

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// Only legal while idle(): the queues, unit slots and the miss ring
  /// are empty then, so the section carries the stats block, the unit
  /// free-cycles and the lazy retirement/busy-interval bookkeeping. The
  /// process handler's park state is restored by the Clock section; the
  /// restore target must already be in the same process mode
  /// (setPerCycleProcess) as the saved bus.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  BusStatus submitOrPoll(Tl2Request& req);
  bool validate(const Tl2Request& req) const;
  unsigned& outstanding(Kind k);

  /// Bound for every internal queue: three classes at
  /// kMaxOutstandingPerClass outstanding each, rounded up to a power of
  /// two for the ring arithmetic.
  using RequestRing = SmallRing<Tl2Request*, 16>;

  // --- per-cycle reference path -------------------------------------------
  void busProcess();
  void addressPhase();
  void dataPhase(Tl2Request*& current, RequestRing& queue);

  // --- event-driven path ---------------------------------------------------
  void scheduleRequest(Tl2Request& req);
  void eventProcess();
  void completeAddressPhase(Tl2Request& req, bool notify);
  void completeDataPhase(RequestRing& queue, bool notify);
  std::uint64_t nextEventCycle() const;
  std::uint64_t lastVirtualEdge() const;
  void syncLazyStats() const;
  /// Observer-free fast path: all phase timing is resolved at accept,
  /// so with nobody listening for exact-cycle callbacks the bus process
  /// never needs to wake at all. Boundaries that have already passed
  /// (cycle <= lastVirtualEdge()) are retired in bulk from the
  /// interface entry points instead — every cycle, stage transition and
  /// statistic comes out of the recorded schedule, bit-identical to
  /// processing each boundary on its own edge. O(1) when current.
  void retireDue() const;
  /// Process every pending phase boundary with cycle <= `through`,
  /// silently (these boundaries all predate any observer; data
  /// transfers replay in global completion order so slave memory sees
  /// the per-cycle interleaving).
  void retireThrough(std::uint64_t through);
  /// Park the bus process until `wake`, skipping the clock call when
  /// the handler is already parked there (the mirror is exact: nothing
  /// else parks this handler).
  void parkProcess(std::uint64_t wake) {
    if (wake != parkedWake_) {
      parkedWake_ = wake;
      clock_.parkHandler(processId_, wake);
    }
  }

  // --- shared --------------------------------------------------------------
  void finish(Tl2Request& req, BusStatus result, std::uint64_t cycle);
  SCT_OBS_COLD void noteFinishObs(const Tl2Request& req, BusStatus result);
  SCT_OBS_COLD void noteAddrPhaseObs(const Tl2Request& req);
  SCT_OBS_COLD void noteDataPhaseObs(const Tl2Request& req);
  void notifyAddressPhase(const Tl2PhaseInfo& info);
  void notifyDataPhase(const Tl2PhaseInfo& info);
  std::uint64_t currentEdge() const;

  sim::Clock& clock_;
  sim::Clock::HandlerId processId_;
  AddressDecoder decoder_;
  std::vector<Tl2Observer*> observers_;
  int notifyDepth_ = 0;
  bool observersDirty_ = false;

  // Per-cycle mode: requestQueue_ feeds the address unit, the data
  // queues are filled as address phases complete, and the *Current_
  // slots hold the request each unit is counting down.
  // Event mode: a request sits in requestQueue_ until its address-done
  // cycle and (decode hits only, from accept on) in its class data
  // queue until its data-done cycle; fronts carry the next boundary of
  // each unit, ascending by construction. The *Current_ slots stay
  // null.
  RequestRing requestQueue_;
  RequestRing readQueue_;   ///< Fetches and data reads.
  RequestRing writeQueue_;
  Tl2Request* addrCurrent_ = nullptr;
  Tl2Request* readCurrent_ = nullptr;
  Tl2Request* writeCurrent_ = nullptr;

  unsigned outstandingInstr_ = 0;
  unsigned outstandingRead_ = 0;
  unsigned outstandingWrite_ = 0;

  bool perCycle_ = false;

  // Event-mode unit bookkeeping: first cycle each unit is free again,
  // and the decode-miss finish cycles still pending (ascending).
  std::uint64_t addrFree_ = 0;
  std::uint64_t readFree_ = 0;
  std::uint64_t writeFree_ = 0;
  std::uint64_t parkedWake_ = 0;  ///< Mirror of the handler's wake cycle.
  mutable std::uint64_t lastRetireEdge_ = 0;  ///< retireDue() currency guard.
  SmallRing<std::uint64_t, 16> missFinishCycles_;

  // Event-mode lazy cycle counters: cycles/busyCycles are derived on
  // stats() from the clock position and the busy intervals instead of
  // being ticked every falling edge.
  std::uint64_t firstEdge_ = 1;
  std::uint64_t busyFrom_ = 0;
  std::uint64_t closedBusyCycles_ = 0;
  bool busyOpen_ = false;

  mutable Tl2BusStats stats_;

  // Observability handles, resolved once by attachObs (null = detached;
  // obsLatency_ doubles as the attached flag).
  obs::Histogram* obsLatency_ = nullptr;
  obs::Histogram* obsDepth_ = nullptr;
  obs::Counter* obsErrors_ = nullptr;
  obs::TraceRecorder* obsRec_ = nullptr;
};

} // namespace sct::bus

#endif // SCT_BUS_TL2_BUS_H
