// EC bus model at transaction level layer 2 (transaction layer).
//
// Timed but not cycle-accurate (paper, Section 3.2): data is transferred
// by pointer passing and a whole burst is a single transaction. The
// actual wait states of the decoded slave are sampled when the request
// is created during the first interface call; from them the model
// derives an address-phase length and a data-phase length in cycles.
// The bus process (falling clock edge) decrements the address wait-state
// counter until the address phase can be finished, then the data
// wait-state counter; at the end of the data phase the slave's block
// data interface is invoked once.
//
// Like layer 1, the model keeps one address unit and parallel read and
// write data units (the EC interface has separate read and write data
// buses). Two abstractions make the timing an estimate rather than
// cycle truth:
//  1. Pipeline fill: when a data unit is idle, a transaction leaving
//     the address phase reaches it one estimated cycle later than in
//     the cycle-true model (which hands over within the same bus
//     process activation). Under backlog nothing is lost, so dense
//     traffic sees only a small systematic over-estimation — the
//     paper's Table 1 "+0.5 %" shape.
//  2. Wait states are sampled once at creation: a slave stretching a
//     beat dynamically at run time (EEPROM programming, busy
//     coprocessor) is invisible, which under-estimates such workloads.
#ifndef SCT_BUS_TL2_BUS_H
#define SCT_BUS_TL2_BUS_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/ec_types.h"
#include "sim/clock.h"
#include "sim/module.h"

namespace sct::bus {

struct Tl2BusStats {
  std::uint64_t cycles = 0;
  std::uint64_t busyCycles = 0;
  std::uint64_t instrTransactions = 0;
  std::uint64_t readTransactions = 0;
  std::uint64_t writeTransactions = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;

  std::uint64_t transactions() const {
    return instrTransactions + readTransactions + writeTransactions;
  }
};

class Tl2Bus final : public sim::Module, public Tl2MasterIf {
 public:
  Tl2Bus(sim::Clock& clock, std::string name);
  ~Tl2Bus() override;

  int attach(EcSlave& slave) { return decoder_.attach(slave); }

  void addObserver(Tl2Observer& obs) { observers_.push_back(&obs); }
  void removeObserver(Tl2Observer& obs);

  // Tl2MasterIf. Instruction fetches use read() with kind ==
  // Kind::InstrFetch (the "instruction bit" parameter of the paper).
  BusStatus read(Tl2Request& req) override;
  BusStatus write(Tl2Request& req) override;
  // The bus process moves req.stage to Finished itself; intermediate
  // polls are side-effect-free, so masters may gate on the stage field.
  bool publishesStage() const override { return true; }

  bool idle() const;

  const Tl2BusStats& stats() const { return stats_; }
  const AddressDecoder& decoder() const { return decoder_; }
  std::uint64_t cycle() const { return clock_.cycle(); }

 private:
  BusStatus submitOrPoll(Tl2Request& req);
  bool validate(const Tl2Request& req) const;
  unsigned& outstanding(Kind k);

  void busProcess();
  void addressPhase();
  void dataPhase(Tl2Request*& current, std::deque<Tl2Request*>& queue);
  void finish(Tl2Request& req, BusStatus result);

  sim::Clock& clock_;
  sim::Clock::HandlerId processId_;
  AddressDecoder decoder_;
  std::vector<Tl2Observer*> observers_;

  std::deque<Tl2Request*> requestQueue_;
  std::deque<Tl2Request*> readQueue_;   ///< Fetches and data reads.
  std::deque<Tl2Request*> writeQueue_;
  Tl2Request* addrCurrent_ = nullptr;
  Tl2Request* readCurrent_ = nullptr;
  Tl2Request* writeCurrent_ = nullptr;

  unsigned outstandingInstr_ = 0;
  unsigned outstandingRead_ = 0;
  unsigned outstandingWrite_ = 0;

  Tl2BusStats stats_;
};

} // namespace sct::bus

#endif // SCT_BUS_TL2_BUS_H
