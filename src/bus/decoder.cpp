#include "bus/decoder.h"

#include <stdexcept>
#include <string>

namespace sct::bus {

int AddressDecoder::attach(EcSlave& slave) {
  const SlaveControl& c = slave.control();
  if (c.size == 0) {
    throw std::invalid_argument("AddressDecoder: slave '" +
                                std::string(slave.name()) +
                                "' has an empty address window");
  }
  if (c.base > kAddressMask || c.end() - 1 > kAddressMask) {
    throw std::invalid_argument("AddressDecoder: slave '" +
                                std::string(slave.name()) +
                                "' exceeds the 36-bit address space");
  }
  for (const EcSlave* other : slaves_) {
    const SlaveControl& o = other->control();
    const bool disjoint = c.end() <= o.base || o.end() <= c.base;
    if (!disjoint) {
      throw std::invalid_argument("AddressDecoder: slave '" +
                                  std::string(slave.name()) +
                                  "' overlaps slave '" +
                                  std::string(other->name()) + "'");
    }
  }
  slaves_.push_back(&slave);
  controls_.push_back(&c);
  return static_cast<int>(slaves_.size()) - 1;
}

int AddressDecoder::decodeScan(Address addr) const {
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    if (controls_[i]->contains(addr)) {
      lastHit_ = i;
      return static_cast<int>(i);
    }
  }
  return -1;
}

} // namespace sct::bus
