#include "bus/register_slave.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sct::bus {

RegisterSlave::RegisterSlave(std::string name, const SlaveControl& control)
    : name_(std::move(name)), control_(control) {
  if (control_.size == 0) {
    throw std::invalid_argument("RegisterSlave: zero-sized window");
  }
}

void RegisterSlave::defineRegister(Address offset, std::string regName,
                                   ReadHandler read, WriteHandler write) {
  if ((offset & 0x3u) != 0 || offset + 4 > control_.size) {
    throw std::invalid_argument("RegisterSlave: register '" + regName +
                                "' offset invalid");
  }
  for (const Register& r : regs_) {
    if (r.offset == offset) {
      throw std::invalid_argument("RegisterSlave: register offset collision");
    }
  }
  regs_.push_back(Register{offset, std::move(regName), std::move(read),
                           std::move(write)});
}

void RegisterSlave::defineStorageRegister(Address offset, std::string regName,
                                          Word& storage) {
  Word* p = &storage;
  defineRegister(
      offset, std::move(regName), [p]() { return *p; },
      [p](Word v) { *p = v; });
}

const RegisterSlave::Register* RegisterSlave::find(Address addr) const {
  if (!control_.contains(addr)) return nullptr;
  const Address off = (addr - control_.base) & ~Address{3};
  const auto it =
      std::find_if(regs_.begin(), regs_.end(),
                   [off](const Register& r) { return r.offset == off; });
  return it == regs_.end() ? nullptr : &*it;
}

BusStatus RegisterSlave::readBeat(Address addr, AccessSize /*size*/,
                                  Word& out) {
  const Register* r = find(addr);
  if (r == nullptr || !r->read) return BusStatus::Error;
  if (stretch_ > 0) {
    --stretch_;
    return BusStatus::Wait;
  }
  out = r->read();
  return BusStatus::Ok;
}

BusStatus RegisterSlave::writeBeat(Address addr, AccessSize /*size*/,
                                   std::uint8_t byteEnables, Word in) {
  const Register* r = find(addr);
  if (r == nullptr || !r->write) return BusStatus::Error;
  if (stretch_ > 0) {
    --stretch_;
    return BusStatus::Wait;
  }
  // Sub-word writes merge with the current register value when the
  // register is readable; otherwise the enabled lanes are written and
  // the others are zero.
  Word merged = in;
  if (byteEnables != 0xF && r->read) {
    Word cur = r->read();
    merged = 0;
    for (unsigned lane = 0; lane < 4; ++lane) {
      const Word mask = Word{0xFF} << (8 * lane);
      merged |= (byteEnables & (1u << lane)) ? (in & mask) : (cur & mask);
    }
  }
  r->write(merged);
  return BusStatus::Ok;
}

bool RegisterSlave::readBlock(Address addr, std::uint8_t* dst,
                              std::size_t n) {
  // Layer-2 pointer transfers hit registers word by word.
  for (std::size_t done = 0; done < n;) {
    const Register* r = find(addr + done);
    if (r == nullptr || !r->read) return false;
    const Word v = r->read();
    const std::size_t lane = (addr + done) & 0x3u;
    const std::size_t chunk = std::min<std::size_t>(n - done, 4 - lane);
    std::memcpy(dst + done,
                reinterpret_cast<const std::uint8_t*>(&v) + lane, chunk);
    done += chunk;
  }
  return true;
}

bool RegisterSlave::writeBlock(Address addr, const std::uint8_t* src,
                               std::size_t n) {
  for (std::size_t done = 0; done < n;) {
    const Register* r = find(addr + done);
    if (r == nullptr || !r->write) return false;
    const std::size_t lane = (addr + done) & 0x3u;
    const std::size_t chunk = std::min<std::size_t>(n - done, 4 - lane);
    Word v = (r->read) ? r->read() : 0;
    std::memcpy(reinterpret_cast<std::uint8_t*>(&v) + lane, src + done,
                chunk);
    r->write(v);
    done += chunk;
  }
  return true;
}

} // namespace sct::bus
