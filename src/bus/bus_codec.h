// Pluggable low-power bus codec interface (ROADMAP item 4).
//
// A BusCodec sits at the master/slave boundary of the layer-1 bus: it
// transforms the words the bus actually drives on the wires *before*
// the transition-accurate power model sees them, and transforms them
// back before the functional side consumes them. The bus calls the
// codec from its phases:
//
//   address phase:  wire = encodeAddress(payload addr)
//                   slave routing uses decodeAddress(wire) — a real
//                   round trip, so a broken codec breaks correctness,
//                   not just the energy numbers.
//   write beat:     wire = encodeWrite(payload); slave receives
//                   decodeWrite(wire); on beat completion (Ok) the bus
//                   calls commitWrite(wire) to advance codec state.
//   read beat:      slave produces the payload; wire =
//                   encodeRead(payload); master receives
//                   decodeRead(wire); commitRead(wire) on Ok.
//
// The encode*/commit* split exists because a slave may stretch a data
// phase with Wait states: the wire is not driven that cycle, so a
// stateful codec (bus-invert) must not advance its last-driven-word
// history. The bus therefore *peeks* the encoding every poll cycle and
// commits exactly once, when the beat completes with Ok. Error beats
// never drive the data wires and are never committed.
//
// Codecs may signal a word-level inversion through EncodedWord::invert;
// the bus forwards it to the power model as the EB_Inv sideband bundle
// (one invert line per data bus), so the control-line overhead of
// bus-invert style codes is part of the energy picture, as it must be.
//
// Stateful codecs participate in checkpointing: Tl1Bus does NOT
// serialize the codec (it is exploration configuration, swapped per
// variant), but a codec registered with a CheckpointRegistry via the
// explicit-version add() overload restores bit-identically through
// saveState/loadState below.
//
// This header lives in bus/ (like Tl1Observer) so the bus can call the
// codec without depending on src/enc/; the concrete codecs live in the
// SCT_ENC-gated enc library.
#ifndef SCT_BUS_BUS_CODEC_H
#define SCT_BUS_BUS_CODEC_H

#include <cstdint>
#include <string_view>

#include "bus/ec_types.h"
#include "ckpt/state_io.h"

namespace sct::bus {

/// A data word as driven on the wires: the (possibly transformed) word
/// plus the level of the channel's EB_Inv sideband line.
struct EncodedWord {
  Word wire = 0;
  bool invert = false;
};

class BusCodec {
 public:
  virtual ~BusCodec() = default;

  virtual std::string_view name() const = 0;

  // -- Address bus -----------------------------------------------------
  /// Transform the payload address into the word driven on EB_A. Must
  /// be invertible via decodeAddress. Address codecs are memoryless
  /// (the address phase has no per-channel history in this interface).
  virtual std::uint64_t encodeAddress(Address a) const {
    return static_cast<std::uint64_t>(a);
  }
  virtual Address decodeAddress(std::uint64_t wire) const {
    return static_cast<Address>(wire);
  }

  // -- Write-data bus (master -> slave) --------------------------------
  /// Peek the encoding of `payload` against the current channel state.
  /// Must be side-effect free: the bus re-peeks on every Wait-stretched
  /// poll cycle.
  virtual EncodedWord encodeWrite(Word payload) const {
    return {payload, false};
  }
  /// Advance channel state after the beat completed with Ok and `e`
  /// (the result of encodeWrite) was actually driven.
  virtual void commitWrite(const EncodedWord& /*e*/) {}
  virtual Word decodeWrite(const EncodedWord& e) const { return e.wire; }

  // -- Read-data bus (slave -> master) ---------------------------------
  virtual EncodedWord encodeRead(Word payload) const {
    return {payload, false};
  }
  virtual void commitRead(const EncodedWord& /*e*/) {}
  virtual Word decodeRead(const EncodedWord& e) const { return e.wire; }

  // -- Checkpoint section body (register via the explicit-version
  // CheckpointRegistry::add overload, passing ckptVersion()) -----------
  virtual std::uint32_t ckptVersion() const { return 1; }
  virtual void saveState(ckpt::StateWriter& /*w*/) const {}
  virtual void loadState(ckpt::StateReader& /*r*/) {}
};

} // namespace sct::bus

#endif // SCT_BUS_BUS_CODEC_H
