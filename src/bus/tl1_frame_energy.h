// Frame-reconstruction transition-counting engine of the layer-1
// energy model.
//
// This is the hot half of power::Tl1PowerModel (paper, Section 3.3),
// factored out so the layer-1 bus can drive it through non-virtual,
// header-visible calls: when an observer offering a fused engine
// (Tl1Observer::fusedFrameEnergy) attaches to Tl1Bus, the bus invokes
// the engine directly from its phases and the per-event info structs
// and touch chains inline away. The engine is deliberately
// power-agnostic at the interface level — it takes the characterized
// per-signal coefficients as a plain array, so bus/ stays independent
// of power/.
//
// Semantics are exactly the observer-path implementation that
// previously lived inside Tl1PowerModel (same touch/strobe lazy
// deassertion, same scalar dirty-walk and packed-lane pass, same
// accumulation order), so the produced energy, transition counts and
// ledger entries are bit-identical whichever path drives it — the
// equivalence suite pins that down.
#ifndef SCT_BUS_TL1_FRAME_ENERGY_H
#define SCT_BUS_TL1_FRAME_ENERGY_H

#include <array>
#include <bit>
#include <cstdint>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_signals.h"
#include "ckpt/state_io.h"
#include "obs/ledger.h"

namespace sct::bus {

class Tl1FrameEnergy {
 public:
  explicit Tl1FrameEnergy(const std::array<double, kSignalCount>& coeff)
      : coeff_(coeff) {}

  // -- Cycle event hooks (mirror bus::Tl1Observer, non-virtual) --------

  void busCycleBegin(std::uint64_t /*cycle*/) {
    // Open the cycle: buses, qualifiers and select lines hold their
    // values; handshake strobes return to the inactive level. The
    // strobe deassertion is handled lazily — strobe() cancels it for
    // bundles re-driven this cycle, busCycleEnd applies it to the rest
    // — so opening a cycle costs nothing.
  }

  // The event hooks are forced inline: they exist precisely so the bus
  // phases can absorb them (the fused drive path), and at -O3 the
  // inliner's size heuristics otherwise leave them as outlined calls —
  // measurably hot on the Table 3 benchmark.
  [[gnu::always_inline]] inline void addressPhase(
      const AddressPhaseInfo& info) {
    if constexpr (obs::kEnabled) {
      if (ledger_ != nullptr) noteAddressOwners(info);
    }
    touch(SignalId::EB_A, info.address);
    touch(SignalId::EB_Instr, info.kind == Kind::InstrFetch);
    touch(SignalId::EB_Write, info.kind == Kind::Write);
    touch(SignalId::EB_Burst, info.beats > 1);
    touch(SignalId::EB_BE, info.byteEnables);
    strobe(SignalId::EB_AValid);
    touch(SignalId::EB_Sel,
          info.error ? 0 : AddressDecoder::selectMask(info.slave));
    if (info.accepted && !info.error) strobe(SignalId::EB_ARdy);
  }

  [[gnu::always_inline]] inline void readBeat(const DataBeatInfo& info) {
    if constexpr (obs::kEnabled) {
      if (ledger_ != nullptr) noteBeatOwners(info, /*isWrite=*/false);
    }
    if (info.error) {
      strobe(SignalId::EB_RBErr);
      strobe(SignalId::EB_Last);
      return;
    }
    touch(SignalId::EB_RData, info.data);
    // Invert sideband of the read-data bus: level signal, so only the
    // read channel's bit is re-driven — the write bit holds.
    touch(SignalId::EB_Inv,
          (frame_.get(SignalId::EB_Inv) & ~kInvReadBit) |
              (info.invert ? kInvReadBit : 0));
    strobe(SignalId::EB_RdVal);
    if (info.last) strobe(SignalId::EB_Last);
  }

  [[gnu::always_inline]] inline void writeBeat(const DataBeatInfo& info) {
    if constexpr (obs::kEnabled) {
      if (ledger_ != nullptr) noteBeatOwners(info, /*isWrite=*/true);
    }
    if (info.error) {
      strobe(SignalId::EB_WBErr);
      strobe(SignalId::EB_Last);
      return;
    }
    touch(SignalId::EB_WData, info.data);
    touch(SignalId::EB_Inv,
          (frame_.get(SignalId::EB_Inv) & ~kInvWriteBit) |
              (info.invert ? kInvWriteBit : 0));
    strobe(SignalId::EB_WDRdy);
    if (info.last) strobe(SignalId::EB_Last);
  }

  [[gnu::always_inline]] inline void busCycleEnd(std::uint64_t /*cycle*/) {
    // Standard RTL power estimation on the reconstructed signals: count
    // the transitions of each bundle and weight them with the
    // characterized average energy per transition.
    //
    // Hot-path shape: only bundles touched this cycle can differ from
    // their shadow (previous-cycle) value — everything else holds by
    // construction — so near-idle cycles walk the dirty mask with a
    // bare XOR + popcount per bundle, while busy cycles take the
    // packed-lane pass (one wide XOR over the whole frame). Frame
    // values are stored masked. Both paths add the same coefficient
    // terms in the same bundle-index order, so the accumulated energy
    // is bit-identical to the naive all-signals energyFor loop — the
    // equivalence test pins that down.
    //
    // Deferred strobe deassertion: strobes driven high last cycle and
    // not re-driven this cycle drop back to the inactive level now.
    // Folding them into the dirty mask before the walk keeps the
    // energy accumulation in bundle-index order, i.e. bit-identical to
    // eagerly clearing every strobe at busCycleBegin.
    std::uint32_t drop = pendingLow_;
    pendingLow_ = strobeSetMask_;
    strobeSetMask_ = 0;
    dirty_ |= drop;
    while (drop != 0) {
      const unsigned i = static_cast<unsigned>(std::countr_zero(drop));
      drop &= drop - 1;
      // shadow_[i] still holds the high level from the last boundary.
      frame_.set(static_cast<SignalId>(i), 0);
    }
    double e = 0.0;
    std::uint32_t m = dirty_;
    dirty_ = 0;
    if (m != 0 && packed_ && std::popcount(m) >= kPackedLaneThreshold) {
      e = packedCycleEnergy();
    } else {
      while (m != 0) {
        const unsigned i = static_cast<unsigned>(std::countr_zero(m));
        m &= m - 1;
        const std::uint64_t cur = frame_.get(static_cast<SignalId>(i));
        const std::uint64_t diff = shadow_[i] ^ cur;
        if (diff != 0) {
          shadow_[i] = cur;
          const unsigned n = static_cast<unsigned>(std::popcount(diff));
          transitions_[i] += n;
          e += coeff_[i] * static_cast<double>(n);
          if constexpr (obs::kEnabled) {
            // Same product, same accumulation order as `e`: the
            // ledger's deferred cycle sum stays bit-identical to it,
            // and the commit below mirrors `total_fJ_ += e` exactly.
            if (ledger_ != nullptr) {
              ledger_->addDeferred(static_cast<SignalId>(i),
                                   static_cast<obs::TxClass>(ownerClass_[i]),
                                   ownerSlave_[i], master_,
                                   coeff_[i] * static_cast<double>(n));
            }
          }
        }
      }
    }
    lastCycle_fJ_ = e;
    total_fJ_ += e;
    if constexpr (obs::kEnabled) {
      if (ledger_ != nullptr) ledger_->commitCycle();
    }
  }

  // -- Results ---------------------------------------------------------

  double energyLastCycle_fJ() const { return lastCycle_fJ_; }
  double totalEnergy_fJ() const { return total_fJ_; }

  double energySinceLastCall_fJ() {
    const double delta = total_fJ_ - intervalMarker_fJ_;
    intervalMarker_fJ_ = total_fJ_;
    return delta;
  }

  std::uint64_t transitions(SignalId id) const {
    return transitions_[static_cast<std::size_t>(id)];
  }

  /// The frame as reconstructed for the last completed cycle (valid
  /// after busCycleEnd).
  const SignalFrame& frame() const { return frame_; }

  void attachLedger(obs::EnergyLedger& ledger, int master) {
    ledger_ = &ledger;
    master_ = master;
  }

  void setPackedCounting(bool on) { packed_ = on; }
  std::uint64_t packedLaneCycles() const { return packedLaneCycles_; }

  /// -- Checkpoint section body (layout owned by Tl1PowerModel, which
  /// has carried this exact byte order since its kCkptVersion 1).
  void saveState(ckpt::StateWriter& w) const {
    for (std::size_t i = 0; i < kSignalCount; ++i) {
      w.u64(frame_.get(static_cast<SignalId>(i)));
    }
    // At any quiesce point shadow_ == frame_ (busCycleEnd restores the
    // invariant every cycle); the slot layout matches the pre-packed
    // format, which stored one u64 per bundle here as well.
    for (const std::uint64_t v : shadow_) w.u64(v);
    w.u32(dirty_);
    w.u32(strobeSetMask_);
    w.u32(pendingLow_);
    for (const std::uint64_t v : transitions_) w.u64(v);
    w.f64(lastCycle_fJ_);
    w.f64(total_fJ_);
    w.f64(intervalMarker_fJ_);
    for (const std::uint8_t v : ownerClass_) w.u8(v);
    for (const std::int8_t v : ownerSlave_) {
      w.u8(static_cast<std::uint8_t>(v));
    }
  }

  void loadState(ckpt::StateReader& r) {
    for (std::size_t i = 0; i < kSignalCount; ++i) {
      frame_.set(static_cast<SignalId>(i), r.u64());
    }
    for (std::uint64_t& v : shadow_) v = r.u64();
    dirty_ = r.u32();
    strobeSetMask_ = r.u32();
    pendingLow_ = r.u32();
    for (std::uint64_t& v : transitions_) v = r.u64();
    lastCycle_fJ_ = r.f64();
    total_fJ_ = r.f64();
    intervalMarker_fJ_ = r.f64();
    for (std::uint8_t& v : ownerClass_) v = r.u8();
    for (std::int8_t& v : ownerSlave_) v = static_cast<std::int8_t>(r.u8());
  }

 private:
  /// Record a new value for a bundle. The pre-cycle value lives in the
  /// shadow frame (shadow_ == frame_ at every cycle boundary), so a
  /// touch only marks the bundle dirty and writes the new value; a
  /// write that leaves the value as-is is dropped outright (it cannot
  /// produce a transition), so busCycleEnd inspects just the signals
  /// that really moved — every other signal holds by construction.
  /// Handshake strobes must go through strobe() instead: their frame
  /// value is only valid once pending deassertions are accounted for.
  [[gnu::always_inline]] inline void touch(SignalId id, std::uint64_t value) {
    const auto i = static_cast<std::size_t>(id);
    const std::uint64_t masked = value & signalMask(id);
    if (frame_.get(id) == masked) return;  // Holds: no transition.
    dirty_ |= std::uint32_t{1} << i;
    frame_.set(id, masked);
  }

  /// Drive a one-bit handshake strobe to its active level. Strobes are
  /// low at cycle open (busCycleBegin semantics), so the first drive of
  /// a cycle is a 0 -> 1 edge — unless the previous cycle left the
  /// strobe high and its lazy deassertion is still pending, in which
  /// case the strobe simply holds and the deassertion is cancelled.
  [[gnu::always_inline]] inline void strobe(SignalId id) {
    const auto i = static_cast<std::size_t>(id);
    const std::uint32_t bit = std::uint32_t{1} << i;
    if (strobeSetMask_ & bit) return;  // Already high this cycle.
    strobeSetMask_ |= bit;
    if (pendingLow_ & bit) {
      pendingLow_ &= ~bit;  // Held high across the boundary: no edge.
      return;
    }
    // The strobe was low at the last cycle boundary, so shadow_[i] is
    // already 0 — only the new level needs recording.
    dirty_ |= bit;
    frame_.set(id, 1);
  }

  /// Stamp `id`'s attribution owner (used when the ledger is attached;
  /// a strobe deasserting on a later cycle still bills its last
  /// driver).
  void setOwner(SignalId id, obs::TxClass cls, int slave) {
    const auto i = static_cast<std::size_t>(id);
    ownerClass_[i] = static_cast<std::uint8_t>(cls);
    ownerSlave_[i] = static_cast<std::int8_t>(slave);
  }
  void noteAddressOwners(const AddressPhaseInfo& info);
  void noteBeatOwners(const DataBeatInfo& info, bool isWrite);

  /// Price the changed lanes of a busy cycle with one wide XOR pass
  /// over the whole packed frame (see tl1_frame_energy.cpp).
  double packedCycleEnergy();

  /// Minimum dirty-bundle count before the packed-lane pass beats the
  /// scalar dirty-walk on this 16-bundle frame. Idle cycles and near-idle
  /// cycles (a few strobes deasserting) stay on the scalar fast path.
  /// Measured on the Table 3 replay: even with AVX-512 VPOPCNTQ strips
  /// the outlined packed call only wins once most of the frame changed
  /// (lowering this to 4 on an AVX-512 host cost ~5%), so the threshold
  /// is the same with and without the vector path.
  static constexpr int kPackedLaneThreshold = 10;

  std::array<double, kSignalCount> coeff_;
  SignalFrame frame_;  ///< Wire values of the cycle in progress.
  /// Complete frame of the previous cycle, stored as raw lanes so the
  /// packed path can XOR it against frame_.raw() in bulk. Invariant:
  /// shadow_ == frame_ at every cycle boundary.
  std::array<std::uint64_t, kSignalCount> shadow_{};
  std::uint32_t dirty_ = 0;
  std::uint32_t strobeSetMask_ = 0;  ///< Strobes driven high this cycle.
  std::uint32_t pendingLow_ = 0;  ///< Strobes awaiting lazy deassertion.
  std::array<std::uint64_t, kSignalCount> transitions_{};
  double lastCycle_fJ_ = 0.0;
  double total_fJ_ = 0.0;
  double intervalMarker_fJ_ = 0.0;
  bool packed_ = true;  ///< Packed-lane counting enabled (test hook).
  std::uint64_t packedLaneCycles_ = 0;  ///< Diagnostics, not serialized.

  // Energy attribution (null = detached).
  obs::EnergyLedger* ledger_ = nullptr;
  int master_ = 0;
  std::array<std::uint8_t, kSignalCount> ownerClass_{};
  std::array<std::int8_t, kSignalCount> ownerSlave_{};
};
static_assert(kSignalCount <= 32, "dirty_ mask is 32 bits wide");

} // namespace sct::bus

#endif // SCT_BUS_TL1_FRAME_ENERGY_H
