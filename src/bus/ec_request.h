// Transaction payloads for the two transaction-level bus layers.
//
// Layer 1 (transfer layer): one payload describes up to one burst; the
// master re-invokes the non-blocking bus interface with the same payload
// every clock cycle until the bus answers Ok or Error (the paper's
// request/wait/ok/error protocol). The payload carries the progress
// state the bus needs between cycles.
//
// Layer 2 (transaction layer): data is moved by pointer passing and a
// whole burst is a single transaction. The payload stores the wait
// states sampled from the slave at creation time, from which the bus
// process computes the phase delays.
#ifndef SCT_BUS_EC_REQUEST_H
#define SCT_BUS_EC_REQUEST_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "bus/ec_types.h"

namespace sct::bus {

/// Progress of a layer-1 transaction through the bus queues.
enum class Tl1Stage : std::uint8_t {
  Idle,       ///< Not yet submitted (or reset for reuse).
  Requested,  ///< In the request queue, before the address phase.
  Address,    ///< Owning the address phase.
  DataQueued, ///< In the read or write queue.
  Data,       ///< Owning the read or write phase.
  Finished,   ///< Completed; result valid; waiting for master pickup.
};

struct Tl1Request {
  // --- set by the master -------------------------------------------------
  Kind kind = Kind::Read;
  Address address = 0;
  AccessSize size = AccessSize::Word;
  std::uint8_t beats = 1;  ///< 1 for single, 2..4 for bursts (word sized).
  std::array<Word, kMaxBurstBeats> data{};  ///< Write data in / read data out.

  // --- set by the bus ----------------------------------------------------
  BusStatus result = BusStatus::Wait;  ///< Valid once stage == Finished.
  Tl1Stage stage = Tl1Stage::Idle;
  std::uint8_t beatsDone = 0;
  int slave = -1;                 ///< Decoded slave index, -1 if none.
  unsigned waitCount = 0;         ///< Phase-internal wait counter.
  std::uint64_t acceptCycle = 0;  ///< Bus cycle of acceptance.
  std::uint64_t finishCycle = 0;  ///< Bus cycle of completion.

  /// Make the payload reusable for a new transaction.
  void reset() {
    result = BusStatus::Wait;
    stage = Tl1Stage::Idle;
    beatsDone = 0;
    slave = -1;
    waitCount = 0;
  }

  bool burst() const { return beats > 1; }
  std::size_t byteCount() const {
    return burst() ? std::size_t{4} * beats
                   : static_cast<std::size_t>(size);
  }
};

/// Progress of a layer-2 transaction.
enum class Tl2Stage : std::uint8_t {
  Idle,
  Queued,    ///< Accepted; address phase not finished.
  DataWait,  ///< Address phase done; data phase counting down.
  Finished,
};

struct Tl2Request {
  // --- set by the master -------------------------------------------------
  Kind kind = Kind::Read;
  Address address = 0;
  std::uint8_t* data = nullptr;  ///< Pointer-passed payload.
  std::size_t bytes = 0;         ///< 1, 2, 4 or a multiple of 4 up to 16.

  // --- set by the bus ----------------------------------------------------
  BusStatus result = BusStatus::Wait;
  Tl2Stage stage = Tl2Stage::Idle;
  int slave = -1;
  unsigned addrCyclesLeft = 0;  ///< Remaining address-phase cycles.
  unsigned dataCyclesLeft = 0;  ///< Remaining data-phase cycles.
  unsigned addrCycles = 0;      ///< Estimated address-phase length.
  unsigned dataCycles = 0;      ///< Estimated data-phase length.
  std::uint64_t acceptCycle = 0;
  std::uint64_t finishCycle = 0;
  /// Phase schedule resolved at accept time: the cycles in which the
  /// address and data phases complete (dataDoneCycle is 0 for decode
  /// misses, which finish with the address phase).
  std::uint64_t addrDoneCycle = 0;
  std::uint64_t dataDoneCycle = 0;

  void reset() {
    result = BusStatus::Wait;
    stage = Tl2Stage::Idle;
    slave = -1;
    addrCyclesLeft = dataCyclesLeft = 0;
    addrCycles = dataCycles = 0;
    addrDoneCycle = dataDoneCycle = 0;
  }

  unsigned beatCount() const {
    return bytes <= 4 ? 1u : static_cast<unsigned>((bytes + 3) / 4);
  }
};

} // namespace sct::bus

#endif // SCT_BUS_EC_REQUEST_H
