// Layer adapter: layer-1 master interface on a layer-2 bus.
//
// Haverinen's layering (paper, Section 2) lists "bridging layer three
// or layer two components to cycle accurate systems" as a layer use
// case. This bridge exposes the cycle-accurate EC master interfaces
// (EcInstrIf/EcDataIf with non-blocking request/wait/ok/error polling)
// and transports each transaction over a layer-2 bus as one
// pointer-passing transaction. A cycle-true master — e.g. the MIPS
// core — can thereby run on the fast layer-2 model unchanged, at
// layer-2 timing fidelity.
#ifndef SCT_BUS_TL2_BRIDGE_H
#define SCT_BUS_TL2_BRIDGE_H

#include <array>
#include <cstring>
#include <unordered_map>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/tl2_bus.h"

namespace sct::bus {

class Tl2MasterBridge final : public EcInstrIf, public EcDataIf {
 public:
  explicit Tl2MasterBridge(Tl2MasterIf& lower)
      : lower_(lower), stagePublishing_(lower.publishesStage()) {}

  BusStatus fetch(Tl1Request& req) override { return transport(req); }
  BusStatus read(Tl1Request& req) override { return transport(req); }
  BusStatus write(Tl1Request& req) override { return transport(req); }

  /// Transactions currently in flight through the bridge.
  std::size_t pendingCount() const { return pending_.size(); }

 private:
  struct Slot {
    Tl2Request lower;
    std::array<std::uint8_t, 16> buffer;
  };

  BusStatus transport(Tl1Request& req);

  Tl2MasterIf& lower_;
  bool stagePublishing_;  ///< Lower bus advances stages on its own.
  std::unordered_map<Tl1Request*, Slot> pending_;
};

/// A layer-2 bus packaged with its bridge: a drop-in replacement for
/// Tl1Bus wherever a cycle-true master expects the layer-1 interfaces
/// (e.g. SmartCardSoC<BridgedTl2Bus> runs the whole SoC at layer-2
/// timing fidelity).
class BridgedTl2Bus final : public EcInstrIf, public EcDataIf {
 public:
  BridgedTl2Bus(sim::Clock& clock, std::string name)
      : bus_(clock, std::move(name)), bridge_(bus_) {}

  int attach(EcSlave& slave) { return bus_.attach(slave); }
  void addObserver(Tl2Observer& obs) { bus_.addObserver(obs); }

  BusStatus fetch(Tl1Request& req) override { return bridge_.fetch(req); }
  BusStatus read(Tl1Request& req) override { return bridge_.read(req); }
  BusStatus write(Tl1Request& req) override { return bridge_.write(req); }

  Tl2Bus& lower() { return bus_; }
  const Tl2BusStats& stats() const { return bus_.stats(); }
  bool idle() const { return bus_.idle(); }
  std::size_t pendingCount() const { return bridge_.pendingCount(); }

 private:
  Tl2Bus bus_;
  Tl2MasterBridge bridge_;
};

} // namespace sct::bus

#endif // SCT_BUS_TL2_BRIDGE_H
