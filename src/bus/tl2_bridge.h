// Layer adapter: layer-1 master interface on a layer-2 bus.
//
// Haverinen's layering (paper, Section 2) lists "bridging layer three
// or layer two components to cycle accurate systems" as a layer use
// case. This bridge exposes the cycle-accurate EC master interfaces
// (EcInstrIf/EcDataIf with non-blocking request/wait/ok/error polling)
// and transports each transaction over a layer-2 bus as one
// pointer-passing transaction. A cycle-true master — e.g. the MIPS
// core — can thereby run on the fast layer-2 model unchanged, at
// layer-2 timing fidelity.
//
// Two completion disciplines coexist:
//  * Poll-driven (any master): each fetch/read/write call pumps the
//    lower transaction; the call that finds it finished returns the
//    final status directly, exactly the layer-1 "poll until Ok/Error"
//    contract.
//  * Stage-published (stage-gating masters): when the lower bus
//    publishes its stages, the bridge does too — sync() (called from
//    nextFinishCycle(), mirroring the lazy retirement of the
//    event-driven Tl2Bus) completes every transport whose lower
//    transaction finished and posts the upper payload as
//    Tl1Stage::Finished for a later pickup poll. Masters may then gate
//    on the public stage field and park until nextFinishCycle() + 1.
#ifndef SCT_BUS_TL2_BRIDGE_H
#define SCT_BUS_TL2_BRIDGE_H

#include <array>
#include <cstring>
#include <unordered_map>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/tl2_bus.h"

namespace sct::bus {

class Tl2MasterBridge final : public EcInstrIf, public EcDataIf {
 public:
  explicit Tl2MasterBridge(Tl2MasterIf& lower)
      : lower_(lower), stagePublishing_(lower.publishesStage()) {}

  BusStatus fetch(Tl1Request& req) override { return transport(req); }
  BusStatus read(Tl1Request& req) override { return transport(req); }
  BusStatus write(Tl1Request& req) override { return transport(req); }

  /// The bridge publishes upper stages iff the lower bus publishes its
  /// own (sync() needs the lower stage field to be authoritative).
  bool publishesStage() const override { return stagePublishing_; }

  /// Bring published upper stages current, then forward the lower
  /// bus's completion hint (kFinishUnknown when the lower bus cannot
  /// predict — masters then poll every cycle and sync() degrades to a
  /// cheap no-op path).
  std::uint64_t nextFinishCycle() override {
    sync();
    return lower_.nextFinishCycle();
  }

  /// Conservatively true: the lower bus may predict, and the sync()
  /// inside nextFinishCycle() is what publishes upper stages — masters
  /// must keep calling it either way.
  bool predictsFinish() const override { return true; }

  /// Complete every transport whose lower transaction has finished:
  /// result and read data move into the upper payload, which is posted
  /// as Tl1Stage::Finished for the master's pickup poll. O(pending).
  void sync();

  /// True when no transaction is in flight through the bridge
  /// (Finished payloads awaiting master pickup are no longer the
  /// bridge's — their slots are released when the result is posted).
  bool drained() const { return pending_.empty(); }

  /// Deterministic teardown: retire every finished lower transaction
  /// and release its slot. Requires the lower bus to be idle, so that
  /// every pending slot is retirable — asserted; upper request
  /// payloads are not touched (they may already be gone).
  void reset();

  /// Transactions currently in flight through the bridge.
  std::size_t pendingCount() const { return pending_.size(); }

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// A drained bridge holds no state beyond its construction arguments,
  /// so the section is an emptiness marker: saving requires drained(),
  /// and loading verifies the target is drained too.
  static constexpr std::uint32_t kCkptVersion = 1;

  void saveState(ckpt::StateWriter& w) const {
    if (!drained()) {
      throw ckpt::CheckpointError(
          "Tl2MasterBridge::saveState: bridge is not drained (not a "
          "quiesce point)");
    }
    w.b(stagePublishing_);
  }

  void loadState(ckpt::StateReader& r) {
    if (!drained()) {
      throw ckpt::CheckpointError(
          "Tl2MasterBridge::loadState: restore target bridge is not "
          "drained");
    }
    if (r.b() != stagePublishing_) {
      throw ckpt::CheckpointError(
          "Tl2MasterBridge::loadState: stage-publishing mode differs "
          "from the saved bridge");
    }
  }

 private:
  struct Slot {
    Tl2Request lower;
    std::array<std::uint8_t, 16> buffer;
  };

  BusStatus transport(Tl1Request& req);
  /// Move the finished lower result into the upper payload (lane
  /// placement included). The caller decides the upper stage.
  void copyOut(Tl1Request& req, Slot& s, BusStatus status);

  Tl2MasterIf& lower_;
  bool stagePublishing_;  ///< Lower bus advances stages on its own.
  std::unordered_map<Tl1Request*, Slot> pending_;
};

/// A layer-2 bus packaged with its bridge: a drop-in replacement for
/// Tl1Bus wherever a cycle-true master expects the layer-1 interfaces
/// (e.g. SmartCardSoC<BridgedTl2Bus> runs the whole SoC at layer-2
/// timing fidelity).
class BridgedTl2Bus final : public EcInstrIf, public EcDataIf {
 public:
  BridgedTl2Bus(sim::Clock& clock, std::string name)
      : bus_(clock, std::move(name)), bridge_(bus_) {}

  int attach(EcSlave& slave) { return bus_.attach(slave); }
  void addObserver(Tl2Observer& obs) { bus_.addObserver(obs); }

  BusStatus fetch(Tl1Request& req) override { return bridge_.fetch(req); }
  BusStatus read(Tl1Request& req) override { return bridge_.read(req); }
  BusStatus write(Tl1Request& req) override { return bridge_.write(req); }
  bool publishesStage() const override { return bridge_.publishesStage(); }
  std::uint64_t nextFinishCycle() override {
    return bridge_.nextFinishCycle();
  }
  bool predictsFinish() const override { return bridge_.predictsFinish(); }

  Tl2Bus& lower() { return bus_; }
  Tl2MasterBridge& bridge() { return bridge_; }
  const Tl2BusStats& stats() const { return bus_.stats(); }
  bool idle() const { return bus_.idle(); }
  std::size_t pendingCount() const { return bridge_.pendingCount(); }

  /// -- Checkpoint: one section covering the bus + bridge pair. --------
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    bus_.saveState(w);
    bridge_.saveState(w);
  }
  void loadState(ckpt::StateReader& r) {
    bus_.loadState(r);
    bridge_.loadState(r);
  }

 private:
  Tl2Bus bus_;
  Tl2MasterBridge bridge_;
};

} // namespace sct::bus

#endif // SCT_BUS_TL2_BRIDGE_H
