// EC interface signal inventory.
//
// The layer-1 power model works exactly like the paper describes: it is
// a transaction-level-to-RTL adapter that keeps an old and a new value
// for every bus interface signal, lets the bus phases update the new
// values, and counts bit transitions at the end of the cycle. The
// layer-0 reference model drives the same signal set cycle by cycle.
// Both share this inventory so that a "transition on EB_A bit 7" means
// the same thing in characterization and in estimation.
//
// The signal set follows the EC interface as described in the paper:
// one 36-bit address bus with control sideband, and *separate* 32-bit
// read and write data buses, each with its own error indication. Select
// lines of the bus controller's address decoder are included so that
// decoder activity is part of the energy picture.
#ifndef SCT_BUS_EC_SIGNALS_H
#define SCT_BUS_EC_SIGNALS_H

#include <array>
#include <bit>
#include <cstdint>
#include <string_view>

namespace sct::bus {

/// Every signal (bundle) of the modeled EC interface.
enum class SignalId : std::uint8_t {
  EB_A,       ///< Address bus, 36 bits.
  EB_Instr,   ///< Address phase is an instruction fetch, 1 bit.
  EB_Write,   ///< Address phase is a write, 1 bit.
  EB_Burst,   ///< Address phase starts a burst, 1 bit.
  EB_BE,      ///< Byte enables, 4 bits.
  EB_AValid,  ///< Master drives a valid address phase, 1 bit.
  EB_ARdy,    ///< Slave accepts the address phase, 1 bit.
  EB_RData,   ///< Read data bus, 32 bits.
  EB_RdVal,   ///< Read data valid, 1 bit.
  EB_RBErr,   ///< Read bus error, 1 bit.
  EB_WData,   ///< Write data bus, 32 bits.
  EB_WDRdy,   ///< Slave ready for write data, 1 bit.
  EB_WBErr,   ///< Write bus error, 1 bit.
  EB_Last,    ///< Last beat of a burst, 1 bit.
  EB_Sel,     ///< Decoder slave-select lines, 8 bits (one-hot).
  EB_Inv,     ///< Low-power codec invert control, 2 bits (write, read).
  kCount
};

inline constexpr std::size_t kSignalCount =
    static_cast<std::size_t>(SignalId::kCount);

struct SignalInfo {
  SignalId id;
  std::string_view name;
  unsigned width;  ///< Number of wires in the bundle.
};

inline constexpr std::array<SignalInfo, kSignalCount> kSignalTable{{
    {SignalId::EB_A, "EB_A", 36},
    {SignalId::EB_Instr, "EB_Instr", 1},
    {SignalId::EB_Write, "EB_Write", 1},
    {SignalId::EB_Burst, "EB_Burst", 1},
    {SignalId::EB_BE, "EB_BE", 4},
    {SignalId::EB_AValid, "EB_AValid", 1},
    {SignalId::EB_ARdy, "EB_ARdy", 1},
    {SignalId::EB_RData, "EB_RData", 32},
    {SignalId::EB_RdVal, "EB_RdVal", 1},
    {SignalId::EB_RBErr, "EB_RBErr", 1},
    {SignalId::EB_WData, "EB_WData", 32},
    {SignalId::EB_WDRdy, "EB_WDRdy", 1},
    {SignalId::EB_WBErr, "EB_WBErr", 1},
    {SignalId::EB_Last, "EB_Last", 1},
    {SignalId::EB_Sel, "EB_Sel", 8},
    {SignalId::EB_Inv, "EB_Inv", 2},
}};

/// Bit positions within the EB_Inv bundle: one invert indication per
/// data bus (the buses are separate, so each carries its own sideband
/// line). The lines are level signals like EB_Sel — they hold their
/// value until the next beat on the same channel re-drives them — and
/// stay at 0 unless a low-power codec (bus-invert / limited-weight,
/// src/enc) is installed on the bus; without one they never toggle and
/// contribute no transitions and no energy.
inline constexpr std::uint64_t kInvWriteBit = 0x1;  ///< EB_WData inverted.
inline constexpr std::uint64_t kInvReadBit = 0x2;   ///< EB_RData inverted.

constexpr const SignalInfo& signalInfo(SignalId id) {
  return kSignalTable[static_cast<std::size_t>(id)];
}

constexpr unsigned signalWidth(SignalId id) { return signalInfo(id).width; }
constexpr std::string_view signalName(SignalId id) { return signalInfo(id).name; }

/// Total number of individual wires across all bundles.
constexpr unsigned totalWireCount() {
  unsigned n = 0;
  for (const auto& s : kSignalTable) n += s.width;
  return n;
}

/// Value mask for a bundle (all defined bits set).
constexpr std::uint64_t signalMask(SignalId id) {
  const unsigned w = signalWidth(id);
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

/// One cycle's worth of signal values. The frame represents the state of
/// every EC wire during a single clock cycle; buses hold their previous
/// value when idle (holding is the caller's responsibility — see
/// SignalFrameTracker in the power library).
class SignalFrame {
 public:
  constexpr SignalFrame() : values_{} {}

  constexpr std::uint64_t get(SignalId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  constexpr void set(SignalId id, std::uint64_t value) {
    values_[static_cast<std::size_t>(id)] = value & signalMask(id);
  }

  constexpr bool operator==(const SignalFrame&) const = default;

  /// Raw lane storage in bundle-index order. The layer-1 packed-lane
  /// transition counter XORs whole frames through this view — one
  /// contiguous 64-bit lane per bundle, no per-signal accessor calls.
  constexpr const std::uint64_t* raw() const { return values_.data(); }

 private:
  std::array<std::uint64_t, kSignalCount> values_;
};

/// Number of bit positions that differ between two values of a bundle.
/// std::popcount lowers to a single POPCNT-class instruction on every
/// target we build for — the bit-clear loop this replaces was the
/// single hottest operation of the layer-1 energy adapter.
constexpr unsigned hammingDistance(SignalId id, std::uint64_t a,
                                   std::uint64_t b) {
  return static_cast<unsigned>(std::popcount((a ^ b) & signalMask(id)));
}

} // namespace sct::bus

#endif // SCT_BUS_EC_SIGNALS_H
