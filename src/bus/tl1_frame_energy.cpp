#include "bus/tl1_frame_energy.h"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)
#include <immintrin.h>
#define SCT_TL1FE_AVX512 1
#endif

namespace sct::bus {

void Tl1FrameEnergy::noteAddressOwners(const AddressPhaseInfo& info) {
  const obs::TxClass cls = obs::txClassOf(info.kind);
  for (SignalId id : {SignalId::EB_A, SignalId::EB_Instr, SignalId::EB_Write,
                      SignalId::EB_Burst, SignalId::EB_BE, SignalId::EB_AValid,
                      SignalId::EB_Sel, SignalId::EB_ARdy}) {
    setOwner(id, cls, info.slave);
  }
}

void Tl1FrameEnergy::noteBeatOwners(const DataBeatInfo& info, bool isWrite) {
  const obs::TxClass cls = obs::txClassOf(info.kind);
  if (isWrite) {
    for (SignalId id : {SignalId::EB_WData, SignalId::EB_WDRdy,
                        SignalId::EB_WBErr, SignalId::EB_Last,
                        SignalId::EB_Inv}) {
      setOwner(id, cls, info.slave);
    }
  } else {
    for (SignalId id : {SignalId::EB_RData, SignalId::EB_RdVal,
                        SignalId::EB_RBErr, SignalId::EB_Last,
                        SignalId::EB_Inv}) {
      setOwner(id, cls, info.slave);
    }
  }
}

double Tl1FrameEnergy::packedCycleEnergy() {
  ++packedLaneCycles_;
  // Pass 1 — packed lanes: shadow and current frame are contiguous
  // 64-bit lane arrays; XOR them in bulk and record which lanes
  // changed plus a per-lane transition (popcount) tally. Lanes outside
  // the dirty mask hold shadow == frame and XOR to zero on their own,
  // so the mask is not needed for correctness — only nonzero lanes
  // survive into the pricing walk.
  const std::uint64_t* cur = frame_.raw();
  std::array<std::uint64_t, kSignalCount> cnt;
  std::uint32_t nz = 0;
#if SCT_TL1FE_AVX512
  // Two full 512-bit strips cover the 16-lane frame exactly. VPOPCNTQ
  // counts every lane at once; the changed-lane bitmap falls out of the
  // test-against-zero mask, and the shadow update is a wholesale frame
  // copy (unchanged lanes are overwritten with the value they already
  // hold). Counting order does not matter here — only the pricing walk
  // below touches the accumulators, in ascending lane order as always.
  {
    static_assert(kSignalCount == 16, "strips assume a 16-lane frame");
    const __m512i s0 = _mm512_loadu_si512(shadow_.data());
    const __m512i c0 = _mm512_loadu_si512(cur);
    const __m512i s1 = _mm512_loadu_si512(shadow_.data() + 8);
    const __m512i c1 = _mm512_loadu_si512(cur + 8);
    const __m512i d0 = _mm512_xor_si512(s0, c0);
    const __m512i d1 = _mm512_xor_si512(s1, c1);
    nz = static_cast<std::uint32_t>(_mm512_test_epi64_mask(d0, d0)) |
         (static_cast<std::uint32_t>(_mm512_test_epi64_mask(d1, d1)) << 8);
    _mm512_storeu_si512(cnt.data(), _mm512_popcnt_epi64(d0));
    _mm512_storeu_si512(cnt.data() + 8, _mm512_popcnt_epi64(d1));
    _mm512_storeu_si512(shadow_.data(), c0);
    _mm512_storeu_si512(shadow_.data() + 8, c1);
  }
#else
  constexpr std::size_t kUnroll = 4;
  constexpr std::size_t kRound = (kSignalCount / kUnroll) * kUnroll;
  std::size_t i = 0;
  for (; i < kRound; i += kUnroll) {
    const std::uint64_t d0 = shadow_[i + 0] ^ cur[i + 0];
    const std::uint64_t d1 = shadow_[i + 1] ^ cur[i + 1];
    const std::uint64_t d2 = shadow_[i + 2] ^ cur[i + 2];
    const std::uint64_t d3 = shadow_[i + 3] ^ cur[i + 3];
    cnt[i + 0] = static_cast<std::uint64_t>(std::popcount(d0));
    cnt[i + 1] = static_cast<std::uint64_t>(std::popcount(d1));
    cnt[i + 2] = static_cast<std::uint64_t>(std::popcount(d2));
    cnt[i + 3] = static_cast<std::uint64_t>(std::popcount(d3));
    nz |= (d0 != 0 ? std::uint32_t{1} << (i + 0) : 0u) |
          (d1 != 0 ? std::uint32_t{1} << (i + 1) : 0u) |
          (d2 != 0 ? std::uint32_t{1} << (i + 2) : 0u) |
          (d3 != 0 ? std::uint32_t{1} << (i + 3) : 0u);
  }
  for (; i < kSignalCount; ++i) {
    const std::uint64_t d = shadow_[i] ^ cur[i];
    cnt[i] = static_cast<std::uint64_t>(std::popcount(d));
    if (d != 0) nz |= std::uint32_t{1} << i;
  }
  for (std::uint32_t m = nz; m != 0; m &= m - 1) {
    const unsigned k = static_cast<unsigned>(std::countr_zero(m));
    shadow_[k] = cur[k];
  }
#endif
  // Pass 2 — price the changed lanes in ascending bundle-index order:
  // exactly the term sequence the scalar dirty-walk produces (it skips
  // diff == 0 bundles too), so `e` and the ledger stay bit-identical.
  double e = 0.0;
  while (nz != 0) {
    const unsigned k = static_cast<unsigned>(std::countr_zero(nz));
    nz &= nz - 1;
    const unsigned n = static_cast<unsigned>(cnt[k]);
    transitions_[k] += n;
    e += coeff_[k] * static_cast<double>(n);
    if constexpr (obs::kEnabled) {
      if (ledger_ != nullptr) {
        ledger_->addDeferred(static_cast<SignalId>(k),
                             static_cast<obs::TxClass>(ownerClass_[k]),
                             ownerSlave_[k], master_,
                             coeff_[k] * static_cast<double>(n));
      }
    }
  }
  return e;
}

} // namespace sct::bus
