// Core data types of the EC interface.
//
// The EC interface (MIPS Technologies' external core interface used by
// the 4KSc smart-card core) supports 36-bit addresses and 32-bit data,
// unidirectional signals with separate read and write data buses (each
// with its own bus-error indication), pipelined address and data phases,
// and bursts. The core limits outstanding transactions to four burst
// instruction reads, four burst data reads and four burst writes.
#ifndef SCT_BUS_EC_TYPES_H
#define SCT_BUS_EC_TYPES_H

#include <array>
#include <cstdint>
#include <string_view>

namespace sct::bus {

/// 36-bit physical address, kept in the low bits of a 64-bit integer.
using Address = std::uint64_t;
inline constexpr Address kAddressMask = (Address{1} << 36) - 1;

/// One data-bus word.
using Word = std::uint32_t;

/// Access widths supported by the EC merge patterns.
enum class AccessSize : std::uint8_t { Byte = 1, Half = 2, Word = 4 };

/// Transaction class. Instruction fetches arrive on the dedicated
/// instruction interface; data reads and writes on the data interface.
enum class Kind : std::uint8_t { InstrFetch, Read, Write };

/// Result of a non-blocking bus interface call.
///  - Request: the request has been accepted by the bus this cycle.
///  - Wait:    the request is in progress (or could not be accepted yet).
///  - Ok:      the request finished successfully; results are valid.
///  - Error:   the request finished with a bus error.
enum class BusStatus : std::uint8_t { Request, Wait, Ok, Error };

/// Maximum burst length in beats (4KSc cache line = four words).
inline constexpr unsigned kMaxBurstBeats = 4;

/// Maximum outstanding transactions per class (EC interface limit).
inline constexpr unsigned kMaxOutstandingPerClass = 4;

/// Sentinels for Tl2MasterIf::nextFinishCycle(). Cycle 0 can never host
/// a completion (the first dispatched bus edge belongs to cycle 1), so
/// it doubles as "cannot predict".
inline constexpr std::uint64_t kFinishUnknown = 0;
inline constexpr std::uint64_t kFinishNone =
    ~static_cast<std::uint64_t>(0);

/// Sentinel for EcInstrIf/EcDataIf::finishEpoch(): the interface does
/// not maintain a completion epoch, so masters must poll every cycle.
inline constexpr std::uint64_t kEpochUnknown =
    ~static_cast<std::uint64_t>(0);

constexpr bool isRead(Kind k) { return k != Kind::Write; }

constexpr std::string_view toString(Kind k) {
  switch (k) {
    case Kind::InstrFetch: return "instr";
    case Kind::Read: return "read";
    case Kind::Write: return "write";
  }
  return "?";
}

constexpr std::string_view toString(BusStatus s) {
  switch (s) {
    case BusStatus::Request: return "request";
    case BusStatus::Wait: return "wait";
    case BusStatus::Ok: return "ok";
    case BusStatus::Error: return "error";
  }
  return "?";
}

constexpr std::string_view toString(AccessSize s) {
  switch (s) {
    case AccessSize::Byte: return "byte";
    case AccessSize::Half: return "half";
    case AccessSize::Word: return "word";
  }
  return "?";
}

/// Byte-enable mask (bit i = byte lane i active) for an access of the
/// given size at the given address, following the EC merge patterns:
/// byte accesses drive one lane, half-word accesses two aligned lanes,
/// word accesses all four. The address supplies the lane offset.
constexpr std::uint8_t byteEnables(AccessSize size, Address addr) {
  const unsigned lane = static_cast<unsigned>(addr & 0x3u);
  switch (size) {
    case AccessSize::Byte: return static_cast<std::uint8_t>(1u << lane);
    case AccessSize::Half: return static_cast<std::uint8_t>(0x3u << (lane & ~1u));
    case AccessSize::Word: return 0xFu;
  }
  return 0;
}

/// True when `addr` is correctly aligned for `size`.
constexpr bool isAligned(AccessSize size, Address addr) {
  switch (size) {
    case AccessSize::Byte: return true;
    case AccessSize::Half: return (addr & 0x1u) == 0;
    case AccessSize::Word: return (addr & 0x3u) == 0;
  }
  return false;
}

/// Static per-slave properties exposed through the slave control
/// interface (queried by the bus process as `getSlaveState()`):
/// address range, wait states for the address / read / write phases,
/// and access-right bits.
struct SlaveControl {
  Address base = 0;        ///< First byte of the decoded window.
  Address size = 0;        ///< Window length in bytes (non-zero).
  unsigned addrWait = 0;   ///< Extra cycles in the address phase.
  unsigned readWait = 0;   ///< Extra cycles before the first read beat.
  unsigned writeWait = 0;  ///< Extra cycles before the first write beat.
  unsigned burstBeatWait = 0;  ///< Extra cycles between burst beats.
  bool canRead = true;     ///< Data reads allowed.
  bool canWrite = true;    ///< Data writes allowed.
  bool canExec = true;     ///< Instruction fetches allowed.

  constexpr bool contains(Address a) const {
    return a >= base && a - base < size;
  }
  constexpr Address end() const { return base + size; }
  constexpr bool allows(Kind k) const {
    switch (k) {
      case Kind::InstrFetch: return canExec;
      case Kind::Read: return canRead;
      case Kind::Write: return canWrite;
    }
    return false;
  }
};

} // namespace sct::bus

#endif // SCT_BUS_EC_TYPES_H
