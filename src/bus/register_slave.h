// Register-file slave base.
//
// Memory-mapped peripherals (timers, UART, RNG, the crypto coprocessor,
// and the Java Card hardware stack's special function registers) expose
// word-aligned registers with per-register read/write handlers. The
// paper's HW/SW interface exploration varies exactly this organization:
// the address map, the grouping of SFRs and the transactions used to
// access them.
#ifndef SCT_BUS_REGISTER_SLAVE_H
#define SCT_BUS_REGISTER_SLAVE_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bus/ec_interfaces.h"
#include "bus/ec_types.h"
#include "ckpt/state_io.h"

namespace sct::bus {

class RegisterSlave : public EcSlave {
 public:
  using ReadHandler = std::function<Word()>;
  using WriteHandler = std::function<void(Word)>;

  RegisterSlave(std::string name, const SlaveControl& control);

  std::string_view name() const override { return name_; }
  const SlaveControl& control() const override { return control_; }

  BusStatus readBeat(Address addr, AccessSize size, Word& out) override;
  BusStatus writeBeat(Address addr, AccessSize size, std::uint8_t byteEnables,
                      Word in) override;
  bool readBlock(Address addr, std::uint8_t* dst, std::size_t n) override;
  bool writeBlock(Address addr, const std::uint8_t* src,
                  std::size_t n) override;

  /// Define a register at a word-aligned byte offset inside the window.
  /// Either handler may be null (access then errors on the bus).
  void defineRegister(Address offset, std::string regName, ReadHandler read,
                      WriteHandler write);

  /// Convenience: a plain storage register backed by `storage`.
  void defineStorageRegister(Address offset, std::string regName,
                             Word& storage);

  /// Dynamic wait injection: the next `n` beats answer Wait first
  /// (models a busy peripheral, e.g. a coprocessor mid-operation).
  void stretchNextBeats(unsigned n) { stretch_ += n; }

  std::size_t registerCount() const { return regs_.size(); }

  /// -- Checkpoint base: derived peripherals call these first from
  /// their own saveState/loadState (registers are code, not state; only
  /// the pending wait injection needs to travel).
  void saveState(ckpt::StateWriter& w) const {
    w.u64(static_cast<std::uint64_t>(stretch_));
  }
  void loadState(ckpt::StateReader& r) {
    stretch_ = static_cast<unsigned>(r.u64());
  }

 protected:
  struct Register {
    Address offset;
    std::string name;
    ReadHandler read;
    WriteHandler write;
  };

  const Register* find(Address addr) const;

 private:
  std::string name_;
  SlaveControl control_;
  std::vector<Register> regs_;
  unsigned stretch_ = 0;
};

} // namespace sct::bus

#endif // SCT_BUS_REGISTER_SLAVE_H
