// Address decoder of the bus controller.
//
// The EC interface itself connects one master to one slave; supporting
// multiple slaves requires a bus controller. Its decoder maps the 36-bit
// address space onto registered slave windows and drives the one-hot
// select lines (SignalId::EB_Sel) that feed the energy models.
#ifndef SCT_BUS_DECODER_H
#define SCT_BUS_DECODER_H

#include <cstddef>
#include <vector>

#include "bus/ec_interfaces.h"
#include "bus/ec_types.h"

namespace sct::bus {

class AddressDecoder {
 public:
  /// Register a slave. Throws std::invalid_argument if the slave's
  /// window is empty, exceeds the 36-bit space, or overlaps a window
  /// registered earlier. Returns the slave's index (select-line number).
  int attach(EcSlave& slave);

  /// Slave index for an address, or -1 on a decode miss. Windows are
  /// disjoint (enforced by attach), so the last-hit cache below is
  /// exact: an address inside the cached window can match no other.
  /// The scan walks control blocks cached at attach (the EcSlave
  /// contract pins the reference for the slave's lifetime), so neither
  /// path pays a virtual call per probe.
  int decode(Address addr) const {
    addr &= kAddressMask;
    if (lastHit_ < controls_.size() && controls_[lastHit_]->contains(addr)) {
      return static_cast<int>(lastHit_);
    }
    return decodeScan(addr);
  }

  EcSlave& slave(int index) { return *slaves_[static_cast<std::size_t>(index)]; }
  const EcSlave& slave(int index) const {
    return *slaves_[static_cast<std::size_t>(index)];
  }
  /// Control block of a decoded slave, through the attach-time cache.
  const SlaveControl& control(int index) const {
    return *controls_[static_cast<std::size_t>(index)];
  }
  std::size_t slaveCount() const { return slaves_.size(); }

  /// One-hot select mask for a decoded index (0 for a miss). Select
  /// lines above bit 7 saturate into bit 7 so the 8-bit EB_Sel bundle
  /// stays meaningful on very large systems.
  static std::uint64_t selectMask(int index) {
    if (index < 0) return 0;
    return std::uint64_t{1} << (index < 8 ? index : 7);
  }

 private:
  int decodeScan(Address addr) const;

  std::vector<EcSlave*> slaves_;
  std::vector<const SlaveControl*> controls_;  ///< Cached control() refs.
  mutable std::size_t lastHit_ = 0;  ///< Smart-card traffic is bursty per window.
};

} // namespace sct::bus

#endif // SCT_BUS_DECODER_H
