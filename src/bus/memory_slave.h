// Generic memory slave.
//
// Covers the smart card's on-chip memories (ROM, EEPROM, FLASH,
// scratchpad RAM) — they differ only in size, wait states and access
// rights, all of which live in the SlaveControl handed to the
// constructor. EEPROM/FLASH write behaviour (long programming times)
// is modeled with the `extraWritePerBeat` dynamic stretch.
#ifndef SCT_BUS_MEMORY_SLAVE_H
#define SCT_BUS_MEMORY_SLAVE_H

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bus/ec_interfaces.h"
#include "bus/ec_types.h"
#include "ckpt/state_io.h"

namespace sct::bus {

class MemorySlave : public EcSlave {
 public:
  /// `control.size` bytes are allocated zero-initialized.
  MemorySlave(std::string name, const SlaveControl& control);

  /// Copy-on-write construction from a shared prototype image of
  /// `control.size` bytes. The slave reads through `sharedImage` (which
  /// must stay valid until the slave is destroyed or first written) and
  /// only materializes a private copy on the first mutation — replay
  /// harnesses that build a platform per run load large ROM/flash
  /// contents for free this way.
  MemorySlave(std::string name, const SlaveControl& control,
              const std::uint8_t* sharedImage);

  std::string_view name() const override { return name_; }
  const SlaveControl& control() const override { return control_; }

  // The beat functions are defined inline below: the layer-1 bus calls
  // them directly (devirtualized) once per data-phase cycle, and the
  // bodies are small enough that the call should disappear entirely.
  BusStatus readBeat(Address addr, AccessSize size, Word& out) override;
  BusStatus writeBeat(Address addr, AccessSize size, std::uint8_t byteEnables,
                      Word in) override;
  bool readBlock(Address addr, std::uint8_t* dst, std::size_t n) override;
  bool writeBlock(Address addr, const std::uint8_t* src,
                  std::size_t n) override;

  /// Dynamic per-beat write stretch: the slave answers Wait this many
  /// times before accepting each write beat (e.g. EEPROM programming).
  /// Invisible to the layer-2 timing estimation — one of the paper's
  /// layer-2 error sources.
  void setExtraWritePerBeat(unsigned cycles) { extraWritePerBeat_ = cycles; }

  /// Direct backdoor access (no bus, no timing) for loaders and tests.
  /// The mutable overload materializes a shared image (copy-on-write)
  /// and conservatively marks the whole image dirty — the raw pointer
  /// can write anywhere, so page tracking must assume it did.
  std::uint8_t* data() {
    materialize();
    std::fill(dirty_.begin(), dirty_.end(), ~std::uint64_t{0});
    return bytes_.data();
  }
  const std::uint8_t* data() const { return roData(); }
  std::size_t sizeBytes() const { return size_; }
  void load(Address busAddr, const std::uint8_t* src, std::size_t n);
  Word peekWord(Address busAddr) const;
  void pokeWord(Address busAddr, Word value);

  /// FNV-1a (64-bit) over the live image: lets equivalence and fuzz
  /// tests compare whole memories without copying them out, and gives
  /// checkpoint tests a cheap image identity.
  std::uint64_t imageDigest() const;

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// Dirty-page serialization: only kCkptPageBytes-sized pages that
  /// differ from the construction baseline (the shared prototype image,
  /// or all-zeros for a plainly constructed slave) enter the section, so
  /// a mostly clean ROM/flash snapshot costs almost nothing and a fork
  /// restored from it stays copy-on-write when no page was dirty.
  /// Checkpointing a shared-image slave requires the prototype image to
  /// outlive the slave (all in-repo prototypes are static caches or a
  /// parent system kept alive by the ForkRunner).
  ///
  /// Every mutation path additionally marks its pages in a runtime
  /// dirty bitmap (one bit-or per write beat). The bitmap is a strict
  /// superset of the pages that differ from the baseline, which makes
  /// both checkpoint directions proportional to pages TOUCHED rather
  /// than memory SIZE: saveState diffs only marked pages, and
  /// loadState re-baselines only marked pages instead of rewriting the
  /// whole image. That last part is what lets a serve-daemon worker
  /// recycle a card from the golden snapshot in microseconds — a
  /// session dirties a handful of RAM pages, not 256 KiB of ROM. The
  /// bitmap is derived state and never serialized (the on-disk format
  /// is unchanged, so existing golden checkpoint files stay valid).
  static constexpr std::uint32_t kCkptVersion = 1;
  static constexpr std::size_t kCkptPageBytes = 256;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 protected:
  std::size_t offset(Address addr) const {
    return static_cast<std::size_t>(addr - control_.base);
  }
  bool inWindow(Address addr, std::size_t n) const {
    return addr >= control_.base && addr - control_.base + n <= size_;
  }

 private:
  const std::uint8_t* roData() const {
    return shared_ != nullptr ? shared_ : bytes_.data();
  }
  /// Expand a 4-bit byte-enable mask into a 32-bit byte mask
  /// (bit i set -> byte lane i all-ones).
  static Word laneMask(std::uint8_t byteEnables) {
    const Word spread = ((byteEnables & 1u) ? 0x000000FFu : 0u) |
                        ((byteEnables & 2u) ? 0x0000FF00u : 0u) |
                        ((byteEnables & 4u) ? 0x00FF0000u : 0u) |
                        ((byteEnables & 8u) ? 0xFF000000u : 0u);
    return spread;
  }
  /// Turn a shared image into a private copy before the first mutation.
  void materialize() {
    if (shared_ != nullptr) {
      bytes_.assign(shared_, shared_ + size_);
      shared_ = nullptr;
    }
  }

  std::size_t pageCount() const {
    return (size_ + kCkptPageBytes - 1) / kCkptPageBytes;
  }
  bool pageDirty(std::size_t page) const {
    return (dirty_[page >> 6] >> (page & 63)) & 1u;
  }
  void markPage(std::size_t page) {
    dirty_[page >> 6] |= std::uint64_t{1} << (page & 63);
  }
  /// Mark every page overlapping [off, off + n).
  void markRange(std::size_t off, std::size_t n) {
    const std::size_t last = (off + n - 1) / kCkptPageBytes;
    for (std::size_t page = off / kCkptPageBytes; page <= last; ++page) {
      markPage(page);
    }
  }

  std::string name_;
  SlaveControl control_;
  std::vector<std::uint8_t> bytes_;
  const std::uint8_t* shared_ = nullptr;  ///< Non-null until materialized.
  /// Construction prototype (null = zero-initialized): the reference the
  /// checkpoint's dirty pages are diffed against and restored onto.
  const std::uint8_t* baseline_ = nullptr;
  /// Runtime dirty bitmap, one bit per kCkptPageBytes page — superset
  /// of the pages differing from the baseline. Derived state: never
  /// serialized, reconciled to the snapshot's page set on loadState.
  std::vector<std::uint64_t> dirty_;
  std::size_t size_ = 0;
  unsigned extraWritePerBeat_ = 0;
  unsigned pendingStretch_ = 0;
};

inline BusStatus MemorySlave::readBeat(Address addr, AccessSize size,
                                       Word& out) {
  const auto n = static_cast<std::size_t>(size);
  if (!inWindow(addr, n)) return BusStatus::Error;
  // Reads are returned on word-aligned lanes, as on the EC read bus.
  const std::size_t wordOff = offset(addr) & ~std::size_t{3};
  Word w = 0;
  std::memcpy(&w, roData() + wordOff, 4);
  out = w;
  return BusStatus::Ok;
}

inline BusStatus MemorySlave::writeBeat(Address addr, AccessSize size,
                                        std::uint8_t byteEnables, Word in) {
  const auto n = static_cast<std::size_t>(size);
  if (!inWindow(addr, n)) return BusStatus::Error;
  if (pendingStretch_ < extraWritePerBeat_) {
    ++pendingStretch_;
    return BusStatus::Wait;
  }
  pendingStretch_ = 0;
  materialize();
  // Branchless lane merge: expand the 4-bit byte-enable mask to a byte
  // mask and blend the enabled lanes into the stored word (same bytes
  // the per-lane loop wrote).
  const std::size_t wordOff = offset(addr) & ~std::size_t{3};
  markPage(wordOff / kCkptPageBytes);
  const Word mask = laneMask(byteEnables);
  Word w = 0;
  std::memcpy(&w, bytes_.data() + wordOff, 4);
  w = (w & ~mask) | (in & mask);
  std::memcpy(bytes_.data() + wordOff, &w, 4);
  return BusStatus::Ok;
}

} // namespace sct::bus

#endif // SCT_BUS_MEMORY_SLAVE_H
