#include "bus/tl1_bus.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <typeinfo>

#include "bus/bus_codec.h"
#include "bus/memory_slave.h"
#include "bus/tl1_frame_energy.h"

namespace sct::bus {

Tl1Bus::Tl1Bus(sim::Clock& clock, std::string name)
    : sim::Module(clock.kernel(), std::move(name)), clock_(clock) {
  // The bus process runs on the falling edge; masters and slaves are
  // expected to act on the rising edge (paper, Figure 2).
  processId_ = clock_.onFallingRaw(
      [](void* self) { static_cast<Tl1Bus*>(self)->busProcess(); }, this);
}

Tl1Bus::~Tl1Bus() { clock_.removeHandler(processId_); }

int Tl1Bus::attach(EcSlave& slave) {
  const int idx = decoder_.attach(slave);
  slaveControls_.push_back(&slave.control());
  // Exact-type check, not a plain dynamic_cast: a subclass overriding a
  // beat function must keep taking the virtual path.
  auto* mem = dynamic_cast<MemorySlave*>(&slave);
  directSlaves_.push_back(
      mem != nullptr && typeid(slave) == typeid(MemorySlave) ? mem : nullptr);
  return idx;
}

void Tl1Bus::addObserver(Tl1Observer& obs) {
  // One fused engine per bus: the first observer that offers one is
  // driven directly (and must NOT also sit in observers_, or its
  // events would be double-counted); everyone else takes the virtual
  // path. The engine always runs before the observer list, matching
  // the convention that frame readers register after the power model.
  if (Tl1FrameEnergy* fe = obs.fusedFrameEnergy();
      fe != nullptr && fe_ == nullptr) {
    fe_ = fe;
    feOwner_ = &obs;
  } else {
    observers_.push_back(&obs);
  }
  publish_ = true;
}

void Tl1Bus::removeObserver(Tl1Observer& obs) {
  if (feOwner_ == &obs) {
    fe_ = nullptr;
    feOwner_ = nullptr;
  } else {
    observers_.erase(std::remove(observers_.begin(), observers_.end(), &obs),
                     observers_.end());
  }
  publish_ = fe_ != nullptr || !observers_.empty();
}

void Tl1Bus::setCodec(BusCodec* codec) {
  assert(idle() && "setCodec() requires an idle bus");
  codec_ = codec;
}

// ---------------------------------------------------------------------------
// Master interfaces
// ---------------------------------------------------------------------------

BusStatus Tl1Bus::fetch(Tl1Request& req) {
  return submitOrPoll(req, Kind::InstrFetch);
}

BusStatus Tl1Bus::read(Tl1Request& req) {
  return submitOrPoll(req, Kind::Read);
}

BusStatus Tl1Bus::write(Tl1Request& req) {
  return submitOrPoll(req, Kind::Write);
}

bool Tl1Bus::validate(const Tl1Request& req) const {
  if (req.beats == 0 || req.beats > kMaxBurstBeats) return false;
  if (req.burst()) {
    // Bursts are word-sized, word-aligned sequences.
    if (req.size != AccessSize::Word) return false;
    if (!isAligned(AccessSize::Word, req.address)) return false;
  } else if (!isAligned(req.size, req.address)) {
    return false;
  }
  return (req.address & ~kAddressMask) == 0;
}

unsigned& Tl1Bus::outstanding(Kind k) {
  switch (k) {
    case Kind::InstrFetch: return outstandingInstr_;
    case Kind::Read: return outstandingRead_;
    case Kind::Write: return outstandingWrite_;
  }
  return outstandingRead_;  // unreachable
}

unsigned Tl1Bus::outstanding(Kind k) const {
  return const_cast<Tl1Bus*>(this)->outstanding(k);
}

BusStatus Tl1Bus::submitOrPoll(Tl1Request& req, Kind expectedKind) {
  if (req.kind != expectedKind) {
    throw std::logic_error(name() + ": request kind does not match the "
                                    "invoked master interface");
  }
  switch (req.stage) {
    case Tl1Stage::Idle: {
      if (!validate(req)) {
        req.result = BusStatus::Error;
        return BusStatus::Error;
      }
      if (outstanding(req.kind) >= kMaxOutstandingPerClass) {
        return BusStatus::Wait;  // Not accepted; the master retries.
      }
      req.stage = Tl1Stage::Requested;
      req.result = BusStatus::Wait;
      req.beatsDone = 0;
      req.slave = -1;
      req.acceptCycle = clock_.cycle();
      ++outstanding(req.kind);
      requestQueue_.push_back(&req);
      if constexpr (obs::kEnabled) {
        if (obsDepth_ != nullptr) {
          obsDepth_->record(requestQueue_.size());
        }
      }
      return BusStatus::Request;
    }
    case Tl1Stage::Finished: {
      const BusStatus result = req.result;
      req.stage = Tl1Stage::Idle;  // Picked up; payload reusable.
      return result;
    }
    default:
      return BusStatus::Wait;
  }
}

bool Tl1Bus::idle() const {
  return requestQueue_.empty() && readQueue_.empty() && writeQueue_.empty() &&
         addrCurrent_ == nullptr && readCurrent_ == nullptr &&
         writeCurrent_ == nullptr;
}

std::uint64_t Tl1Bus::outstandingTotal() const {
  const std::uint64_t total =
      outstandingInstr_ + outstandingRead_ + outstandingWrite_;
  // Every accepted-but-unfinished request sits in exactly one queue or
  // current slot, and finish() decrements its class count as the result
  // is posted — so the counters and the queue view must agree.
  assert((total == 0) == idle());
  assert(total <= 3u * kMaxOutstandingPerClass);
  return total;
}

void Tl1Bus::suspendProcess() {
  assert(idle() && "suspendProcess() requires an idle bus");
  suspended_ = true;
  clock_.parkHandler(processId_, sim::Clock::kNeverWake);
}

void Tl1Bus::resumeProcess() {
  suspended_ = false;
  clock_.parkHandler(processId_, 0);
}

void Tl1Bus::saveState(ckpt::StateWriter& w) const {
  if (!idle()) {
    throw ckpt::CheckpointError(
        "Tl1Bus::saveState: bus is not idle (not a quiesce point)");
  }
  w.u64(stats_.cycles);
  w.u64(stats_.busyCycles);
  w.u64(stats_.addrCycles);
  w.u64(stats_.readBeats);
  w.u64(stats_.writeBeats);
  w.u64(stats_.instrTransactions);
  w.u64(stats_.readTransactions);
  w.u64(stats_.writeTransactions);
  w.u64(stats_.readBusErrors);
  w.u64(stats_.writeBusErrors);
  w.u64(stats_.bytesRead);
  w.u64(stats_.bytesWritten);
  w.u64(cycleNow_);
  w.b(suspended_);
}

void Tl1Bus::loadState(ckpt::StateReader& r) {
  if (!idle()) {
    throw ckpt::CheckpointError(
        "Tl1Bus::loadState: restore target bus is not idle");
  }
  stats_.cycles = r.u64();
  stats_.busyCycles = r.u64();
  stats_.addrCycles = r.u64();
  stats_.readBeats = r.u64();
  stats_.writeBeats = r.u64();
  stats_.instrTransactions = r.u64();
  stats_.readTransactions = r.u64();
  stats_.writeTransactions = r.u64();
  stats_.readBusErrors = r.u64();
  stats_.writeBusErrors = r.u64();
  stats_.bytesRead = r.u64();
  stats_.bytesWritten = r.u64();
  cycleNow_ = r.u64();
  suspended_ = r.b();
  anyActivityThisCycle_ = false;
}

// ---------------------------------------------------------------------------
// Bus process
// ---------------------------------------------------------------------------

void Tl1Bus::busProcess() {
  cycleNow_ = clock_.cycle();
  anyActivityThisCycle_ = false;
  ++stats_.cycles;
  if (fe_ != nullptr) fe_->busCycleBegin(cycleNow_);
  for (Tl1Observer* obs : observers_) obs->busCycleBegin(cycleNow_);

  // getSlaveState(): the paper's first phase samples every slave's
  // control interface. The control references were cached at attach
  // time (EcSlave::control guarantees a stable reference that only
  // changes between cycles), so the phases below read them directly —
  // the per-cycle snapshot copy would be byte-identical.
  addressPhase();
  readPhase();
  writePhase();

  if (anyActivityThisCycle_) ++stats_.busyCycles;
  if (fe_ != nullptr) fe_->busCycleEnd(cycleNow_);
  for (Tl1Observer* obs : observers_) obs->busCycleEnd(cycleNow_);
}

// The fused engine is driven inline at the call sites (before these
// run); publishAddressPhase/publishBeat only walk the virtual-path
// observer list and are only called when it is non-empty.
void Tl1Bus::publishAddressPhase(const AddressPhaseInfo& info) {
  for (Tl1Observer* obs : observers_) obs->addressPhase(info);
}

void Tl1Bus::publishBeat(const DataBeatInfo& info, bool isWrite) {
  for (Tl1Observer* obs : observers_) {
    if (isWrite) {
      obs->writeBeat(info);
    } else {
      obs->readBeat(info);
    }
  }
}

void Tl1Bus::finish(Tl1Request& req, BusStatus result) {
  req.result = result;
  req.stage = Tl1Stage::Finished;
  req.finishCycle = cycleNow_;
  --outstanding(req.kind);
  ++finishEpoch_;
  switch (req.kind) {
    case Kind::InstrFetch: ++stats_.instrTransactions; break;
    case Kind::Read: ++stats_.readTransactions; break;
    case Kind::Write: ++stats_.writeTransactions; break;
  }
  if (result == BusStatus::Error) {
    if (req.kind == Kind::Write) {
      ++stats_.writeBusErrors;
    } else {
      ++stats_.readBusErrors;
    }
  }
  if constexpr (obs::kEnabled) {
    if (obsLatency_ != nullptr) noteFinishObs(req, result);
  }
}

void Tl1Bus::attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec) {
  if constexpr (obs::kEnabled) {
    const std::string& n = name();
    obsWaits_ = &reg.histogram(n + ".txn_wait_cycles", {0, 1, 2, 4, 8, 16});
    obsBurst_ = &reg.histogram(n + ".burst_beats", {1, 2, 4});
    obsDepth_ = &reg.histogram(n + ".queue_depth", {1, 2, 4, 8});
    obsErrors_ = &reg.counter(n + ".bus_errors");
    obsRec_ = rec;
    // Last: obsLatency_ doubles as the attached flag, so it must only
    // become non-null once every other handle is live.
    obsLatency_ =
        &reg.histogram(n + ".txn_latency_cycles", {1, 2, 4, 8, 16, 32});
  } else {
    (void)reg;
    (void)rec;
  }
}

void Tl1Bus::noteFinishObs(const Tl1Request& req, BusStatus result) {
  const std::uint64_t latency = req.finishCycle - req.acceptCycle + 1;
  obsLatency_->record(latency);
  // A wait-free transaction takes one address cycle plus one cycle per
  // beat; anything beyond that is slave wait states or queueing.
  const std::uint64_t ideal = 1u + req.beats;
  obsWaits_->record(latency > ideal ? latency - ideal : 0);
  obsBurst_->record(req.beats);
  if (result == BusStatus::Error) obsErrors_->add();
  if (obsRec_ != nullptr) {
    obsRec_->span("tl1", toString(req.kind).data(), req.acceptCycle,
                  req.finishCycle, obs::Track::Bus,
                  obs::TraceArg{"addr", req.address},
                  obs::TraceArg{"beats", req.beats});
  }
}

void Tl1Bus::addressPhase() {
  if (addrCurrent_ == nullptr) {
    if (requestQueue_.empty()) return;  // Idle: buses hold their values.
    addrCurrent_ = requestQueue_.front();
    requestQueue_.pop_front();
    Tl1Request& req = *addrCurrent_;
    req.stage = Tl1Stage::Address;
    // With a codec installed the decoder sits behind the decode stage —
    // a real encode/decode round trip, so a non-invertible address
    // codec misroutes and fails correctness suites, not just energy.
    req.slave = decoder_.decode(
        codec_ == nullptr
            ? req.address
            : codec_->decodeAddress(codec_->encodeAddress(req.address)));
    bool error = req.slave < 0;
    if (!error) {
      const SlaveControl& c = *slaveControls_[static_cast<std::size_t>(req.slave)];
      error = !c.allows(req.kind) ||
              (req.burst() && !c.contains(req.address + 4u * req.beats - 1));
      req.waitCount = error ? 0 : c.addrWait;
    } else {
      req.waitCount = 0;
    }
    if (error) {
      // Decode miss or access-right violation: the phase terminates and
      // the error is indicated on the corresponding data bus error line.
      if (publish_) {
        AddressPhaseInfo info{
            codec_ == nullptr ? req.address
                              : codec_->encodeAddress(req.address),
            req.kind, req.size, req.beats,
            byteEnables(req.size, req.address), req.slave,
            /*accepted=*/true, /*error=*/true, &req};
        if (fe_ != nullptr) fe_->addressPhase(info);
        if (!observers_.empty()) publishAddressPhase(info);
        DataBeatInfo beat;
        beat.address = req.address;
        beat.kind = req.kind;
        beat.error = true;
        beat.last = true;
        beat.slave = req.slave;
        if (fe_ != nullptr) {
          if (req.kind == Kind::Write) {
            fe_->writeBeat(beat);
          } else {
            fe_->readBeat(beat);
          }
        }
        if (!observers_.empty()) publishBeat(beat, req.kind == Kind::Write);
      }
      finish(req, BusStatus::Error);
      addrCurrent_ = nullptr;
      anyActivityThisCycle_ = true;
      ++stats_.addrCycles;
      return;
    }
  }

  Tl1Request& req = *addrCurrent_;
  anyActivityThisCycle_ = true;
  ++stats_.addrCycles;
  const bool accepted = req.waitCount == 0;
  if (publish_) {
    // info.address is the value driven on EB_A — encoded when a codec
    // is installed. Routing and range checks above used the payload
    // address; only the wires (and thus the power model) see the code.
    AddressPhaseInfo info{
        codec_ == nullptr ? req.address : codec_->encodeAddress(req.address),
        req.kind, req.size, req.beats, byteEnables(req.size, req.address),
        req.slave, accepted, /*error=*/false, &req};
    if (fe_ != nullptr) fe_->addressPhase(info);
    if (!observers_.empty()) publishAddressPhase(info);
  }
  if (!accepted) {
    --req.waitCount;
    return;
  }
  // Address phase completes this cycle: hand over to the data queues.
  req.stage = Tl1Stage::DataQueued;
  const SlaveControl& c = *slaveControls_[static_cast<std::size_t>(req.slave)];
  if (req.kind == Kind::Write) {
    req.waitCount = c.writeWait;
    writeQueue_.push_back(&req);
  } else {
    req.waitCount = c.readWait;
    readQueue_.push_back(&req);
  }
  addrCurrent_ = nullptr;
}

void Tl1Bus::readPhase() { dataPhase(readCurrent_, readQueue_); }

void Tl1Bus::writePhase() { dataPhase(writeCurrent_, writeQueue_); }

void Tl1Bus::dataPhase(Tl1Request*& current, RequestRing& queue) {
  if (current == nullptr) {
    if (queue.empty()) return;
    current = queue.front();
    queue.pop_front();
    current->stage = Tl1Stage::Data;
    // The first-beat wait states were preloaded by the address phase.
  }

  Tl1Request& req = *current;
  anyActivityThisCycle_ = true;
  if (req.waitCount > 0) {
    --req.waitCount;  // Slave-inserted wait state; no beat this cycle.
    return;
  }

  const Address beatAddr = req.address + 4u * req.beatsDone;
  const std::uint8_t lanes = byteEnables(req.size, beatAddr);
  const bool isWrite = req.kind == Kind::Write;
  Word data = 0;
  // Wire view of the beat when a codec is installed: enc.wire is what
  // the data bus carries (and what the power model prices), enc.invert
  // the EB_Inv sideband level. The encode is a side-effect-free peek —
  // a slave Wait stretch means the wire is not driven this cycle, so
  // codec state only advances via commit*() once the beat completes.
  EncodedWord enc;
  BusStatus s;
  // Direct beat calls for plain MemorySlaves (see directSlaves_):
  // identical functions, minus the per-beat virtual hop.
  MemorySlave* mem = directSlaves_[static_cast<std::size_t>(req.slave)];
  if (isWrite) {
    data = req.data[req.beatsDone];
    Word slaveWord = data;
    if (codec_ != nullptr) {
      enc = codec_->encodeWrite(data);
      // The slave decodes the wire back to the payload — a real round
      // trip, so a broken codec corrupts memory, not just energy.
      slaveWord = codec_->decodeWrite(enc);
    }
    s = mem != nullptr
            ? mem->MemorySlave::writeBeat(beatAddr, req.size, lanes, slaveWord)
            : decoder_.slave(req.slave).writeBeat(beatAddr, req.size, lanes,
                                                  slaveWord);
  } else {
    s = mem != nullptr
            ? mem->MemorySlave::readBeat(beatAddr, req.size, data)
            : decoder_.slave(req.slave).readBeat(beatAddr, req.size, data);
    if (s == BusStatus::Ok) {
      if (codec_ != nullptr) {
        enc = codec_->encodeRead(data);
        req.data[req.beatsDone] = codec_->decodeRead(enc);
      } else {
        req.data[req.beatsDone] = data;
      }
    }
  }
  if (s == BusStatus::Wait) return;  // Dynamic stretch by the slave.

  // The beat completed and (on Ok) the encoded word was driven: advance
  // codec channel state exactly once. Error beats never drive the data
  // wires, so they do not commit.
  if (codec_ != nullptr && s == BusStatus::Ok) {
    if (isWrite) {
      codec_->commitWrite(enc);
    } else {
      codec_->commitRead(enc);
    }
  }

  if (publish_) {
    DataBeatInfo beat;
    beat.address = beatAddr;
    beat.kind = req.kind;
    beat.data = codec_ != nullptr && s == BusStatus::Ok ? enc.wire : data;
    beat.invert = codec_ != nullptr && s == BusStatus::Ok && enc.invert;
    beat.byteEnables = lanes;
    beat.beatIndex = req.beatsDone;
    beat.last = (s == BusStatus::Error) || (req.beatsDone + 1u == req.beats);
    beat.error = s == BusStatus::Error;
    beat.slave = req.slave;
    if (fe_ != nullptr) {
      if (isWrite) {
        fe_->writeBeat(beat);
      } else {
        fe_->readBeat(beat);
      }
    }
    if (!observers_.empty()) publishBeat(beat, isWrite);
  }

  if (isWrite) {
    ++stats_.writeBeats;
    if (s == BusStatus::Ok) stats_.bytesWritten += req.burst() ? 4 : static_cast<unsigned>(req.size);
  } else {
    ++stats_.readBeats;
    if (s == BusStatus::Ok) stats_.bytesRead += req.burst() ? 4 : static_cast<unsigned>(req.size);
  }

  if (s == BusStatus::Error) {
    finish(req, BusStatus::Error);
    current = nullptr;
    return;
  }
  ++req.beatsDone;
  if (req.beatsDone == req.beats) {
    finish(req, BusStatus::Ok);
    current = nullptr;
  } else {
    const SlaveControl& c = *slaveControls_[static_cast<std::size_t>(req.slave)];
    req.waitCount = c.burstBeatWait;
  }
}

} // namespace sct::bus
