#include "eh/field_profile.h"

#include "sim/rng.h"

namespace sct::eh {

SquareBurstField::SquareBurstField(double on_uW, std::uint64_t onCycles,
                                   std::uint64_t offCycles,
                                   std::uint64_t phase)
    : on_uW_(on_uW),
      onCycles_(onCycles),
      period_(onCycles + offCycles),
      phase_(phase) {
  if (period_ == 0) period_ = 1;
}

double SquareBurstField::power_uW(std::uint64_t cycle) const {
  return (cycle + phase_) % period_ < onCycles_ ? on_uW_ : 0.0;
}

SwipeField::SwipeField(double peak_uW, std::uint64_t rampCycles,
                       std::uint64_t holdCycles, std::uint64_t gapCycles)
    : peak_uW_(peak_uW),
      rampCycles_(rampCycles),
      holdCycles_(holdCycles),
      period_(2 * rampCycles + holdCycles + gapCycles) {
  if (period_ == 0) period_ = 1;
}

double SwipeField::power_uW(std::uint64_t cycle) const {
  const std::uint64_t t = cycle % period_;
  if (t < rampCycles_) {
    // Approach: field rises as the card enters the loop.
    return peak_uW_ * static_cast<double>(t) /
           static_cast<double>(rampCycles_);
  }
  if (t < rampCycles_ + holdCycles_) return peak_uW_;
  if (t < 2 * rampCycles_ + holdCycles_) {
    const std::uint64_t down = t - rampCycles_ - holdCycles_;
    return peak_uW_ * static_cast<double>(rampCycles_ - down) /
           static_cast<double>(rampCycles_);
  }
  return 0.0;
}

NoisyField::NoisyField(std::unique_ptr<FieldProfile> inner, double jitter,
                       std::uint64_t seed)
    : inner_(std::move(inner)),
      jitter_(jitter),
      seed_(seed),
      name_("noisy-" + std::string(inner_->name())) {}

double NoisyField::power_uW(std::uint64_t cycle) const {
  const double base = inner_->power_uW(cycle);
  if (base == 0.0) return 0.0;
  // 53 uniform mantissa bits -> u in [0, 1); factor in [1-j, 1+j).
  // sim::mix64 is the same finalizer the historical local copy was, so
  // every (seed, cycle) draw — and every eh sweep outcome — is
  // byte-unchanged.
  const std::uint64_t h = sim::mix64(seed_ ^ (cycle * 0xD1342543DE82EF95ULL));
  const double u = sim::unitDouble(h);
  return base * (1.0 - jitter_ + 2.0 * jitter_ * u);
}

} // namespace sct::eh
