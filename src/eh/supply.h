// Harvested-energy supply: a storage capacitor between the RF
// front-end and the chip.
//
// The paper's hardest power constraint is the contactless class —
// "more critical is power consumption for contact-less smart cards
// that are supplied by RF field" — where the card has no battery and
// no contact Vcc, only whatever the field delivers into a small
// buffer capacitor. This module closes the loop between the layer-1
// energy estimate and execution: every committed bus cycle drains the
// capacitor by the cycle's estimated whole-chip energy, the field
// profile charges it, and the stored level decides (via
// BrownoutDetector) whether the card keeps running at all.
//
// Units: energy in fJ throughout (the power models' native unit).
// Capacitor levels derive from ½CV² with C in nF: 1 nF·V² = 1e-9 J =
// 1e6 fJ. Voltage thresholds are expressed in volts and converted to
// energy levels once at construction — the integrator itself never
// does a sqrt on the hot path.
#ifndef SCT_EH_SUPPLY_H
#define SCT_EH_SUPPLY_H

#include <cmath>
#include <cstdint>

#include "eh/field_profile.h"

namespace sct::eh {

/// Storage + threshold parameters for one supply instance.
struct SupplyConfig {
  double capacitance_nF = 10.0;  ///< Buffer capacitor.
  double vMax = 5.0;             ///< Shunt-regulated ceiling.
  double vOn = 4.0;              ///< Power-on / restart threshold.
  double vBrownout = 3.2;        ///< Brownout warning threshold.
  double vDead = 2.6;            ///< Logic fails below this.
  /// Fraction of full charge present at t=0 (1.0 = charged).
  double initialFraction = 1.0;
  /// Whole-chip scale over bus-interface energy (power::BudgetChecker).
  double chipScale = 120.0;
  /// Static chip draw while powered (µW, converted per cycle).
  double idlePower_uW = 0.5;

  double capacity_fJ() const {
    return 0.5 * capacitance_nF * vMax * vMax * 1e6;
  }
  double level_fJ(double volts) const {
    return 0.5 * capacitance_nF * volts * volts * 1e6;
  }
};

/// Charge/discharge integrator. stepOn/stepOff advance exactly one
/// wall cycle; the accumulation order is fixed (harvest, then drain),
/// so a given (profile, workload) pair reproduces the same double
/// bit patterns on every run and every thread.
class SupplyModel {
 public:
  SupplyModel(const SupplyConfig& config, const FieldProfile& field,
              std::uint64_t clockPeriodPs);

  /// Whole-chip draw one cycle of `busEnergy_fJ` implies: the
  /// documented scale factor plus the static draw. The runner shares
  /// this exact value with the rolling-current window so the detector
  /// and the integrator never disagree.
  double chipDrain_fJ(double busEnergy_fJ) const {
    return busEnergy_fJ * config_.chipScale + idlePerCycle_fJ_;
  }

  /// One powered wall cycle: harvest from the field, then drain the
  /// cycle's bus-interface energy scaled to the whole chip plus the
  /// static draw.
  void stepOn(std::uint64_t wallCycle, double busEnergy_fJ) {
    stepOnChip(wallCycle, chipDrain_fJ(busEnergy_fJ));
  }

  /// stepOn with the chip-level drain already computed.
  void stepOnChip(std::uint64_t wallCycle, double chipDrain_fJ) {
    harvest(wallCycle);
    drain(chipDrain_fJ);
  }

  /// One unpowered wall cycle: the chip is dark, only the field
  /// charges the capacitor.
  void stepOff(std::uint64_t wallCycle) { harvest(wallCycle); }

  /// Withdraw a lump sum (backup/restore costs). Clamped at zero.
  void drain(double fJ) {
    consumed_fJ_ += fJ;
    stored_fJ_ -= fJ;
    if (stored_fJ_ < 0.0) stored_fJ_ = 0.0;
  }

  double stored_fJ() const { return stored_fJ_; }
  double capacity_fJ() const { return capacity_fJ_; }
  /// Capacitor voltage implied by the stored energy (reporting only).
  double voltage() const {
    return config_.vMax * std::sqrt(stored_fJ_ / capacity_fJ_);
  }

  bool belowBrownout() const { return stored_fJ_ <= brownoutLevel_fJ_; }
  bool aboveRestart() const { return stored_fJ_ >= restartLevel_fJ_; }
  bool dead() const { return stored_fJ_ <= deadLevel_fJ_; }

  double brownoutLevel_fJ() const { return brownoutLevel_fJ_; }
  double restartLevel_fJ() const { return restartLevel_fJ_; }
  double deadLevel_fJ() const { return deadLevel_fJ_; }

  /// Raise the restart level (e.g. to guarantee headroom for restore
  /// costs). Clamped to capacity.
  void setRestartLevel_fJ(double fJ) {
    restartLevel_fJ_ = fJ < capacity_fJ_ ? fJ : capacity_fJ_;
  }

  /// Lifetime totals (monotonic; not affected by checkpoints — the
  /// supply lives in the wall-clock world, not the snapshot).
  double harvested_fJ() const { return harvested_fJ_; }
  double consumed_fJ() const { return consumed_fJ_; }

  const SupplyConfig& config() const { return config_; }

 private:
  void harvest(std::uint64_t wallCycle) {
    const double in_fJ =
        harvestPerCycle_fJ(field_->power_uW(wallCycle), periodPs_);
    harvested_fJ_ += in_fJ;
    stored_fJ_ += in_fJ;
    if (stored_fJ_ > capacity_fJ_) stored_fJ_ = capacity_fJ_;
  }

  SupplyConfig config_;
  const FieldProfile* field_;
  std::uint64_t periodPs_;
  double capacity_fJ_;
  double brownoutLevel_fJ_;
  double restartLevel_fJ_;
  double deadLevel_fJ_;
  double idlePerCycle_fJ_;
  double stored_fJ_;
  double harvested_fJ_ = 0.0;
  double consumed_fJ_ = 0.0;
};

} // namespace sct::eh

#endif // SCT_EH_SUPPLY_H
