#include "eh/sweep.h"

#include <stdexcept>

namespace sct::eh {

std::unique_ptr<FieldProfile> makeProfile(const std::string& name,
                                          std::uint64_t seed) {
  // Parameters sized against the default SupplyConfig and the
  // characterized coefficient table: the chip draws ~1e5 fJ per cycle
  // (~3.2 µW equivalent: idle 0.5 µW + bus energy × chipScale), so
  // "constant" and the noisy mean sustain execution while "burst" and
  // "swipe" average below the draw and force the card through
  // brownouts.
  if (name == "constant") {
    return std::make_unique<ConstantField>(5.0);
  }
  if (name == "burst") {
    return std::make_unique<SquareBurstField>(3.0, 6000, 6000);
  }
  if (name == "swipe") {
    return std::make_unique<SwipeField>(3.5, 4000, 8000, 15000);
  }
  if (name == "noisy") {
    return std::make_unique<NoisyField>(std::make_unique<ConstantField>(4.0),
                                        0.5, seed);
  }
  throw std::invalid_argument("unknown field profile: " + name);
}

std::unique_ptr<BackupScheme> makeScheme(const std::string& name) {
  if (name == "threshold") {
    return std::make_unique<ThresholdScheme>();
  }
  if (name == "quiesce") {
    // Clank-style frequent saves are incremental: cheaper per image.
    // The interval must fit inside one energy-limited segment (the
    // default supply buys ~300 powered cycles between restart and
    // brownout at the characterized draw), or progress falls back to
    // the runner's checkpoint-on-resume backstop.
    NvmCosts c;
    c.saveFixed_fJ = 5.0e5;
    c.savePerByte_fJ = 150.0;
    c.saveFixedCycles = 32;
    c.saveBytesPerCycle = 128;
    return std::make_unique<QuiesceScheme>(200, c);
  }
  if (name == "parametric") {
    // Belt and braces: periodic saves plus an emergency save on trip.
    return std::make_unique<ParametricScheme>("parametric", NvmCosts{},
                                              /*onBrownout=*/true,
                                              /*interval=*/500);
  }
  throw std::invalid_argument("unknown backup scheme: " + name);
}

std::vector<SweepVariant> defaultGrid() {
  std::vector<SweepVariant> grid;
  const char* schemes[] = {"threshold", "quiesce", "parametric"};
  const char* profiles[] = {"constant", "burst", "swipe", "noisy"};
  std::uint64_t seed = 1000;
  for (const char* s : schemes) {
    for (const char* p : profiles) {
      grid.push_back(SweepVariant{s, p, seed++});
    }
  }
  return grid;
}

SweepRunner::SweepRunner(const power::SignalEnergyTable& table,
                         unsigned blocks, const RunnerConfig& cfg)
    : table_(&table),
      program_(cryptoWorkload(blocks)),
      cfg_(cfg),
      fork_([&] {
        IntermittentRunner parent(table, program_);
        return parent.bootToMarker(kPreludeMagic);
      }) {}

SweepOutcome SweepRunner::runVariant(const ckpt::Snapshot& snap,
                                     const SweepVariant& v) const {
  IntermittentRunner runner(*table_, program_);
  runner.adopt(snap);
  const std::unique_ptr<FieldProfile> field = makeProfile(v.profile, v.seed);
  const std::unique_ptr<BackupScheme> scheme = makeScheme(v.scheme);
  SweepOutcome out;
  out.variant = v;
  out.result = runner.run(*field, *scheme, cfg_);
  return out;
}

std::vector<SweepOutcome> SweepRunner::run(
    const std::vector<SweepVariant>& grid, unsigned threads) const {
  std::vector<SweepOutcome> results(grid.size());
  fork_.runForks(grid.size(), threads,
                 [&](const ckpt::Snapshot& snap, std::size_t i) {
                   results[i] = runVariant(snap, grid[i]);
                 });
  return results;
}

SweepOutcome SweepRunner::runFromBoot(const SweepVariant& v) const {
  IntermittentRunner runner(*table_, program_);
  runner.bootToMarker(kPreludeMagic);
  const std::unique_ptr<FieldProfile> field = makeProfile(v.profile, v.seed);
  const std::unique_ptr<BackupScheme> scheme = makeScheme(v.scheme);
  SweepOutcome out;
  out.variant = v;
  out.result = runner.run(*field, *scheme, cfg_);
  return out;
}

} // namespace sct::eh
