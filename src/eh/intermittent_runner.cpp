#include "eh/intermittent_runner.h"

#include <algorithm>

#include "eh/workload.h"

namespace sct::eh {

namespace {

std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

} // namespace

IntermittentRunner::IntermittentRunner(const power::SignalEnergyTable& table,
                                       const soc::AssembledProgram& program)
    : soc_(soc::SocConfig{}), pm_(table) {
  pm_.attachLedger(ledger_);
  soc_.bus().addObserver(pm_);
  // Restoring re-establishes each memory's baseline image first, so
  // the program must be loaded before any restore — identically to how
  // the snapshot's parent was prepared (serve::CardInstance contract).
  soc_.loadProgram(program);
  soc_.registerCheckpoint(registry_);
  registry_.add("pm", pm_);
  registry_.add("ledger", ledger_);
  // The supply hook runs AFTER the bus process (registered at default
  // priority 0 by Tl1Bus) so it reads the cycle's committed energy.
  // Registered unconditionally at construction: the clock's handler
  // table is part of the snapshot layout, and it must look the same in
  // the parent that produced a snapshot and in the variant restoring
  // it. engaged_ gates the actual work.
  soc_.clock().onFalling([this] { hookCycle(); }, /*priority=*/100);
}

IntermittentRunner::~IntermittentRunner() = default;

bool IntermittentRunner::quiesced() {
  // The serve-style platform quiesce predicate (the cheap pre-filter;
  // saveAll still validates the full platform state).
  return soc_.cpu().busQuiesced() && soc_.bus().outstandingTotal() == 0 &&
         !soc_.uart().txBusy();
}

ckpt::Snapshot IntermittentRunner::bootToMarker(std::uint32_t marker,
                                                std::uint64_t maxCycles) {
  const bus::Address markerAddr =
      soc::memmap::kRamBase + kPreludeOffset;
  std::string lastRefusal;
  for (std::uint64_t i = 0; i < maxCycles; ++i) {
    soc_.clock().runCycles(1);
    if (soc_.ram().peekWord(markerAddr) != marker || !quiesced()) continue;
    try {
      return registry_.saveAll();
    } catch (const ckpt::CheckpointError& e) {
      lastRefusal = e.what();
    }
  }
  throw ckpt::CheckpointError(
      "IntermittentRunner::bootToMarker: marker not reached at a quiesce "
      "point" +
      (lastRefusal.empty() ? std::string()
                           : "; last refusal: " + lastRefusal));
}

void IntermittentRunner::hookCycle() {
  if (!engaged_) return;
  sim::Clock& clock = soc_.clock();
  // Total-energy delta, not energySinceLastCall_fJ(): the latter is a
  // shared interval marker other consumers may own.
  const double total = pm_.totalEnergy_fJ();
  const double chip_fJ = supply_->chipDrain_fJ(total - pmMark_);
  pmMark_ = total;
  supply_->stepOnChip(wall_, chip_fJ);
  rolling_->addCycle(chip_fJ);
  ++wall_;
  if (died_ || supply_->dead()) {
    died_ = true;
    clock.requestBreak();
    return;
  }
  if (soc_.cpu().halted()) {
    // Workload finished — hand control back every cycle so the outer
    // loop can settle the platform and close the books.
    clock.requestBreak();
    return;
  }
  if (!saveRequested_ && detector_.onCycle(*supply_, *rolling_)) {
    saveRequested_ = true;
  }
  if (saveRequested_) {
    clock.requestBreak();
    return;
  }
  if (periodicInterval_ != 0 &&
      clock.cycle() - backupSimCycle_ >= periodicInterval_ && quiesced()) {
    periodicDue_ = true;
    clock.requestBreak();
  }
}

RunResult IntermittentRunner::run(const FieldProfile& field,
                                  const BackupScheme& scheme,
                                  const RunnerConfig& cfg) {
  RunResult res;
  sim::Clock& clock = soc_.clock();
  SupplyModel supply(cfg.supply, field, clock.period());
  // Fed chip-level energies (chipScale 1.0): the exact per-cycle drain
  // the supply integrates, so detector and integrator agree.
  power::RollingCurrent rolling(power::contactless(), clock.period(),
                                /*chipScale=*/1.0,
                                cfg.currentWindowCycles);
  supply_ = &supply;
  rolling_ = &rolling;
  detector_ = BrownoutDetector(cfg.brownout);
  periodicInterval_ = scheme.periodicInterval();
  wall_ = 0;
  died_ = false;
  saveRequested_ = false;
  periodicDue_ = false;
  pmMark_ = pm_.totalEnergy_fJ();

  // Backup #0 is free: the state the card entered the field with is
  // already in NVM (it is the personalized card image).
  std::vector<std::uint8_t> backupBytes =
      registry_.saveAll().saveToBuffer();
  backupSimCycle_ = clock.cycle();
  res.checkpointBytes = backupBytes.size();
  res.checkpointDigest = fnv1a(backupBytes);

  // Restart headroom: recharging exactly to vOn and then paying the
  // restore must not land back below the brownout threshold, or the
  // card would livelock in a trip/restore loop.
  const BackupCosts restoreEstimate = scheme.restoreCosts(backupBytes.size());
  supply.setRestartLevel_fJ(
      std::max(supply.restartLevel_fJ(),
               supply.brownoutLevel_fJ() + 2.0 * restoreEstimate.energy_fJ));

  obs::LedgerView segLedger = ledger_.view();
  std::uint64_t segWallStart = wall_;
  std::uint64_t segSimStart = clock.cycle();

  const auto pushSegment = [&] {
    Segment s;
    s.wallStart = segWallStart;
    s.wallEnd = wall_;
    s.simStart = segSimStart;
    s.simEnd = clock.cycle();
    s.energy = obs::delta(ledger_.view(), segLedger);
    res.segments.push_back(s);
  };

  const auto takeBackup = [&] {
    backupBytes = registry_.saveAll().saveToBuffer();
    const BackupCosts sc = scheme.saveCosts(backupBytes.size());
    // The core stalls while the NVM engine streams the image out; the
    // field keeps charging, the lump sum models the write energy.
    for (std::uint64_t i = 0;
         i < sc.cycles && wall_ < cfg.maxWallCycles; ++i) {
      supply.stepOff(wall_);
      ++wall_;
      ++res.overheadCycles;
    }
    supply.drain(sc.energy_fJ);
    res.backupEnergy_fJ += sc.energy_fJ;
    ++res.backups;
    backupSimCycle_ = clock.cycle();
    res.checkpointBytes = backupBytes.size();
    res.checkpointDigest = fnv1a(backupBytes);
  };

  // Run a powered stretch; wall_ advances inside the hook.
  const auto runPowered = [&](std::uint64_t cycles) {
    const std::uint64_t before = wall_;
    clock.runCycles(cycles);
    res.activeCycles += wall_ - before;
  };

  bool powered = supply.aboveRestart();
  engaged_ = true;
  while (wall_ < cfg.maxWallCycles) {
    if (!powered) {
      // Dark: the card is off, only the field charges the capacitor.
      while (wall_ < cfg.maxWallCycles && !supply.aboveRestart()) {
        supply.stepOff(wall_);
        ++wall_;
        ++res.deadCycles;
      }
      if (wall_ >= cfg.maxWallCycles) break;
      // Recharged: pay the restore and rewind to the last backup.
      const BackupCosts rc = scheme.restoreCosts(backupBytes.size());
      for (std::uint64_t i = 0;
           i < rc.cycles && wall_ < cfg.maxWallCycles; ++i) {
        supply.stepOff(wall_);
        ++wall_;
        ++res.overheadCycles;
      }
      supply.drain(rc.energy_fJ);
      res.restoreEnergy_fJ += rc.energy_fJ;
      ++res.restores;
      const std::uint64_t simAtOff = clock.cycle();
      registry_.loadAll(ckpt::Snapshot::loadFromBuffer(backupBytes));
      const std::uint64_t lost = simAtOff - clock.cycle();
      res.replayedCycles += lost;
      if (periodicInterval_ != 0 && lost > 0) {
        // Checkpoint-on-resume: the last power-down lost progress, so
        // the periodic scheme re-checkpoints at the FIRST quiesce point
        // of the new segment instead of waiting a full interval.
        // Without this a segment shorter than the interval never
        // persists anything and the run livelocks, replaying the same
        // stretch forever (the sweep exposed exactly that); with it a
        // mis-sized interval degrades to slow-but-monotonic progress.
        backupSimCycle_ = clock.cycle() >= periodicInterval_
                              ? clock.cycle() - periodicInterval_
                              : 0;
      }
      pmMark_ = pm_.totalEnergy_fJ();  // Rewound with the platform.
      // The card was dark: the drain samples from before the outage
      // are not "recent" draw, and leaving them in the window lets the
      // predictive guard trip on the first post-restore cycle (stored
      // sits near the restart level, well below brownout + guard x the
      // pre-outage mean), re-browning the card before it can reach a
      // quiesce point — a restore/trip livelock for schemes that do
      // not save on brownout.
      rolling.resetWindow();
      detector_.rearm();
      saveRequested_ = false;
      periodicDue_ = false;
      died_ = false;
      powered = true;
      segLedger = ledger_.view();
      segWallStart = wall_;
      segSimStart = clock.cycle();
      continue;
    }

    runPowered(std::min<std::uint64_t>(cfg.chunkCycles,
                                       cfg.maxWallCycles - wall_));

    if (soc_.cpu().halted() && quiesced()) {
      res.completed = true;
      pushSegment();
      break;
    }
    if (died_) {
      // The supply collapsed before a save could happen: everything
      // since the last backup is lost.
      ++res.hardDeaths;
      pushSegment();
      powered = false;
      continue;
    }
    if (saveRequested_) {
      res.brownoutWallCycles.push_back(wall_);
      // Step to the next quiesce point — snapshots are only legal
      // there. The supply keeps draining; the field may collapse first.
      std::uint64_t hunt = 0;
      while (!quiesced() && !died_ && hunt < cfg.quiesceHuntLimit &&
             wall_ < cfg.maxWallCycles) {
        runPowered(1);
        ++hunt;
      }
      if (died_ || !quiesced()) {
        ++res.hardDeaths;
        pushSegment();
        powered = false;
        saveRequested_ = false;
        continue;
      }
      if (scheme.backupOnBrownout()) takeBackup();
      pushSegment();
      powered = false;
      saveRequested_ = false;
      continue;
    }
    if (periodicDue_) {
      // The hook only raises this at a quiesce point, but the cycle
      // that completed the break may have started new work.
      if (quiesced()) takeBackup();
      periodicDue_ = false;
      continue;
    }
  }

  engaged_ = false;
  supply_ = nullptr;
  rolling_ = nullptr;

  res.wallCycles = wall_;
  res.simCycles = clock.cycle();
  res.instructions = soc_.cpu().stats().instructions;
  res.brownouts = detector_.trips();
  res.harvested_fJ = supply.harvested_fJ();
  res.consumed_fJ = supply.consumed_fJ();
  res.finalStored_fJ = supply.stored_fJ();
  res.progressWord =
      soc_.ram().peekWord(soc::memmap::kRamBase + kProgressOffset);
  res.digestWord =
      soc_.ram().peekWord(soc::memmap::kRamBase + kDigestOffset);
  return res;
}

void publishRunObs(const RunResult& r, obs::StatsRegistry& reg) {
  reg.counter("eh.brownouts").add(r.brownouts);
  reg.counter("eh.backups").add(r.backups);
  reg.counter("eh.restores").add(r.restores);
  reg.counter("eh.hard_deaths").add(r.hardDeaths);
  reg.counter("eh.active_cycles").add(r.activeCycles);
  reg.counter("eh.dead_cycles").add(r.deadCycles);
  reg.counter("eh.overhead_cycles").add(r.overheadCycles);
  reg.counter("eh.replayed_cycles").add(r.replayedCycles);
  reg.counter("eh.wall_cycles").add(r.wallCycles);
  reg.counter("eh.completions").add(r.completed ? 1 : 0);
  reg.gauge("eh.backup_energy_fJ").add(r.backupEnergy_fJ);
  reg.gauge("eh.restore_energy_fJ").add(r.restoreEnergy_fJ);
  reg.gauge("eh.harvested_fJ").add(r.harvested_fJ);
  reg.gauge("eh.consumed_fJ").add(r.consumed_fJ);
  obs::Histogram& seg = reg.histogram(
      "eh.segment_cycles",
      {256, 1024, 4096, 16384, 65536, 262144});
  for (const Segment& s : r.segments) seg.record(s.wallEnd - s.wallStart);
  if (r.completed) {
    reg.histogram("eh.time_to_completion_kcycles",
                  {64, 256, 1024, 4096, 16384})
        .record(r.wallCycles / 1000);
  }
}

} // namespace sct::eh
