// Pluggable backup/restore policies for intermittent power.
//
// The energy-harvesting literature's classic trade-off: saving state
// rarely (only when the supply is about to collapse) minimizes NVM
// traffic but risks losing a whole segment to a sudden field loss,
// while saving at every safe point bounds the loss window but pays
// NVM energy continuously. The schemes here parameterize that axis
// the way eh-sim's BEC / Clank / parametric models do (SNIPPETS.md
// snippet 1), with the costs charged against the same SupplyModel the
// workload drains — schemes compete on real energy, not on abstract
// counters:
//   ThresholdScheme  — checkpoint only when the brownout detector
//                      trips (BEC-style "backup every cycle the supply
//                      demands it, and only then").
//   QuiesceScheme    — checkpoint every N forward-progress cycles at a
//                      quiesce point (Clank-style); a brownout then
//                      powers down WITHOUT an emergency save, losing
//                      progress back to the last periodic backup. (If
//                      the energy-limited segment is shorter than N,
//                      the runner's checkpoint-on-resume backstop
//                      keeps progress monotonic — see
//                      IntermittentRunner.)
//   ParametricScheme — both knobs plus arbitrary fixed/per-byte
//                      energy and latency costs, for cost-model sweeps.
//
// Costs scale with the snapshot size: `fixed + perByte * bytes` energy
// (fJ, chip-level) and `fixed + bytes / bytesPerCycle` wall cycles,
// modeling an NVM write/read engine with a setup phase and a bounded
// write width.
#ifndef SCT_EH_BACKUP_SCHEME_H
#define SCT_EH_BACKUP_SCHEME_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace sct::eh {

/// What one save or restore costs the card.
struct BackupCosts {
  std::uint64_t cycles = 0;  ///< Wall cycles the operation stalls.
  double energy_fJ = 0.0;    ///< Chip-level energy drained.
};

/// NVM engine cost parameters shared by save and restore.
struct NvmCosts {
  double saveFixed_fJ = 1.0e6;
  double savePerByte_fJ = 300.0;
  std::uint64_t saveFixedCycles = 64;
  std::uint64_t saveBytesPerCycle = 64;
  double restoreFixed_fJ = 5.0e5;
  double restorePerByte_fJ = 100.0;
  std::uint64_t restoreFixedCycles = 32;
  std::uint64_t restoreBytesPerCycle = 128;
};

class BackupScheme {
 public:
  virtual ~BackupScheme() = default;

  virtual std::string_view name() const = 0;

  /// Emergency checkpoint when the brownout detector trips? (Schemes
  /// that rely on periodic backups alone return false and accept the
  /// replay cost.)
  virtual bool backupOnBrownout() const = 0;

  /// Proactive checkpoint every this many forward-progress cycles at
  /// the next quiesce point (0 = never).
  virtual std::uint64_t periodicInterval() const = 0;

  virtual BackupCosts saveCosts(std::size_t snapshotBytes) const = 0;
  virtual BackupCosts restoreCosts(std::size_t snapshotBytes) const = 0;
};

/// Save only when the supply demands it.
class ThresholdScheme : public BackupScheme {
 public:
  explicit ThresholdScheme(const NvmCosts& costs = {});
  std::string_view name() const override { return "threshold"; }
  bool backupOnBrownout() const override { return true; }
  std::uint64_t periodicInterval() const override { return 0; }
  BackupCosts saveCosts(std::size_t snapshotBytes) const override;
  BackupCosts restoreCosts(std::size_t snapshotBytes) const override;

 protected:
  NvmCosts costs_;
};

/// Save every `interval` forward-progress cycles; never on brownout.
class QuiesceScheme : public BackupScheme {
 public:
  explicit QuiesceScheme(std::uint64_t interval, const NvmCosts& costs = {});
  std::string_view name() const override { return "quiesce"; }
  bool backupOnBrownout() const override { return false; }
  std::uint64_t periodicInterval() const override { return interval_; }
  BackupCosts saveCosts(std::size_t snapshotBytes) const override;
  BackupCosts restoreCosts(std::size_t snapshotBytes) const override;

 protected:
  std::uint64_t interval_;
  NvmCosts costs_;
};

/// Every knob exposed, for cost-model exploration sweeps.
class ParametricScheme final : public BackupScheme {
 public:
  ParametricScheme(std::string_view name, const NvmCosts& costs,
                   bool onBrownout, std::uint64_t interval);
  std::string_view name() const override { return name_; }
  bool backupOnBrownout() const override { return onBrownout_; }
  std::uint64_t periodicInterval() const override { return interval_; }
  BackupCosts saveCosts(std::size_t snapshotBytes) const override;
  BackupCosts restoreCosts(std::size_t snapshotBytes) const override;

 private:
  std::string_view name_;
  NvmCosts costs_;
  bool onBrownout_;
  std::uint64_t interval_;
};

/// Shared cost arithmetic (`fixed + perByte * bytes`, `fixed + ceil`).
BackupCosts nvmSaveCosts(const NvmCosts& c, std::size_t bytes);
BackupCosts nvmRestoreCosts(const NvmCosts& c, std::size_t bytes);

} // namespace sct::eh

#endif // SCT_EH_BACKUP_SCHEME_H
