// Reader-field power profiles for harvested-energy simulation.
//
// A contactless card is powered by the reader's RF field, and the
// field the card actually sees is anything but constant: the card is
// swiped past the antenna, the reader duty-cycles its carrier, other
// cards detune the loop. A FieldProfile maps a wall-clock cycle number
// to the instantaneous power the harvesting front-end delivers to the
// storage capacitor.
//
// Determinism contract: every profile is a PURE FUNCTION of the cycle
// number (plus construction-time parameters). Nothing mutates on
// evaluation, so the delivered power never depends on how often or in
// which order the supply integrator sampled it — the foundation of the
// threads=1 vs threads=N bit-identity bar. The noisy profile keeps the
// contract by hashing (seed, cycle) instead of carrying RNG state.
//
// Units follow the repo convention (power/budget.cpp): power in µW,
// energy in fJ, and energy per cycle = power_uW * clockPeriodPs.
#ifndef SCT_EH_FIELD_PROFILE_H
#define SCT_EH_FIELD_PROFILE_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace sct::eh {

class FieldProfile {
 public:
  virtual ~FieldProfile() = default;

  /// Instantaneous harvested power (µW) during wall cycle `cycle`.
  virtual double power_uW(std::uint64_t cycle) const = 0;

  virtual std::string_view name() const = 0;
};

/// Steady carrier: the card sits on the reader.
class ConstantField final : public FieldProfile {
 public:
  explicit ConstantField(double uW) : uW_(uW) {}
  double power_uW(std::uint64_t) const override { return uW_; }
  std::string_view name() const override { return "constant"; }

 private:
  double uW_;
};

/// Duty-cycled carrier: `on_uW` for `onCycles`, then dead air for
/// `offCycles`, repeating. `phase` shifts the pattern so sweeps can
/// start mid-burst.
class SquareBurstField final : public FieldProfile {
 public:
  SquareBurstField(double on_uW, std::uint64_t onCycles,
                   std::uint64_t offCycles, std::uint64_t phase = 0);
  double power_uW(std::uint64_t cycle) const override;
  std::string_view name() const override { return "burst"; }

 private:
  double on_uW_;
  std::uint64_t onCycles_;
  std::uint64_t period_;
  std::uint64_t phase_;
};

/// A card swiped past the antenna: linear ramp up to `peak_uW` over
/// `rampCycles`, a hold at the peak for `holdCycles`, a symmetric ramp
/// down, then `gapCycles` of no field before the next swipe.
class SwipeField final : public FieldProfile {
 public:
  SwipeField(double peak_uW, std::uint64_t rampCycles,
             std::uint64_t holdCycles, std::uint64_t gapCycles);
  double power_uW(std::uint64_t cycle) const override;
  std::string_view name() const override { return "swipe"; }

  std::uint64_t period() const { return period_; }

 private:
  double peak_uW_;
  std::uint64_t rampCycles_;
  std::uint64_t holdCycles_;
  std::uint64_t period_;
};

/// Multiplicative jitter over an inner profile: power is the inner
/// value scaled by a factor in [1 - jitter, 1 + jitter], drawn from a
/// stateless splitmix64 hash of (seed, cycle). Same seed + cycle ⇒
/// same factor, always.
class NoisyField final : public FieldProfile {
 public:
  NoisyField(std::unique_ptr<FieldProfile> inner, double jitter,
             std::uint64_t seed);
  double power_uW(std::uint64_t cycle) const override;
  std::string_view name() const override { return name_; }

 private:
  std::unique_ptr<FieldProfile> inner_;
  double jitter_;
  std::uint64_t seed_;
  std::string name_;
};

/// Energy (fJ) one cycle of `power_uW` delivers, with the repo's
/// 1 fJ / 1 ps = 1 µW convention (see power::BudgetChecker).
inline double harvestPerCycle_fJ(double power_uW, std::uint64_t periodPs) {
  return power_uW * static_cast<double>(periodPs);
}

} // namespace sct::eh

#endif // SCT_EH_FIELD_PROFILE_H
