// Scheme × field-profile exploration over ckpt::ForkRunner.
//
// Every variant of an intermittent-power sweep executes the identical
// boot prelude (RAM zeroize + EEPROM scan) before the measured crypto
// phase — exactly the amortizable prefix ForkRunner exists for. One
// parent runner boots the workload to the prelude marker at a quiesce
// point and is snapshotted; each variant restores that snapshot into a
// fresh, identically constructed runner, attaches its own scheme ×
// field supply, and runs only the intermittent main phase. Results are
// written into caller-owned slots keyed by variant index (the
// ParallelRunner discipline), and the supply/field evaluation is a
// pure function of wall cycle — so the sweep output is bit-identical
// at any worker count.
#ifndef SCT_EH_SWEEP_H
#define SCT_EH_SWEEP_H

#include <memory>
#include <string>
#include <vector>

#include "ckpt/fork_runner.h"
#include "eh/intermittent_runner.h"
#include "eh/workload.h"

namespace sct::eh {

/// One cell of the sweep grid.
struct SweepVariant {
  std::string scheme;   ///< "threshold" | "quiesce" | "parametric"
  std::string profile;  ///< "constant" | "burst" | "swipe" | "noisy"
  std::uint64_t seed = 0;  ///< Noise seed (noisy profile only).
};

struct SweepOutcome {
  SweepVariant variant;
  RunResult result;
};

/// Factory for the named profiles the sweep grid uses. Parameters are
/// fixed here so a grid cell name identifies an exact field shape.
std::unique_ptr<FieldProfile> makeProfile(const std::string& name,
                                          std::uint64_t seed);

/// Factory for the named schemes.
std::unique_ptr<BackupScheme> makeScheme(const std::string& name);

/// The default scheme × profile grid (every combination, seeded).
std::vector<SweepVariant> defaultGrid();

class SweepRunner {
 public:
  /// Boots the parent workload (blocks crypto blocks) to the prelude
  /// marker on the calling thread and keeps the snapshot.
  SweepRunner(const power::SignalEnergyTable& table, unsigned blocks,
              const RunnerConfig& cfg = {});

  /// Run every grid cell. threads follows ForkRunner semantics
  /// (0 = default pool, 1 = sequential reference order).
  std::vector<SweepOutcome> run(const std::vector<SweepVariant>& grid,
                                unsigned threads) const;

  /// The boot-per-variant reference: construct a fresh runner, execute
  /// the prelude, then the intermittent phase. Bit-identical outcomes
  /// to run() (restore-equivalence), used as the bench baseline and
  /// the equivalence test.
  SweepOutcome runFromBoot(const SweepVariant& v) const;

  const ckpt::Snapshot& snapshot() const { return fork_.snapshot(); }

 private:
  SweepOutcome runVariant(const ckpt::Snapshot& snap,
                          const SweepVariant& v) const;

  const power::SignalEnergyTable* table_;
  soc::AssembledProgram program_;
  RunnerConfig cfg_;
  ckpt::ForkRunner fork_;
};

} // namespace sct::eh

#endif // SCT_EH_SWEEP_H
