#include "eh/backup_scheme.h"

namespace sct::eh {

BackupCosts nvmSaveCosts(const NvmCosts& c, std::size_t bytes) {
  BackupCosts out;
  const std::uint64_t width =
      c.saveBytesPerCycle == 0 ? 1 : c.saveBytesPerCycle;
  out.cycles = c.saveFixedCycles + (bytes + width - 1) / width;
  out.energy_fJ =
      c.saveFixed_fJ + c.savePerByte_fJ * static_cast<double>(bytes);
  return out;
}

BackupCosts nvmRestoreCosts(const NvmCosts& c, std::size_t bytes) {
  BackupCosts out;
  const std::uint64_t width =
      c.restoreBytesPerCycle == 0 ? 1 : c.restoreBytesPerCycle;
  out.cycles = c.restoreFixedCycles + (bytes + width - 1) / width;
  out.energy_fJ =
      c.restoreFixed_fJ + c.restorePerByte_fJ * static_cast<double>(bytes);
  return out;
}

ThresholdScheme::ThresholdScheme(const NvmCosts& costs) : costs_(costs) {}

BackupCosts ThresholdScheme::saveCosts(std::size_t snapshotBytes) const {
  return nvmSaveCosts(costs_, snapshotBytes);
}

BackupCosts ThresholdScheme::restoreCosts(std::size_t snapshotBytes) const {
  return nvmRestoreCosts(costs_, snapshotBytes);
}

QuiesceScheme::QuiesceScheme(std::uint64_t interval, const NvmCosts& costs)
    : interval_(interval == 0 ? 1 : interval), costs_(costs) {}

BackupCosts QuiesceScheme::saveCosts(std::size_t snapshotBytes) const {
  return nvmSaveCosts(costs_, snapshotBytes);
}

BackupCosts QuiesceScheme::restoreCosts(std::size_t snapshotBytes) const {
  return nvmRestoreCosts(costs_, snapshotBytes);
}

ParametricScheme::ParametricScheme(std::string_view name,
                                   const NvmCosts& costs, bool onBrownout,
                                   std::uint64_t interval)
    : name_(name), costs_(costs), onBrownout_(onBrownout),
      interval_(interval) {}

BackupCosts ParametricScheme::saveCosts(std::size_t snapshotBytes) const {
  return nvmSaveCosts(costs_, snapshotBytes);
}

BackupCosts ParametricScheme::restoreCosts(std::size_t snapshotBytes) const {
  return nvmRestoreCosts(costs_, snapshotBytes);
}

} // namespace sct::eh
