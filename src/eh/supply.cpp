#include "eh/supply.h"

namespace sct::eh {

SupplyModel::SupplyModel(const SupplyConfig& config,
                         const FieldProfile& field,
                         std::uint64_t clockPeriodPs)
    : config_(config),
      field_(&field),
      periodPs_(clockPeriodPs),
      capacity_fJ_(config.capacity_fJ()),
      brownoutLevel_fJ_(config.level_fJ(config.vBrownout)),
      restartLevel_fJ_(config.level_fJ(config.vOn)),
      deadLevel_fJ_(config.level_fJ(config.vDead)),
      idlePerCycle_fJ_(
          harvestPerCycle_fJ(config.idlePower_uW, clockPeriodPs)),
      stored_fJ_(capacity_fJ_ * config.initialFraction) {}

} // namespace sct::eh
