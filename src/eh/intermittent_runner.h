// Intermittent execution of one smart-card workload under a harvested
// supply: run while the capacitor holds, checkpoint at a quiesce point
// when the brownout detector trips, go dark, restore on recharge.
//
// Architecture mirrors serve::CardInstance — the runner owns a full
// TL1 SmartCardSoC, its Tl1PowerModel and EnergyLedger, and a
// CheckpointRegistry covering the 14 platform sections plus "pm" and
// "ledger" (the identical section set, so restores rewind the energy
// accumulators to exact bit patterns and per-segment ledger deltas
// subtract identical operands on any worker). On top of that sit the
// eh pieces:
//
//  * A supply hook registered on the falling clock edge at a priority
//    AFTER the bus process (the Tl1 bus commits its cycle and the
//    power model's busCycleEnd at priority 0): the hook reads the
//    power model's total-energy delta for the cycle just committed,
//    steps the SupplyModel (harvest then drain), feeds the
//    power::RollingCurrent window, and evaluates the BrownoutDetector.
//    On any event (trip, supply dead, core halted) it calls
//    Clock::requestBreak() so the outer loop regains control without
//    polling every cycle from outside. The hook is registered at
//    construction and gated by a flag — the clock's handler table is
//    part of the snapshot layout, so it must look identical in the
//    parent that boots the fork snapshot and in every variant that
//    restores it.
//
//  * Wall-clock accounting separate from the sim clock. A restore
//    rewinds the simulated platform (including its clock) to the
//    backup point, but the physical world does not rewind: wall cycles
//    advance monotonically through powered execution, dark recharge
//    and save/restore stalls. Forward progress is sim cycles; wall
//    cycles are what the transaction latency costs.
//
// The platform state the snapshot carries is exactly the serve set;
// the supply, detector and wall counters are deliberately NOT
// checkpointed — power loss rewinds the card, not the world.
#ifndef SCT_EH_INTERMITTENT_RUNNER_H
#define SCT_EH_INTERMITTENT_RUNNER_H

#include <cstdint>
#include <vector>

#include "bus/tl1_bus.h"
#include "ckpt/checkpoint.h"
#include "eh/backup_scheme.h"
#include "eh/brownout.h"
#include "eh/field_profile.h"
#include "eh/supply.h"
#include "obs/ledger.h"
#include "obs/stats.h"
#include "power/budget.h"
#include "power/coeff_table.h"
#include "power/tl1_power_model.h"
#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct::eh {

using Tl1Soc = soc::SmartCardSoC<bus::Tl1Bus>;

/// Runner knobs independent of supply/scheme choice.
struct RunnerConfig {
  SupplyConfig supply;
  /// Guard sized to the post-trip work it must buy — the quiesce hunt
  /// plus the backup engine's setup — at the CURRENT draw, per the
  /// detector contract. Keep it well below (restart - dead) / heavy
  /// draw: at the characterized chip's burst draw (~3.6e5 fJ/cycle)
  /// the default supply restarts with ~4.4e7 fJ above dead, so a guard
  /// of 128 would demand more headroom than a fresh restart provides
  /// and re-trip within cycles of every restore (a restore/trip
  /// livelock for schemes that skip the emergency save). 48 puts the
  /// guard level at the brownout threshold under sustained heavy load,
  /// leaving the debounced voltage trip primary and the predictive
  /// path covering spikes.
  BrownoutConfig brownout{4, 48};
  /// Rolling-current window feeding the detector (cycles).
  std::size_t currentWindowCycles = 64;
  /// Hard cap on wall cycles before the run is declared stuck.
  std::uint64_t maxWallCycles = 5'000'000;
  /// Chunk size for powered execution between event checks.
  std::uint64_t chunkCycles = 4096;
  /// Bound on the post-trip quiesce hunt (cycles).
  std::uint64_t quiesceHuntLimit = 20'000;
};

/// One powered interval between restore (or start) and power-down.
struct Segment {
  std::uint64_t wallStart = 0;
  std::uint64_t wallEnd = 0;
  std::uint64_t simStart = 0;
  std::uint64_t simEnd = 0;
  obs::LedgerView energy;  ///< Ledger delta over the interval.
};

struct RunResult {
  bool completed = false;        ///< Done marker written, core halted.
  std::uint64_t wallCycles = 0;  ///< Total wall time of the attempt.
  std::uint64_t activeCycles = 0;    ///< Powered, executing.
  std::uint64_t deadCycles = 0;      ///< Dark, recharging.
  std::uint64_t overheadCycles = 0;  ///< Save/restore stalls.
  std::uint64_t replayedCycles = 0;  ///< Progress lost to power-downs.
  std::uint64_t simCycles = 0;       ///< Final simulated clock cycle.
  std::uint64_t instructions = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t backups = 0;    ///< Checkpoints written (beyond #0).
  std::uint64_t restores = 0;
  std::uint64_t hardDeaths = 0;  ///< Supply hit vDead before a save.
  double backupEnergy_fJ = 0.0;
  double restoreEnergy_fJ = 0.0;
  double harvested_fJ = 0.0;
  double consumed_fJ = 0.0;
  double finalStored_fJ = 0.0;
  std::size_t checkpointBytes = 0;    ///< Size of the last backup.
  std::uint64_t checkpointDigest = 0; ///< FNV-1a of the last backup.
  std::uint32_t progressWord = 0;     ///< Blocks finished (workload).
  std::uint32_t digestWord = 0;       ///< Workload digest word.
  std::vector<std::uint64_t> brownoutWallCycles;
  std::vector<Segment> segments;

  /// Fraction of wall time spent making forward progress.
  double dutyCycle() const {
    return wallCycles == 0
               ? 0.0
               : static_cast<double>(activeCycles) /
                     static_cast<double>(wallCycles);
  }
  double overheadRatio() const {
    return wallCycles == 0
               ? 0.0
               : static_cast<double>(overheadCycles) /
                     static_cast<double>(wallCycles);
  }
};

class IntermittentRunner {
 public:
  /// Builds the platform and loads `program`. The instance is at
  /// reset; call run() directly (cold start) or adopt() a snapshot
  /// from an identically constructed parent first.
  IntermittentRunner(const power::SignalEnergyTable& table,
                     const soc::AssembledProgram& program);

  IntermittentRunner(const IntermittentRunner&) = delete;
  IntermittentRunner& operator=(const IntermittentRunner&) = delete;
  ~IntermittentRunner();

  /// Drive the platform (fully powered, no supply accounting) until
  /// the RAM word at kPreludeOffset reads `marker` and the platform
  /// quiesces, then snapshot. The ForkRunner parent for sweeps.
  ckpt::Snapshot bootToMarker(std::uint32_t marker,
                              std::uint64_t maxCycles = 2'000'000);

  /// Restore a snapshot taken by an identically constructed runner.
  void adopt(const ckpt::Snapshot& snap) { registry_.loadAll(snap); }

  /// Execute the workload from the current platform state under
  /// `field` and `scheme`. Returns when the done marker is written and
  /// the core halts, or when cfg.maxWallCycles elapse.
  RunResult run(const FieldProfile& field, const BackupScheme& scheme,
                const RunnerConfig& cfg);

  Tl1Soc& soc() { return soc_; }

 private:
  void hookCycle();
  bool quiesced();

  Tl1Soc soc_;
  power::Tl1PowerModel pm_;
  obs::EnergyLedger ledger_;
  ckpt::CheckpointRegistry registry_;

  // Per-run state the falling-edge hook reads/writes (plain members:
  // the hook is registered once at construction and gated by
  // engaged_, keeping the clock's handler table — part of the
  // snapshot layout — identical across parent and variants).
  bool engaged_ = false;
  double pmMark_ = 0.0;
  std::uint64_t wall_ = 0;
  SupplyModel* supply_ = nullptr;
  power::RollingCurrent* rolling_ = nullptr;
  BrownoutDetector detector_;
  std::uint64_t periodicInterval_ = 0;
  std::uint64_t backupSimCycle_ = 0;
  bool saveRequested_ = false;
  bool periodicDue_ = false;
  bool died_ = false;
};

/// Publish one attempt's counters into an obs registry under the
/// `eh.` prefix (brownouts, backups, dead/active/overhead cycles,
/// backup energy, per-segment length histogram).
void publishRunObs(const RunResult& r, obs::StatsRegistry& reg);

} // namespace sct::eh

#endif // SCT_EH_INTERMITTENT_RUNNER_H
