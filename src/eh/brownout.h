// Brownout detection with hysteresis and a load-aware predictive trip.
//
// A real card's voltage supervisor does two things this models: it
// debounces the warning threshold (a single dip below vBrownout during
// an EEPROM write spike must not power-cycle the card), and it is
// paired with enough capacitor headroom that once the warning fires
// the card can still reach a safe point and commit state to NVM. The
// second property is load-dependent, so the detector also consults the
// rolling-window average draw (power::RollingCurrent — the same
// accessor sct_report uses): if the energy above the dead level buys
// fewer cycles at the current draw than the configured guard, the trip
// fires early even though the voltage is still above the warning
// threshold. Hysteresis against chatter is provided by the supply's
// separate restart threshold (vOn > vBrownout): after a power-down the
// card only restarts once the capacitor recharges well above the level
// that tripped it.
#ifndef SCT_EH_BROWNOUT_H
#define SCT_EH_BROWNOUT_H

#include <cstdint>

#include "eh/supply.h"
#include "power/budget.h"

namespace sct::eh {

struct BrownoutConfig {
  /// Consecutive cycles at or below vBrownout before the trip fires.
  std::uint64_t debounceCycles = 4;
  /// Predictive trip: fire when the headroom above vDead covers fewer
  /// than this many cycles at the rolling average draw (0 disables).
  /// Sized to the worst-case distance to a quiesce point plus the
  /// backup latency.
  std::uint64_t guardCycles = 0;
};

class BrownoutDetector {
 public:
  explicit BrownoutDetector(const BrownoutConfig& config = {})
      : config_(config) {}

  /// Evaluate once per powered wall cycle, after the supply stepped.
  /// Returns true when the card must checkpoint and power down.
  bool onCycle(const SupplyModel& supply,
               const power::RollingCurrent& load) {
    if (supply.belowBrownout()) {
      if (++belowStreak_ >= config_.debounceCycles) return trip();
    } else {
      belowStreak_ = 0;
    }
    if (config_.guardCycles != 0) {
      const double perCycle_fJ = load.windowMeanEnergy_fJ();
      if (perCycle_fJ > 0.0) {
        const double headroom_fJ =
            supply.stored_fJ() - supply.deadLevel_fJ();
        if (headroom_fJ <
            perCycle_fJ * static_cast<double>(config_.guardCycles)) {
          return trip();
        }
      }
    }
    return false;
  }

  /// Re-arm after the power-down completed (called on restore).
  void rearm() { belowStreak_ = 0; }

  std::uint64_t trips() const { return trips_; }

 private:
  bool trip() {
    ++trips_;
    belowStreak_ = 0;
    return true;
  }

  BrownoutConfig config_;
  std::uint64_t belowStreak_ = 0;
  std::uint64_t trips_ = 0;
};

} // namespace sct::eh

#endif // SCT_EH_BROWNOUT_H
