#include "eh/workload.h"

#include <string>

#include "soc/smartcard.h"

namespace sct::eh {

soc::AssembledProgram cryptoWorkload(unsigned blocks) {
  // $s1 = RAM base (markers + ciphertext), $s2 = crypto SFR base.
  // The prelude mirrors the serve card-OS cold boot (RAM zeroize,
  // EEPROM header scan) at a quarter of the size, so a boot-per-variant
  // sweep still pays a prefix the fork sweep amortizes.
  std::string src = R"(
    li    $s1, 0x08000000
    li    $s2, 0x10000400

    # -- prelude: zeroize 2 KiB of scratch RAM ------------------------
    li    $t0, 0x08000800
    li    $t1, 0x08001000
  zram:
    sw    $zero, 0($t0)
    addiu $t0, $t0, 4
    bne   $t0, $t1, zram

    # -- prelude: checksum the first 2 KiB of EEPROM (waited reads) ---
    li    $t0, 0x0A000000
    li    $t1, 0x0A000800
    addiu $v0, $zero, 0
  escan:
    lw    $t3, 0($t0)
    addu  $v0, $v0, $t3
    addiu $t0, $t0, 4
    bne   $t0, $t1, escan
    sw    $v0, 8($s1)

    # Prelude done: publish the fork marker.
    li    $t0, 0x600D600D
    sw    $t0, 4($s1)

    # -- main phase: crypto transaction loop --------------------------
    # Session key into the coprocessor (written once).
    li    $t0, 0x00112233
    sw    $t0, 0x00($s2)
    li    $t0, 0x44556677
    sw    $t0, 0x04($s2)
    li    $t0, 0x8899AABB
    sw    $t0, 0x08($s2)
    li    $t0, 0xCCDDEEFF
    sw    $t0, 0x0C($s2)

    li    $s3, )" + std::to_string(blocks) + R"(
    addiu $s4, $zero, 0      # block counter
    addiu $v1, $zero, 0      # running digest
  blk:
    # Block input derives from the EEPROM checksum and the counter.
    xor   $t0, $v0, $s4
    sw    $t0, 0x10($s2)
    sll   $t1, $s4, 3
    addu  $t1, $t1, $v0
    sw    $t1, 0x14($s2)
    addiu $t0, $zero, 1
    sw    $t0, 0x18($s2)     # start
  cwait:
    lw    $t0, 0x1C($s2)
    bnez  $t0, cwait
    lw    $t0, 0x10($s2)
    lw    $t1, 0x14($s2)
    xor   $v1, $v1, $t0
    addu  $v1, $v1, $t1
    sll   $t2, $s4, 2
    addu  $t2, $t2, $s1
    sw    $t0, 0x40($t2)     # ciphertext word per block
    addiu $s4, $s4, 1
    sw    $s4, 12($s1)       # progress counter
    bne   $s4, $s3, blk

    sw    $v1, 16($s1)       # final digest
    li    $t0, 0xD00DFEED
    sw    $t0, 0($s1)        # done marker
    break
)";
  return soc::assemble(src, soc::memmap::kRomBase);
}

} // namespace sct::eh
