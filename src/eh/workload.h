// The intermittent-power evaluation workload: a card-OS boot prelude
// followed by a crypto transaction loop, with progress markers the
// runner can observe from outside the core.
#ifndef SCT_EH_WORKLOAD_H
#define SCT_EH_WORKLOAD_H

#include <cstdint>

#include "soc/assembler.h"

namespace sct::eh {

/// RAM words (offsets from memmap::kRamBase) the workload publishes.
inline constexpr std::uint32_t kDoneOffset = 0x00;      ///< kDoneMagic at end.
inline constexpr std::uint32_t kPreludeOffset = 0x04;   ///< kPreludeMagic.
inline constexpr std::uint32_t kChecksumOffset = 0x08;  ///< EEPROM checksum.
inline constexpr std::uint32_t kProgressOffset = 0x0C;  ///< Blocks finished.
inline constexpr std::uint32_t kDigestOffset = 0x10;    ///< Running digest.

inline constexpr std::uint32_t kPreludeMagic = 0x600D600Du;
inline constexpr std::uint32_t kDoneMagic = 0xD00DFEEDu;

/// Assemble the workload: zeroize 2 KiB of RAM and checksum 2 KiB of
/// EEPROM (the boot prelude, ending with kPreludeMagic at
/// kPreludeOffset — the fork point), then run `blocks` crypto
/// coprocessor encryptions, storing ciphertext words and bumping the
/// progress counter after each block, and finally write kDoneMagic and
/// halt. Every block's input derives from the EEPROM checksum and the
/// block index, so the final digest witnesses that no block was
/// skipped or replayed out of order.
soc::AssembledProgram cryptoWorkload(unsigned blocks);

} // namespace sct::eh

#endif // SCT_EH_WORKLOAD_H
