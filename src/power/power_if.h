// Power interfaces of the hierarchical energy models.
//
// The layer-1 bus power model "defines a method returning the energy
// dissipated during the last clock cycle and a second method which
// returns the dissipated energy since the last method call" — enabling
// cycle-accurate energy profiling (relevant against SPA/DPA power
// analysis) as well as interval estimation. The layer-2 model "comprises
// only one method to get the energy consumed since the last method
// call": phase-granular, not cycle-accurate (paper, Figure 6).
#ifndef SCT_POWER_POWER_IF_H
#define SCT_POWER_POWER_IF_H

namespace sct::power {

/// Interval energy interface (available at both layers).
class IntervalPowerIf {
 public:
  virtual ~IntervalPowerIf() = default;

  /// Energy (fJ) accumulated since the previous call (or construction).
  virtual double energySinceLastCall_fJ() = 0;

  /// Total accumulated energy (fJ); does not reset the interval marker.
  virtual double totalEnergy_fJ() const = 0;
};

/// Cycle-accurate energy interface (layer 1 only).
class CycleAccuratePowerIf : public IntervalPowerIf {
 public:
  /// Energy (fJ) dissipated during the last completed clock cycle.
  virtual double energyLastCycle_fJ() const = 0;
};

} // namespace sct::power

#endif // SCT_POWER_POWER_IF_H
