#include "power/coeff_table.h"

#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sct::power {

void SignalEnergyTable::save(std::ostream& os) const {
  os << "# EC interface energy coefficients (fJ per bit transition)\n";
  // max_digits10 keeps the round trip through text lossless.
  os << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (const auto& info : bus::kSignalTable) {
    os << info.name << ' ' << coeff_fJ(info.id) << '\n';
  }
}

SignalEnergyTable SignalEnergyTable::load(std::istream& is) {
  SignalEnergyTable table;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string name;
    double value = 0.0;
    if (!(ls >> name >> value)) {
      throw std::runtime_error("SignalEnergyTable: malformed line: " + line);
    }
    bool found = false;
    for (const auto& info : bus::kSignalTable) {
      if (info.name == name) {
        table.setCoeff_fJ(info.id, value);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("SignalEnergyTable: unknown signal: " + name);
    }
  }
  return table;
}

} // namespace sct::power
