// Layer-1 energy model (paper, Section 3.3 "Layer 1 Energy Model").
//
// "The power estimation unit is implemented as a dedicated module. It
// defines for each bus interface signal a member variable for the new
// and old value. The new values for all signals are set by the
// different bus phases. The bus process calls the energy calculation
// method after the write phase. [...] This methodology is like a
// transaction level to RTL adapter."
//
// Tl1PowerModel attaches to the layer-1 bus as an observer. At
// busCycleBegin it opens a new signal frame (buses and qualifiers hold,
// handshake strobes deassert); the address-phase and beat events drive
// the new values; at busCycleEnd it counts bit transitions between the
// old and new frames and converts them to energy with the characterized
// per-signal coefficients. The reconstructed frames are bit-identical
// to the layer-0 reference model's frames on the same workload (a
// property enforced by tests), so the only estimation error left is the
// coefficient abstraction itself — slope, coupling, hazard and baseline
// detail averaged into one number per signal (Table 2, layer 1).
#ifndef SCT_POWER_TL1_POWER_MODEL_H
#define SCT_POWER_TL1_POWER_MODEL_H

#include <cstdint>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_signals.h"
#include "power/coeff_table.h"
#include "power/power_if.h"

namespace sct::power {

class Tl1PowerModel final : public bus::Tl1Observer,
                            public CycleAccuratePowerIf {
 public:
  explicit Tl1PowerModel(const SignalEnergyTable& table) : table_(table) {}

  // bus::Tl1Observer
  void busCycleBegin(std::uint64_t cycle) override;
  void addressPhase(const bus::AddressPhaseInfo& info) override;
  void readBeat(const bus::DataBeatInfo& info) override;
  void writeBeat(const bus::DataBeatInfo& info) override;
  void busCycleEnd(std::uint64_t cycle) override;

  // CycleAccuratePowerIf
  double energyLastCycle_fJ() const override { return lastCycle_fJ_; }
  double energySinceLastCall_fJ() override;
  double totalEnergy_fJ() const override { return total_fJ_; }

  /// Transition counts per bundle over the whole run (diagnostics).
  std::uint64_t transitions(bus::SignalId id) const {
    return transitions_[static_cast<std::size_t>(id)];
  }

  /// The frame as reconstructed for the last completed cycle (used by
  /// the layer-0 equivalence tests).
  const bus::SignalFrame& frame() const { return oldFrame_; }

 private:
  SignalEnergyTable table_;
  bus::SignalFrame oldFrame_;
  bus::SignalFrame newFrame_;
  std::array<std::uint64_t, bus::kSignalCount> transitions_{};
  double lastCycle_fJ_ = 0.0;
  double total_fJ_ = 0.0;
  double intervalMarker_fJ_ = 0.0;
};

} // namespace sct::power

#endif // SCT_POWER_TL1_POWER_MODEL_H
