// Layer-1 energy model (paper, Section 3.3 "Layer 1 Energy Model").
//
// "The power estimation unit is implemented as a dedicated module. It
// defines for each bus interface signal a member variable for the new
// and old value. The new values for all signals are set by the
// different bus phases. The bus process calls the energy calculation
// method after the write phase. [...] This methodology is like a
// transaction level to RTL adapter."
//
// Tl1PowerModel attaches to the layer-1 bus as an observer. At
// busCycleBegin it opens a new signal frame (buses and qualifiers hold,
// handshake strobes deassert); the address-phase and beat events drive
// the new values; at busCycleEnd it counts bit transitions between the
// old and new frames and converts them to energy with the characterized
// per-signal coefficients. The reconstructed frames are bit-identical
// to the layer-0 reference model's frames on the same workload (a
// property enforced by tests), so the only estimation error left is the
// coefficient abstraction itself — slope, coupling, hazard and baseline
// detail averaged into one number per signal (Table 2, layer 1).
//
// The frame-reconstruction engine itself lives in
// bus::Tl1FrameEnergy (src/bus/tl1_frame_energy.h); this class is the
// public face — it binds the engine to the characterized coefficient
// table, adapts it to the Tl1Observer and CycleAccuratePowerIf
// interfaces, and advertises the engine through fusedFrameEnergy() so
// Tl1Bus can drive it non-virtually on the hot path. Both drive paths
// run the same engine code in the same order, so results are
// bit-identical either way (the observer path stays live for any
// publisher that does not know about fusing).
#ifndef SCT_POWER_TL1_POWER_MODEL_H
#define SCT_POWER_TL1_POWER_MODEL_H

#include <cstdint>

#include "bus/ec_interfaces.h"
#include "bus/ec_signals.h"
#include "bus/tl1_frame_energy.h"
#include "ckpt/state_io.h"
#include "obs/ledger.h"
#include "obs/stats.h"
#include "power/coeff_table.h"
#include "power/power_if.h"

namespace sct::power {

class Tl1PowerModel final : public bus::Tl1Observer,
                            public CycleAccuratePowerIf {
 public:
  explicit Tl1PowerModel(const SignalEnergyTable& table)
      : engine_(table.coeffs()) {}

  // bus::Tl1Observer — the generic (virtual) drive path; a fusing bus
  // calls the engine directly instead and never reaches these.
  void busCycleBegin(std::uint64_t cycle) override {
    engine_.busCycleBegin(cycle);
  }
  void addressPhase(const bus::AddressPhaseInfo& info) override {
    engine_.addressPhase(info);
  }
  void readBeat(const bus::DataBeatInfo& info) override {
    engine_.readBeat(info);
  }
  void writeBeat(const bus::DataBeatInfo& info) override {
    engine_.writeBeat(info);
  }
  void busCycleEnd(std::uint64_t cycle) override { engine_.busCycleEnd(cycle); }

  /// Hand the bus the engine for direct (non-virtual, inlinable)
  /// dispatch. Event order and arithmetic are identical to the observer
  /// path above.
  bus::Tl1FrameEnergy* fusedFrameEnergy() override { return &engine_; }

  // CycleAccuratePowerIf
  double energyLastCycle_fJ() const override {
    return engine_.energyLastCycle_fJ();
  }
  double energySinceLastCall_fJ() override {
    return engine_.energySinceLastCall_fJ();
  }
  double totalEnergy_fJ() const override { return engine_.totalEnergy_fJ(); }

  /// Transition counts per bundle over the whole run (diagnostics).
  std::uint64_t transitions(bus::SignalId id) const {
    return engine_.transitions(id);
  }

  /// The frame as reconstructed for the last completed cycle (used by
  /// the layer-0 equivalence tests; read it after busCycleEnd, i.e.
  /// from an observer registered after the power model).
  const bus::SignalFrame& frame() const { return engine_.frame(); }

  /// Attach an energy-attribution ledger. Every coefficient term of the
  /// busCycleEnd walk is forwarded in accumulation order and committed
  /// once per cycle, so ledger.total_fJ() stays bit-identical to
  /// totalEnergy_fJ(). `master` tags all contributions (the EC bus is
  /// single-master). Detached: one null-check per phase callback.
  void attachLedger(obs::EnergyLedger& ledger, int master = 0) {
    engine_.attachLedger(ledger, master);
  }

  /// Force the scalar dirty-walk even on busy cycles (test hook: the
  /// equivalence suite runs packed and scalar models side by side and
  /// requires bit-identical energy from both).
  void setPackedCounting(bool on) { engine_.setPackedCounting(on); }

  /// Cycles whose transition count went through the packed-lane wide
  /// XOR path (diagnostics, not serialized — resets with the object).
  std::uint64_t packedLaneCycles() const { return engine_.packedLaneCycles(); }

  /// Publish power.packed_lane_cycles into `reg`. Compiles to nothing
  /// with SCT_OBS=OFF.
  void publishObs(obs::StatsRegistry& reg) const {
    if constexpr (obs::kEnabled) {
      reg.counter("power.packed_lane_cycles").add(engine_.packedLaneCycles());
    } else {
      (void)reg;
    }
  }

  /// -- Checkpoint (see ckpt/checkpoint.h): the full signal state —
  /// frame, pre-cycle values, strobe masks, transition counts and the
  /// femtojoule accumulators (bit-exact doubles), so a restored model
  /// continues the exact FP accumulation sequence of the saved run.
  /// The byte layout is owned here and implemented by the engine.
  /// Version 2: the EB_Inv codec sideband joined the signal inventory,
  /// growing every per-signal array in the section by one slot.
  static constexpr std::uint32_t kCkptVersion = 2;

  void saveState(ckpt::StateWriter& w) const { engine_.saveState(w); }
  void loadState(ckpt::StateReader& r) { engine_.loadState(r); }

 private:
  bus::Tl1FrameEnergy engine_;
};

} // namespace sct::power

#endif // SCT_POWER_TL1_POWER_MODEL_H
