// Layer-1 energy model (paper, Section 3.3 "Layer 1 Energy Model").
//
// "The power estimation unit is implemented as a dedicated module. It
// defines for each bus interface signal a member variable for the new
// and old value. The new values for all signals are set by the
// different bus phases. The bus process calls the energy calculation
// method after the write phase. [...] This methodology is like a
// transaction level to RTL adapter."
//
// Tl1PowerModel attaches to the layer-1 bus as an observer. At
// busCycleBegin it opens a new signal frame (buses and qualifiers hold,
// handshake strobes deassert); the address-phase and beat events drive
// the new values; at busCycleEnd it counts bit transitions between the
// old and new frames and converts them to energy with the characterized
// per-signal coefficients. The reconstructed frames are bit-identical
// to the layer-0 reference model's frames on the same workload (a
// property enforced by tests), so the only estimation error left is the
// coefficient abstraction itself — slope, coupling, hazard and baseline
// detail averaged into one number per signal (Table 2, layer 1).
#ifndef SCT_POWER_TL1_POWER_MODEL_H
#define SCT_POWER_TL1_POWER_MODEL_H

#include <cstdint>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_signals.h"
#include "ckpt/state_io.h"
#include "obs/ledger.h"
#include "power/coeff_table.h"
#include "power/power_if.h"

namespace sct::power {

class Tl1PowerModel final : public bus::Tl1Observer,
                            public CycleAccuratePowerIf {
 public:
  explicit Tl1PowerModel(const SignalEnergyTable& table) : table_(table) {}

  // bus::Tl1Observer
  void busCycleBegin(std::uint64_t cycle) override;
  void addressPhase(const bus::AddressPhaseInfo& info) override;
  void readBeat(const bus::DataBeatInfo& info) override;
  void writeBeat(const bus::DataBeatInfo& info) override;
  void busCycleEnd(std::uint64_t cycle) override;

  // CycleAccuratePowerIf
  double energyLastCycle_fJ() const override { return lastCycle_fJ_; }
  double energySinceLastCall_fJ() override;
  double totalEnergy_fJ() const override { return total_fJ_; }

  /// Transition counts per bundle over the whole run (diagnostics).
  std::uint64_t transitions(bus::SignalId id) const {
    return transitions_[static_cast<std::size_t>(id)];
  }

  /// The frame as reconstructed for the last completed cycle (used by
  /// the layer-0 equivalence tests; read it after busCycleEnd, i.e.
  /// from an observer registered after the power model).
  const bus::SignalFrame& frame() const { return frame_; }

  /// Attach an energy-attribution ledger. Every coefficient term of the
  /// busCycleEnd walk is forwarded in accumulation order and committed
  /// once per cycle, so ledger.total_fJ() stays bit-identical to
  /// totalEnergy_fJ(). `master` tags all contributions (the EC bus is
  /// single-master). Detached: one null-check per phase callback.
  void attachLedger(obs::EnergyLedger& ledger, int master = 0) {
    ledger_ = &ledger;
    master_ = master;
  }

  /// -- Checkpoint (see ckpt/checkpoint.h): the full signal state —
  /// frame, pre-cycle values, strobe masks, transition counts and the
  /// femtojoule accumulators (bit-exact doubles), so a restored model
  /// continues the exact FP accumulation sequence of the saved run.
  static constexpr std::uint32_t kCkptVersion = 1;

  void saveState(ckpt::StateWriter& w) const {
    for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
      w.u64(frame_.get(static_cast<bus::SignalId>(i)));
    }
    for (const std::uint64_t v : prev_) w.u64(v);
    w.u32(dirty_);
    w.u32(strobeSetMask_);
    w.u32(pendingLow_);
    for (const std::uint64_t v : transitions_) w.u64(v);
    w.f64(lastCycle_fJ_);
    w.f64(total_fJ_);
    w.f64(intervalMarker_fJ_);
    for (const std::uint8_t v : ownerClass_) w.u8(v);
    for (const std::int8_t v : ownerSlave_) {
      w.u8(static_cast<std::uint8_t>(v));
    }
  }

  void loadState(ckpt::StateReader& r) {
    for (std::size_t i = 0; i < bus::kSignalCount; ++i) {
      frame_.set(static_cast<bus::SignalId>(i), r.u64());
    }
    for (std::uint64_t& v : prev_) v = r.u64();
    dirty_ = r.u32();
    strobeSetMask_ = r.u32();
    pendingLow_ = r.u32();
    for (std::uint64_t& v : transitions_) v = r.u64();
    lastCycle_fJ_ = r.f64();
    total_fJ_ = r.f64();
    intervalMarker_fJ_ = r.f64();
    for (std::uint8_t& v : ownerClass_) v = r.u8();
    for (std::int8_t& v : ownerSlave_) v = static_cast<std::int8_t>(r.u8());
  }

 private:
  /// Record a new value for a bundle, saving its pre-cycle value the
  /// first time the bundle's value actually changes in the current
  /// cycle. A write that leaves the value as-is is dropped outright
  /// (it cannot produce a transition), so busCycleEnd inspects just
  /// the signals that really moved — every other signal holds by
  /// construction. Handshake strobes must go through strobe() instead:
  /// their frame value is only valid once pending deassertions are
  /// accounted for.
  void touch(bus::SignalId id, std::uint64_t value) {
    const auto i = static_cast<std::size_t>(id);
    const std::uint32_t bit = std::uint32_t{1} << i;
    const std::uint64_t masked = value & bus::signalMask(id);
    if (!(dirty_ & bit)) {
      if (frame_.get(id) == masked) return;  // Holds: no transition.
      prev_[i] = frame_.get(id);
      dirty_ |= bit;
    }
    frame_.set(id, masked);
  }

  /// Drive a one-bit handshake strobe to its active level. Strobes are
  /// low at cycle open (busCycleBegin semantics), so the first drive of
  /// a cycle is a 0 -> 1 edge — unless the previous cycle left the
  /// strobe high and its lazy deassertion is still pending, in which
  /// case the strobe simply holds and the deassertion is cancelled.
  void strobe(bus::SignalId id) {
    const auto i = static_cast<std::size_t>(id);
    const std::uint32_t bit = std::uint32_t{1} << i;
    if (strobeSetMask_ & bit) return;  // Already high this cycle.
    strobeSetMask_ |= bit;
    if (pendingLow_ & bit) {
      pendingLow_ &= ~bit;  // Held high across the boundary: no edge.
      return;
    }
    prev_[i] = 0;
    dirty_ |= bit;
    frame_.set(id, 1);
  }

  /// Stamp `id`'s attribution owner (used when the ledger is attached;
  /// a strobe deasserting on a later cycle still bills its last driver).
  void setOwner(bus::SignalId id, obs::TxClass cls, int slave) {
    const auto i = static_cast<std::size_t>(id);
    ownerClass_[i] = static_cast<std::uint8_t>(cls);
    ownerSlave_[i] = static_cast<std::int8_t>(slave);
  }
  void noteAddressOwners(const bus::AddressPhaseInfo& info);
  void noteBeatOwners(const bus::DataBeatInfo& info, bool isWrite);

  SignalEnergyTable table_;
  bus::SignalFrame frame_;  ///< Wire values of the cycle in progress.
  std::array<std::uint64_t, bus::kSignalCount> prev_{};  ///< Pre-cycle
                                                         ///  values of
                                                         ///  dirty bundles.
  std::uint32_t dirty_ = 0;
  std::uint32_t strobeSetMask_ = 0;  ///< Strobes driven high this cycle.
  std::uint32_t pendingLow_ = 0;  ///< Strobes awaiting lazy deassertion.
  std::array<std::uint64_t, bus::kSignalCount> transitions_{};
  double lastCycle_fJ_ = 0.0;
  double total_fJ_ = 0.0;
  double intervalMarker_fJ_ = 0.0;

  // Energy attribution (null = detached).
  obs::EnergyLedger* ledger_ = nullptr;
  int master_ = 0;
  std::array<std::uint8_t, bus::kSignalCount> ownerClass_{};
  std::array<std::int8_t, bus::kSignalCount> ownerSlave_{};
};
static_assert(bus::kSignalCount <= 32, "dirty_ mask is 32 bits wide");

} // namespace sct::power

#endif // SCT_POWER_TL1_POWER_MODEL_H
