// Power characterization (paper, Section 3.3 "Power Characterization").
//
// Use case (ii) of the paper: an existing platform is characterized for
// embedded system design. The characterizer attaches to the layer-0
// reference bus as a frame listener, accumulates per-bundle energy and
// transition counts over a training workload, and reduces them to the
// average-energy-per-transition table the transaction-level models use.
// Bundles that never toggled during training fall back to an analytic
// ½·C·Vdd² estimate from the parasitic database.
#ifndef SCT_POWER_CHARACTERIZER_H
#define SCT_POWER_CHARACTERIZER_H

#include <cstdint>

#include "power/coeff_table.h"
#include "ref/energy.h"
#include "ref/gl_bus.h"

namespace sct::power {

class Characterizer final : public ref::FrameListener {
 public:
  explicit Characterizer(const ref::TransitionEnergyModel& model)
      : model_(model) {}

  // ref::FrameListener
  void onFrame(std::uint64_t cycle, const bus::SignalFrame& prev,
               const bus::SignalFrame& next,
               const ref::GlitchCounts& glitches,
               const ref::CycleEnergy& energy) override;

  /// Reduce the accumulated statistics to per-signal coefficients.
  SignalEnergyTable buildTable() const;

  const ref::EnergyAccumulator& accumulated() const { return acc_; }
  void reset() { acc_ = {}; }

 private:
  const ref::TransitionEnergyModel& model_;
  ref::EnergyAccumulator acc_;
};

} // namespace sct::power

#endif // SCT_POWER_CHARACTERIZER_H
