// Power profiles over time.
//
// One of the paper's motivations is power analysis (SPA/DPA): the
// cycle-accurate energy interface of the layer-1 model exists so that
// "estimation of power consumption over time" can reduce "the
// probability of a successful power analysis attack". PowerProfile
// stores an energy time series (one sample per cycle or per window) and
// provides the statistics the examples and benches report: total and
// mean power, peak windows, variance, and windowed reductions.
#ifndef SCT_POWER_PROFILE_H
#define SCT_POWER_PROFILE_H

#include <cstdint>
#include <vector>

#include "bus/ec_interfaces.h"
#include "ckpt/state_io.h"
#include "power/tl1_power_model.h"
#include "sim/time.h"

namespace sct::power {

class PowerProfile {
 public:
  struct Sample {
    std::uint64_t cycle;
    double energy_fJ;
  };

  /// `clockPeriodPs` converts energy per cycle into power.
  /// `windowCycles` > 1 turns on windowed downsampling: consecutive
  /// cycles are folded into one stored sample per window (cycle =
  /// window start, energy = window sum), bounding memory for long runs
  /// at the cost of intra-window time resolution. The default keeps
  /// the historical one-sample-per-cycle behaviour.
  explicit PowerProfile(sim::Time clockPeriodPs,
                        std::uint64_t windowCycles = 1)
      : clockPeriodPs_(clockPeriodPs),
        windowCycles_(windowCycles == 0 ? 1 : windowCycles) {}

  /// Preallocate sample storage (per stored sample, i.e. per window).
  void reserve(std::size_t samples) { samples_.reserve(samples); }

  void addSample(std::uint64_t cycle, double energy_fJ) {
    total_fJ_ += energy_fJ;
    ++sampledCycles_;
    if (windowCycles_ == 1) {
      samples_.push_back(Sample{cycle, energy_fJ});
      return;
    }
    const std::uint64_t windowStart = cycle - (cycle % windowCycles_);
    if (samples_.empty() || samples_.back().cycle != windowStart) {
      samples_.push_back(Sample{windowStart, energy_fJ});
    } else {
      samples_.back().energy_fJ += energy_fJ;
    }
  }

  const std::vector<Sample>& samples() const { return samples_; }
  sim::Time clockPeriodPs() const { return clockPeriodPs_; }
  /// Cycles folded into one stored sample (1 = cycle-accurate).
  std::uint64_t windowCycles() const { return windowCycles_; }
  /// Cycles recorded via addSample (>= size() when downsampling).
  std::uint64_t sampledCycles() const { return sampledCycles_; }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double total_fJ() const { return total_fJ_; }

  /// Mean power in microwatts over the sampled cycles.
  /// 1 fJ / 1 ps = 1 µW.
  double meanPower_uW() const;

  /// Peak single-sample power in microwatts.
  double peakPower_uW() const;

  /// Sum energy over consecutive windows of `windowCycles` samples.
  std::vector<double> windowedEnergy_fJ(std::size_t windowCycles) const;

  /// Population variance of the per-sample energy (fJ²) — a flat
  /// profile (low variance) leaks less to SPA.
  double energyVariance_fJ2() const;

  void clear() {
    samples_.clear();
    total_fJ_ = 0.0;
    sampledCycles_ = 0;
  }

  /// -- Checkpoint (see ckpt/checkpoint.h): the recorded time series
  /// travels with the snapshot so a restored run's profile is the
  /// uninterrupted run's profile, sample for sample.
  static constexpr std::uint32_t kCkptVersion = 1;

  void saveState(ckpt::StateWriter& w) const {
    w.u64(static_cast<std::uint64_t>(windowCycles_));
    w.u64(sampledCycles_);
    w.f64(total_fJ_);
    w.u64(static_cast<std::uint64_t>(samples_.size()));
    for (const Sample& s : samples_) {
      w.u64(s.cycle);
      w.f64(s.energy_fJ);
    }
  }

  void loadState(ckpt::StateReader& r) {
    if (r.u64() != windowCycles_) {
      throw ckpt::CheckpointError(
          "PowerProfile::loadState: window size differs from the saved "
          "profile");
    }
    sampledCycles_ = r.u64();
    total_fJ_ = r.f64();
    samples_.resize(static_cast<std::size_t>(r.u64()));
    for (Sample& s : samples_) {
      s.cycle = r.u64();
      s.energy_fJ = r.f64();
    }
  }

 private:
  sim::Time clockPeriodPs_;
  std::uint64_t windowCycles_;
  std::uint64_t sampledCycles_ = 0;
  std::vector<Sample> samples_;
  double total_fJ_ = 0.0;
};

/// Records one profile sample per bus cycle from a layer-1 power model.
/// Register it with the bus *after* the power model so it observes the
/// cycle's final energy value.
class Tl1ProfileRecorder final : public bus::Tl1Observer {
 public:
  Tl1ProfileRecorder(const Tl1PowerModel& model, PowerProfile& profile)
      : model_(model), profile_(profile) {}

  void busCycleEnd(std::uint64_t cycle) override {
    profile_.addSample(cycle, model_.energyLastCycle_fJ());
  }

 private:
  const Tl1PowerModel& model_;
  PowerProfile& profile_;
};

} // namespace sct::power

#endif // SCT_POWER_PROFILE_H
