#include "power/component_models.h"

namespace sct::power {

double SocEnergyReport::componentEnergy_fJ() const {
  double sum = 0.0;
  for (const auto& c : components_) sum += c->totalEnergy_fJ();
  return sum;
}

std::vector<SocEnergyReport::Line> SocEnergyReport::breakdown() const {
  const double total = totalEnergy_fJ();
  const double denom = total > 0.0 ? total : 1.0;
  std::vector<Line> lines;
  lines.push_back(Line{"ec-bus-interface", busEnergy_fJ(),
                       busEnergy_fJ() / denom});
  for (const auto& c : components_) {
    lines.push_back(
        Line{c->name(), c->totalEnergy_fJ(), c->totalEnergy_fJ() / denom});
  }
  return lines;
}

} // namespace sct::power
