#include "power/tl1_power_model.h"

namespace sct::power {

using bus::SignalId;

void Tl1PowerModel::busCycleBegin(std::uint64_t /*cycle*/) {
  // Open the cycle: buses, qualifiers and select lines hold their
  // values; handshake strobes return to the inactive level.
  newFrame_ = oldFrame_;
  newFrame_.set(SignalId::EB_AValid, 0);
  newFrame_.set(SignalId::EB_ARdy, 0);
  newFrame_.set(SignalId::EB_RdVal, 0);
  newFrame_.set(SignalId::EB_RBErr, 0);
  newFrame_.set(SignalId::EB_WDRdy, 0);
  newFrame_.set(SignalId::EB_WBErr, 0);
  newFrame_.set(SignalId::EB_Last, 0);
}

void Tl1PowerModel::addressPhase(const bus::AddressPhaseInfo& info) {
  newFrame_.set(SignalId::EB_A, info.address);
  newFrame_.set(SignalId::EB_Instr, info.kind == bus::Kind::InstrFetch);
  newFrame_.set(SignalId::EB_Write, info.kind == bus::Kind::Write);
  newFrame_.set(SignalId::EB_Burst, info.beats > 1);
  newFrame_.set(SignalId::EB_BE, info.byteEnables);
  newFrame_.set(SignalId::EB_AValid, 1);
  newFrame_.set(SignalId::EB_Sel,
                info.error ? 0 : bus::AddressDecoder::selectMask(info.slave));
  if (info.accepted && !info.error) newFrame_.set(SignalId::EB_ARdy, 1);
}

void Tl1PowerModel::readBeat(const bus::DataBeatInfo& info) {
  if (info.error) {
    newFrame_.set(SignalId::EB_RBErr, 1);
    newFrame_.set(SignalId::EB_Last, 1);
    return;
  }
  newFrame_.set(SignalId::EB_RData, info.data);
  newFrame_.set(SignalId::EB_RdVal, 1);
  if (info.last) newFrame_.set(SignalId::EB_Last, 1);
}

void Tl1PowerModel::writeBeat(const bus::DataBeatInfo& info) {
  if (info.error) {
    newFrame_.set(SignalId::EB_WBErr, 1);
    newFrame_.set(SignalId::EB_Last, 1);
    return;
  }
  newFrame_.set(SignalId::EB_WData, info.data);
  newFrame_.set(SignalId::EB_WDRdy, 1);
  if (info.last) newFrame_.set(SignalId::EB_Last, 1);
}

void Tl1PowerModel::busCycleEnd(std::uint64_t /*cycle*/) {
  // Standard RTL power estimation on the reconstructed signals: count
  // the transitions of each bundle and weight them with the
  // characterized average energy per transition.
  double e = 0.0;
  for (const auto& info : bus::kSignalTable) {
    const std::size_t i = static_cast<std::size_t>(info.id);
    const unsigned n = bus::hammingDistance(
        info.id, oldFrame_.get(info.id), newFrame_.get(info.id));
    if (n != 0) {
      transitions_[i] += n;
      e += table_.energyFor(info.id, n);
    }
  }
  lastCycle_fJ_ = e;
  total_fJ_ += e;
  oldFrame_ = newFrame_;
}

double Tl1PowerModel::energySinceLastCall_fJ() {
  const double delta = total_fJ_ - intervalMarker_fJ_;
  intervalMarker_fJ_ = total_fJ_;
  return delta;
}

} // namespace sct::power
