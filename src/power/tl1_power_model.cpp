#include "power/tl1_power_model.h"

#include <bit>

namespace sct::power {

using bus::SignalId;

void Tl1PowerModel::busCycleBegin(std::uint64_t /*cycle*/) {
  // Open the cycle: buses, qualifiers and select lines hold their
  // values; handshake strobes return to the inactive level. The strobe
  // deassertion is handled lazily — strobe() cancels it for bundles
  // re-driven this cycle, busCycleEnd applies it to the rest — so
  // opening a cycle costs nothing.
}

void Tl1PowerModel::noteAddressOwners(const bus::AddressPhaseInfo& info) {
  const obs::TxClass cls = obs::txClassOf(info.kind);
  for (SignalId id : {SignalId::EB_A, SignalId::EB_Instr, SignalId::EB_Write,
                      SignalId::EB_Burst, SignalId::EB_BE, SignalId::EB_AValid,
                      SignalId::EB_Sel, SignalId::EB_ARdy}) {
    setOwner(id, cls, info.slave);
  }
}

void Tl1PowerModel::noteBeatOwners(const bus::DataBeatInfo& info,
                                   bool isWrite) {
  const obs::TxClass cls = obs::txClassOf(info.kind);
  if (isWrite) {
    for (SignalId id : {SignalId::EB_WData, SignalId::EB_WDRdy,
                        SignalId::EB_WBErr, SignalId::EB_Last}) {
      setOwner(id, cls, info.slave);
    }
  } else {
    for (SignalId id : {SignalId::EB_RData, SignalId::EB_RdVal,
                        SignalId::EB_RBErr, SignalId::EB_Last}) {
      setOwner(id, cls, info.slave);
    }
  }
}

void Tl1PowerModel::addressPhase(const bus::AddressPhaseInfo& info) {
  if constexpr (obs::kEnabled) {
    if (ledger_ != nullptr) noteAddressOwners(info);
  }
  touch(SignalId::EB_A, info.address);
  touch(SignalId::EB_Instr, info.kind == bus::Kind::InstrFetch);
  touch(SignalId::EB_Write, info.kind == bus::Kind::Write);
  touch(SignalId::EB_Burst, info.beats > 1);
  touch(SignalId::EB_BE, info.byteEnables);
  strobe(SignalId::EB_AValid);
  touch(SignalId::EB_Sel,
        info.error ? 0 : bus::AddressDecoder::selectMask(info.slave));
  if (info.accepted && !info.error) strobe(SignalId::EB_ARdy);
}

void Tl1PowerModel::readBeat(const bus::DataBeatInfo& info) {
  if constexpr (obs::kEnabled) {
    if (ledger_ != nullptr) noteBeatOwners(info, /*isWrite=*/false);
  }
  if (info.error) {
    strobe(SignalId::EB_RBErr);
    strobe(SignalId::EB_Last);
    return;
  }
  touch(SignalId::EB_RData, info.data);
  strobe(SignalId::EB_RdVal);
  if (info.last) strobe(SignalId::EB_Last);
}

void Tl1PowerModel::writeBeat(const bus::DataBeatInfo& info) {
  if constexpr (obs::kEnabled) {
    if (ledger_ != nullptr) noteBeatOwners(info, /*isWrite=*/true);
  }
  if (info.error) {
    strobe(SignalId::EB_WBErr);
    strobe(SignalId::EB_Last);
    return;
  }
  touch(SignalId::EB_WData, info.data);
  strobe(SignalId::EB_WDRdy);
  if (info.last) strobe(SignalId::EB_Last);
}

void Tl1PowerModel::busCycleEnd(std::uint64_t /*cycle*/) {
  // Standard RTL power estimation on the reconstructed signals: count
  // the transitions of each bundle and weight them with the
  // characterized average energy per transition.
  //
  // Hot-path shape: only bundles touched this cycle can differ from
  // their pre-cycle value (everything else holds by construction), so
  // the scan walks the dirty mask — typically the seven handshake
  // strobes on an idle cycle — with a bare XOR + popcount per bundle.
  // Frame values are stored masked. The shortcuts keep the accumulated
  // energy bit-identical to the naive all-signals energyFor loop — the
  // equivalence test pins that down.
  const std::array<double, bus::kSignalCount>& coeff = table_.coeffs();
  // Deferred strobe deassertion: strobes driven high last cycle and not
  // re-driven this cycle drop back to the inactive level now. Folding
  // them into the dirty mask before the walk keeps the energy
  // accumulation in bundle-index order, i.e. bit-identical to eagerly
  // clearing every strobe at busCycleBegin.
  std::uint32_t drop = pendingLow_;
  pendingLow_ = strobeSetMask_;
  strobeSetMask_ = 0;
  dirty_ |= drop;
  while (drop != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(drop));
    drop &= drop - 1;
    prev_[i] = 1;
    frame_.set(static_cast<SignalId>(i), 0);
  }
  double e = 0.0;
  std::uint32_t m = dirty_;
  dirty_ = 0;
  while (m != 0) {
    const unsigned i = static_cast<unsigned>(std::countr_zero(m));
    m &= m - 1;
    const std::uint64_t diff =
        prev_[i] ^ frame_.get(static_cast<SignalId>(i));
    if (diff != 0) {
      const unsigned n = static_cast<unsigned>(std::popcount(diff));
      transitions_[i] += n;
      e += coeff[i] * static_cast<double>(n);
      if constexpr (obs::kEnabled) {
        // Same product, same accumulation order as `e`: the ledger's
        // deferred cycle sum stays bit-identical to it, and the commit
        // below mirrors `total_fJ_ += e` exactly.
        if (ledger_ != nullptr) {
          ledger_->addDeferred(static_cast<SignalId>(i),
                               static_cast<obs::TxClass>(ownerClass_[i]),
                               ownerSlave_[i], master_,
                               coeff[i] * static_cast<double>(n));
        }
      }
    }
  }
  lastCycle_fJ_ = e;
  total_fJ_ += e;
  if constexpr (obs::kEnabled) {
    if (ledger_ != nullptr) ledger_->commitCycle();
  }
}

double Tl1PowerModel::energySinceLastCall_fJ() {
  const double delta = total_fJ_ - intervalMarker_fJ_;
  intervalMarker_fJ_ = total_fJ_;
  return delta;
}

} // namespace sct::power
