#include "power/profile.h"

#include <algorithm>

namespace sct::power {

double PowerProfile::meanPower_uW() const {
  if (sampledCycles_ == 0) return 0.0;
  // Recorded cycles, not stored samples: under windowed downsampling
  // one stored sample covers windowCycles() recorded cycles.
  const double cycles = static_cast<double>(sampledCycles_);
  const double period = static_cast<double>(clockPeriodPs_);
  return total_fJ_ / (cycles * period);
}

double PowerProfile::peakPower_uW() const {
  double peak = 0.0;
  for (const Sample& s : samples_) peak = std::max(peak, s.energy_fJ);
  return peak / static_cast<double>(clockPeriodPs_);
}

std::vector<double> PowerProfile::windowedEnergy_fJ(
    std::size_t windowCycles) const {
  std::vector<double> out;
  if (windowCycles == 0) return out;
  for (std::size_t i = 0; i < samples_.size(); i += windowCycles) {
    double sum = 0.0;
    const std::size_t end = std::min(i + windowCycles, samples_.size());
    for (std::size_t j = i; j < end; ++j) sum += samples_[j].energy_fJ;
    out.push_back(sum);
  }
  return out;
}

double PowerProfile::energyVariance_fJ2() const {
  if (samples_.empty()) return 0.0;
  const double mean = total_fJ_ / static_cast<double>(samples_.size());
  double acc = 0.0;
  for (const Sample& s : samples_) {
    const double d = s.energy_fJ - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(samples_.size());
}

} // namespace sct::power
