// Per-signal energy coefficients.
//
// The paper's characterization step: "We abstracted all different
// transitions and use the average energy per transition for each signal
// considered for our power estimation." A SignalEnergyTable holds that
// abstraction — one femtojoule-per-transition coefficient per EC
// interface bundle — plus a text (de)serialization so characterized
// tables can be shipped with a platform.
//
// Thread-safety: a SignalEnergyTable is a plain value type (an array of
// doubles). Concurrent const access — coeff_fJ/coeffs/energyFor/save —
// from any number of threads is safe as long as no thread mutates the
// same instance; the parallel exploration runner relies on this by
// sharing one characterized table across workers by const reference.
#ifndef SCT_POWER_COEFF_TABLE_H
#define SCT_POWER_COEFF_TABLE_H

#include <array>
#include <iosfwd>
#include <string>

#include "bus/ec_signals.h"

namespace sct::power {

class SignalEnergyTable {
 public:
  SignalEnergyTable() = default;

  double coeff_fJ(bus::SignalId id) const {
    return coeffs_[static_cast<std::size_t>(id)];
  }

  /// The flat per-signal coefficient array, indexed by SignalId order.
  /// Hot loops (Tl1PowerModel::busCycleEnd) index this directly instead
  /// of paying an energyFor call per signal.
  const std::array<double, bus::kSignalCount>& coeffs() const {
    return coeffs_;
  }
  void setCoeff_fJ(bus::SignalId id, double fJPerTransition) {
    coeffs_[static_cast<std::size_t>(id)] = fJPerTransition;
  }

  /// Energy for `n` transitions on a bundle.
  double energyFor(bus::SignalId id, double transitions) const {
    return coeff_fJ(id) * transitions;
  }

  /// Serialize as "name fJ_per_transition" lines.
  void save(std::ostream& os) const;

  /// Parse the save() format. Throws std::runtime_error on unknown
  /// signal names or malformed lines; missing signals keep their
  /// current value.
  static SignalEnergyTable load(std::istream& is);

  bool operator==(const SignalEnergyTable&) const = default;

 private:
  std::array<double, bus::kSignalCount> coeffs_{};
};

} // namespace sct::power

#endif // SCT_POWER_COEFF_TABLE_H
