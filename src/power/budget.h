// Supply-budget checking.
//
// The paper's first power motivation: "the limitation of power
// consumption by different standards, for instance the GSM standard
// limits the [current] to 10 mA at 5 V supply. More critical is power
// consumption for contact-less smart cards that are supplied by RF
// field." This module turns an estimated power profile into a
// current-versus-budget verdict so interface alternatives can be
// checked against a deployment class early.
//
// The framework models the energy of the EC bus interface only; a
// whole-chip estimate is obtained with a documented scale factor
// (core + memories + peripherals as a multiple of bus-interface
// energy), configurable per platform.
#ifndef SCT_POWER_BUDGET_H
#define SCT_POWER_BUDGET_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "power/profile.h"

namespace sct::power {

/// A deployment class with its supply constraints.
struct SupplySpec {
  std::string name;
  double vdd = 5.0;            ///< Supply voltage (V).
  double maxCurrent_mA = 10.0; ///< Budget (mA).

  double maxPower_uW() const { return maxCurrent_mA * vdd * 1000.0; }
};

/// Presets for the standards the paper names.
SupplySpec gsm5V();            ///< GSM: 10 mA at 5 V.
SupplySpec iso7816Class3V();   ///< ISO 7816 class B: 7.5 mA at 3 V.
SupplySpec contactless();      ///< ISO 14443 RF field: ~5 mW harvested.

struct BudgetReport {
  double meanCurrent_mA = 0.0;
  double peakCurrent_mA = 0.0;  ///< Worst averaging window.
  double headroom = 0.0;        ///< budget / peak (>1 means within).
  std::size_t violatingWindows = 0;
  std::size_t totalWindows = 0;
  bool ok() const { return violatingWindows == 0; }
};

class BudgetChecker {
 public:
  /// `chipScale` converts bus-interface energy to a whole-chip
  /// estimate (the bus interface of the reference platform dissipates
  /// roughly 1/120 of the chip; adjust per platform).
  explicit BudgetChecker(const SupplySpec& spec, double chipScale = 120.0)
      : spec_(spec), chipScale_(chipScale) {}

  /// Check a profile against the budget. Current is averaged over
  /// windows of `windowCycles` samples (supply regulation smooths
  /// cycle spikes; standards measure averaged current).
  BudgetReport check(const PowerProfile& profile,
                     std::size_t windowCycles = 64) const;

  const SupplySpec& spec() const { return spec_; }

 private:
  SupplySpec spec_;
  double chipScale_;
};

/// Incremental rolling-window average current.
//
// BudgetChecker::check post-processes a recorded PowerProfile in
// tumbling windows; RollingCurrent answers the same "what does the
// chip draw right now, smoothed the way the supply regulation smooths
// it" question *while the simulation runs*, one energy sample per
// committed cycle. Two consumers: the eh brownout detector (trip
// decisions need the live draw, not an end-of-run report) and
// sct_report (peak rolling current against a deployment budget).
//
// Determinism: a fixed-capacity ring with an incrementally maintained
// running sum — add the new sample, subtract the evicted one, in that
// order, every cycle. No data-dependent re-summation, so the double
// bit patterns depend only on the sample sequence.
class RollingCurrent {
 public:
  /// `chipScale` converts the per-cycle bus-interface energy to a
  /// whole-chip figure, as in BudgetChecker; pass 1.0 to feed
  /// chip-level energies directly. `windowCycles` is clamped to >= 1.
  RollingCurrent(const SupplySpec& spec, std::uint64_t clockPeriodPs,
                 double chipScale = 120.0, std::size_t windowCycles = 64);

  /// Record one committed cycle's bus-interface energy (fJ).
  void addCycle(double busEnergy_fJ);

  /// Replay a recorded profile sample-by-sample (sct_report).
  void feed(const PowerProfile& profile);

  /// Empty the regulation window (the chip was powered down; whatever
  /// it drew before the outage is not "recent" when it comes back).
  /// Lifetime totals — cycles(), meanCurrent_mA(), peakCurrent_mA() —
  /// are preserved; only the windowed view restarts from empty.
  void resetWindow();

  std::uint64_t cycles() const { return cycles_; }
  std::size_t windowCycles() const { return ring_.size(); }

  /// Mean whole-chip energy per cycle over the last window (fJ).
  /// Averages over the samples actually present while the window is
  /// still filling.
  double windowMeanEnergy_fJ() const;

  /// Rolling average current over the last window (mA).
  double current_mA() const;
  /// Highest rolling current seen so far (mA).
  double peakCurrent_mA() const;
  /// Whole-run mean current (mA).
  double meanCurrent_mA() const;

  bool overBudget() const { return current_mA() > spec_.maxCurrent_mA; }

  const SupplySpec& spec() const { return spec_; }

 private:
  double toCurrent_mA(double perCycle_fJ) const;

  SupplySpec spec_;
  double chipScale_;
  double periodPs_;
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t fill_ = 0;  ///< Samples present in the window.
  std::uint64_t cycles_ = 0;
  double window_fJ_ = 0.0;
  double total_fJ_ = 0.0;
  double peakWindowMean_fJ_ = 0.0;
};

} // namespace sct::power

#endif // SCT_POWER_BUDGET_H
