// Supply-budget checking.
//
// The paper's first power motivation: "the limitation of power
// consumption by different standards, for instance the GSM standard
// limits the [current] to 10 mA at 5 V supply. More critical is power
// consumption for contact-less smart cards that are supplied by RF
// field." This module turns an estimated power profile into a
// current-versus-budget verdict so interface alternatives can be
// checked against a deployment class early.
//
// The framework models the energy of the EC bus interface only; a
// whole-chip estimate is obtained with a documented scale factor
// (core + memories + peripherals as a multiple of bus-interface
// energy), configurable per platform.
#ifndef SCT_POWER_BUDGET_H
#define SCT_POWER_BUDGET_H

#include <string>
#include <vector>

#include "power/profile.h"

namespace sct::power {

/// A deployment class with its supply constraints.
struct SupplySpec {
  std::string name;
  double vdd = 5.0;            ///< Supply voltage (V).
  double maxCurrent_mA = 10.0; ///< Budget (mA).

  double maxPower_uW() const { return maxCurrent_mA * vdd * 1000.0; }
};

/// Presets for the standards the paper names.
SupplySpec gsm5V();            ///< GSM: 10 mA at 5 V.
SupplySpec iso7816Class3V();   ///< ISO 7816 class B: 7.5 mA at 3 V.
SupplySpec contactless();      ///< ISO 14443 RF field: ~5 mW harvested.

struct BudgetReport {
  double meanCurrent_mA = 0.0;
  double peakCurrent_mA = 0.0;  ///< Worst averaging window.
  double headroom = 0.0;        ///< budget / peak (>1 means within).
  std::size_t violatingWindows = 0;
  std::size_t totalWindows = 0;
  bool ok() const { return violatingWindows == 0; }
};

class BudgetChecker {
 public:
  /// `chipScale` converts bus-interface energy to a whole-chip
  /// estimate (the bus interface of the reference platform dissipates
  /// roughly 1/120 of the chip; adjust per platform).
  explicit BudgetChecker(const SupplySpec& spec, double chipScale = 120.0)
      : spec_(spec), chipScale_(chipScale) {}

  /// Check a profile against the budget. Current is averaged over
  /// windows of `windowCycles` samples (supply regulation smooths
  /// cycle spikes; standards measure averaged current).
  BudgetReport check(const PowerProfile& profile,
                     std::size_t windowCycles = 64) const;

  const SupplySpec& spec() const { return spec_; }

 private:
  SupplySpec spec_;
  double chipScale_;
};

} // namespace sct::power

#endif // SCT_POWER_BUDGET_H
