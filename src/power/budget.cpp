#include "power/budget.h"

#include <algorithm>

namespace sct::power {

SupplySpec gsm5V() { return SupplySpec{"GSM 5V", 5.0, 10.0}; }

SupplySpec iso7816Class3V() {
  return SupplySpec{"ISO 7816 class B 3V", 3.0, 7.5};
}

SupplySpec contactless() {
  // ~5 mW harvested from the RF field at 3 V ≈ 1.7 mA.
  return SupplySpec{"ISO 14443 contactless", 3.0, 1.7};
}

BudgetReport BudgetChecker::check(const PowerProfile& profile,
                                  std::size_t windowCycles) const {
  BudgetReport report;
  if (profile.empty() || windowCycles == 0) return report;

  // Whole-chip mean power in µW (1 fJ / 1 ps = 1 µW).
  const double mean_uW = profile.meanPower_uW() * chipScale_;
  report.meanCurrent_mA = mean_uW / (spec_.vdd * 1000.0);

  const auto windows = profile.windowedEnergy_fJ(windowCycles);
  report.totalWindows = windows.size();
  // Window power: energy over windowCycles samples; the final window
  // may be shorter, scale by its actual length.
  const std::size_t n = profile.size();
  const double periodPs = static_cast<double>(profile.clockPeriodPs());
  double peak_uW = 0.0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const std::size_t len =
        std::min(windowCycles, n - w * windowCycles);
    const double p_uW =
        windows[w] * chipScale_ / (static_cast<double>(len) * periodPs);
    peak_uW = std::max(peak_uW, p_uW);
    if (p_uW > spec_.maxPower_uW()) ++report.violatingWindows;
  }
  report.peakCurrent_mA = peak_uW / (spec_.vdd * 1000.0);
  report.headroom = report.peakCurrent_mA > 0.0
                        ? spec_.maxCurrent_mA / report.peakCurrent_mA
                        : 0.0;
  return report;
}

} // namespace sct::power
