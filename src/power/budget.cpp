#include "power/budget.h"

#include <algorithm>

namespace sct::power {

SupplySpec gsm5V() { return SupplySpec{"GSM 5V", 5.0, 10.0}; }

SupplySpec iso7816Class3V() {
  return SupplySpec{"ISO 7816 class B 3V", 3.0, 7.5};
}

SupplySpec contactless() {
  // ~5 mW harvested from the RF field at 3 V ≈ 1.7 mA.
  return SupplySpec{"ISO 14443 contactless", 3.0, 1.7};
}

BudgetReport BudgetChecker::check(const PowerProfile& profile,
                                  std::size_t windowCycles) const {
  BudgetReport report;
  if (profile.empty() || windowCycles == 0) return report;

  // Whole-chip mean power in µW (1 fJ / 1 ps = 1 µW).
  const double mean_uW = profile.meanPower_uW() * chipScale_;
  report.meanCurrent_mA = mean_uW / (spec_.vdd * 1000.0);

  const auto windows = profile.windowedEnergy_fJ(windowCycles);
  report.totalWindows = windows.size();
  // Window power: energy over windowCycles samples; the final window
  // may be shorter, scale by its actual length.
  const std::size_t n = profile.size();
  const double periodPs = static_cast<double>(profile.clockPeriodPs());
  double peak_uW = 0.0;
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const std::size_t len =
        std::min(windowCycles, n - w * windowCycles);
    const double p_uW =
        windows[w] * chipScale_ / (static_cast<double>(len) * periodPs);
    peak_uW = std::max(peak_uW, p_uW);
    if (p_uW > spec_.maxPower_uW()) ++report.violatingWindows;
  }
  report.peakCurrent_mA = peak_uW / (spec_.vdd * 1000.0);
  report.headroom = report.peakCurrent_mA > 0.0
                        ? spec_.maxCurrent_mA / report.peakCurrent_mA
                        : 0.0;
  return report;
}

RollingCurrent::RollingCurrent(const SupplySpec& spec,
                               std::uint64_t clockPeriodPs,
                               double chipScale, std::size_t windowCycles)
    : spec_(spec),
      chipScale_(chipScale),
      periodPs_(static_cast<double>(clockPeriodPs)),
      ring_(windowCycles == 0 ? 1 : windowCycles, 0.0) {}

void RollingCurrent::addCycle(double busEnergy_fJ) {
  const double chip_fJ = busEnergy_fJ * chipScale_;
  total_fJ_ += chip_fJ;
  if (fill_ >= ring_.size()) {
    window_fJ_ -= ring_[head_];
  } else {
    ++fill_;
  }
  window_fJ_ += chip_fJ;
  ring_[head_] = chip_fJ;
  head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
  ++cycles_;
  const double mean = windowMeanEnergy_fJ();
  if (mean > peakWindowMean_fJ_) peakWindowMean_fJ_ = mean;
}

void RollingCurrent::feed(const PowerProfile& profile) {
  for (const PowerProfile::Sample& s : profile.samples()) {
    addCycle(s.energy_fJ);
  }
}

void RollingCurrent::resetWindow() {
  std::fill(ring_.begin(), ring_.end(), 0.0);
  window_fJ_ = 0.0;
  head_ = 0;
  fill_ = 0;
}

double RollingCurrent::windowMeanEnergy_fJ() const {
  if (fill_ == 0) return 0.0;
  return window_fJ_ / static_cast<double>(fill_);
}

double RollingCurrent::toCurrent_mA(double perCycle_fJ) const {
  // Whole-chip power in µW (1 fJ / 1 ps = 1 µW), then I = P / V.
  const double p_uW = perCycle_fJ / periodPs_;
  return p_uW / (spec_.vdd * 1000.0);
}

double RollingCurrent::current_mA() const {
  return toCurrent_mA(windowMeanEnergy_fJ());
}

double RollingCurrent::peakCurrent_mA() const {
  return toCurrent_mA(peakWindowMean_fJ_);
}

double RollingCurrent::meanCurrent_mA() const {
  if (cycles_ == 0) return 0.0;
  return toCurrent_mA(total_fJ_ / static_cast<double>(cycles_));
}

} // namespace sct::power
