// Component energy models (paper, Section 5).
//
// "We will extend this first model to allow an early energy estimation
// for several different typical smart card components, like random
// number generators, UARTs or timers." These are those extensions:
// activity-based energy models for the peripherals themselves, on top
// of the bus-interface energy the hierarchical bus models estimate.
// Each model reads its component's activity counters and multiplies
// them with per-event coefficients; a SocEnergyReport aggregates the
// bus share and every component share into one breakdown.
//
// The per-event coefficients are synthetic (there is no Philips
// characterization database to draw from) but sized plausibly for a
// 0.18 µm smart-card process; like the bus coefficients they would be
// characterized once per platform in the paper's flow.
#ifndef SCT_POWER_COMPONENT_MODELS_H
#define SCT_POWER_COMPONENT_MODELS_H

#include <memory>
#include <string>
#include <vector>

#include "power/power_if.h"
#include "soc/peripherals.h"

namespace sct::power {

/// Per-event energy coefficients of the peripheral set (fJ).
struct ComponentCoefficients {
  double timerTick_fJ = 45.0;        ///< Counter increment + compare.
  double uartByte_fJ = 5200.0;       ///< Shift register + pad driver.
  double trngWord_fJ = 9800.0;       ///< Entropy source + whitening.
  double cryptoOperation_fJ = 52'000.0;  ///< 16 Feistel rounds.
  double cryptoBusyCycle_fJ = 0.0;   ///< Optional per-cycle adder.
};

/// Base: a named component model implementing the interval interface.
class ComponentEnergyModel : public IntervalPowerIf {
 public:
  explicit ComponentEnergyModel(std::string name)
      : name_(std::move(name)) {}
  const std::string& name() const { return name_; }

  double energySinceLastCall_fJ() override {
    const double now = totalEnergy_fJ();
    const double delta = now - marker_;
    marker_ = now;
    return delta;
  }

 private:
  std::string name_;
  double marker_ = 0.0;
};

class TimerEnergyModel final : public ComponentEnergyModel {
 public:
  TimerEnergyModel(const soc::Timer& timer,
                   const ComponentCoefficients& c)
      : ComponentEnergyModel(std::string(timer.name())),
        timer_(timer),
        perTick_fJ_(c.timerTick_fJ) {}
  double totalEnergy_fJ() const override {
    return static_cast<double>(timer_.ticks()) * perTick_fJ_;
  }

 private:
  const soc::Timer& timer_;
  double perTick_fJ_;
};

class UartEnergyModel final : public ComponentEnergyModel {
 public:
  UartEnergyModel(const soc::Uart& uart, const ComponentCoefficients& c)
      : ComponentEnergyModel(std::string(uart.name())),
        uart_(uart),
        perByte_fJ_(c.uartByte_fJ) {}
  double totalEnergy_fJ() const override {
    return static_cast<double>(uart_.bytesTransmitted()) * perByte_fJ_;
  }

 private:
  const soc::Uart& uart_;
  double perByte_fJ_;
};

class TrngEnergyModel final : public ComponentEnergyModel {
 public:
  TrngEnergyModel(const soc::Trng& trng, const ComponentCoefficients& c)
      : ComponentEnergyModel(std::string(trng.name())),
        trng_(trng),
        perWord_fJ_(c.trngWord_fJ) {}
  double totalEnergy_fJ() const override {
    return static_cast<double>(trng_.wordsDrawn()) * perWord_fJ_;
  }

 private:
  const soc::Trng& trng_;
  double perWord_fJ_;
};

class CryptoEnergyModel final : public ComponentEnergyModel {
 public:
  CryptoEnergyModel(const soc::CryptoCoprocessor& crypto,
                    const ComponentCoefficients& c)
      : ComponentEnergyModel(std::string(crypto.name())),
        crypto_(crypto),
        perOperation_fJ_(c.cryptoOperation_fJ) {}
  double totalEnergy_fJ() const override {
    return static_cast<double>(crypto_.operations()) * perOperation_fJ_;
  }

 private:
  const soc::CryptoCoprocessor& crypto_;
  double perOperation_fJ_;
};

/// Aggregated SoC energy: bus interface + all component models.
class SocEnergyReport {
 public:
  /// `busModel` is borrowed; component models are owned.
  explicit SocEnergyReport(const IntervalPowerIf& busModel)
      : busModel_(busModel) {}

  void addComponent(std::unique_ptr<ComponentEnergyModel> model) {
    components_.push_back(std::move(model));
  }

  /// Convenience: attach models for every peripheral of a SmartCardSoC.
  template <typename SocT>
  static SocEnergyReport forSoc(SocT& soc, const IntervalPowerIf& busModel,
                                const ComponentCoefficients& c = {}) {
    SocEnergyReport report(busModel);
    report.addComponent(
        std::make_unique<TimerEnergyModel>(soc.timer(), c));
    report.addComponent(
        std::make_unique<TimerEnergyModel>(soc.timer2(), c));
    report.addComponent(std::make_unique<UartEnergyModel>(soc.uart(), c));
    report.addComponent(std::make_unique<TrngEnergyModel>(soc.trng(), c));
    report.addComponent(
        std::make_unique<CryptoEnergyModel>(soc.crypto(), c));
    return report;
  }

  double busEnergy_fJ() const { return busModel_.totalEnergy_fJ(); }
  double componentEnergy_fJ() const;
  double totalEnergy_fJ() const {
    return busEnergy_fJ() + componentEnergy_fJ();
  }

  struct Line {
    std::string name;
    double energy_fJ;
    double share;  ///< Of the total.
  };
  /// Breakdown rows (bus first, then components), shares of the total.
  std::vector<Line> breakdown() const;

 private:
  const IntervalPowerIf& busModel_;
  std::vector<std::unique_ptr<ComponentEnergyModel>> components_;
};

} // namespace sct::power

#endif // SCT_POWER_COMPONENT_MODELS_H
