#include "power/tl2_power_model.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace sct::power {

using bus::SignalId;

namespace {

std::uint8_t byteEnablesOf(const bus::Tl2PhaseInfo& info) {
  if (info.bytes >= 4) return 0xF;
  const auto size =
      info.bytes == 1 ? bus::AccessSize::Byte : bus::AccessSize::Half;
  return bus::byteEnables(size, info.address);
}

/// Beat `i` of the transfer, zero-extended for sub-word transfers.
std::uint32_t beatWord(const bus::Tl2PhaseInfo& info, unsigned beat) {
  if (info.data == nullptr) return 0;
  const std::size_t off = std::size_t{4} * beat;
  const std::size_t n = std::min<std::size_t>(4, info.bytes - off);
  std::uint32_t w = 0;
  std::memcpy(&w, info.data + off, n);
  return w;
}

double popcount64(std::uint64_t v) {
  return static_cast<double>(std::popcount(v));
}

} // namespace

void Tl2PowerModel::addTransitions(SignalId id, double n) {
  if (n <= 0.0) return;
  estTransitions_[static_cast<std::size_t>(id)] += n;
  const double e = table_.energyFor(id, n);
  total_fJ_ += e;
  if constexpr (obs::kEnabled) {
    // Identical term, identical order: the ledger total accumulates in
    // lock-step with total_fJ_ and stays bit-identical to it.
    if (ledger_ != nullptr) ledger_->add(id, ctxClass_, ctxSlave_, master_, e);
  }
}

void Tl2PowerModel::addressPhaseDone(const bus::Tl2PhaseInfo& info) {
  if constexpr (obs::kEnabled) {
    if (ledger_ != nullptr) {
      ctxClass_ = obs::txClassOf(info.kind);
      ctxSlave_ = info.slave;
    }
  }
  // "Each transaction phase on its own": the model has no knowledge of
  // the wire state left behind by the previous transaction, so every
  // driven bus is charged against an idle (zero) state. Repeated or
  // sequential addresses — which toggle almost nothing at layer 0/1 —
  // are therefore over-counted; this is the paper's "does not consider
  // interactions between following transactions".
  addTransitions(SignalId::EB_A,
                 popcount64(info.address & bus::signalMask(SignalId::EB_A)));
  if (info.kind == bus::Kind::InstrFetch) {
    addTransitions(SignalId::EB_Instr, 1.0);
  }
  if (info.kind == bus::Kind::Write) {
    addTransitions(SignalId::EB_Write, 1.0);
  }
  if (info.beats > 1) addTransitions(SignalId::EB_Burst, 1.0);
  addTransitions(SignalId::EB_BE, popcount64(byteEnablesOf(info)));

  // Handshake strobes: one full pulse per phase — the model cannot see
  // that back-to-back phases hold these lines ("does not allow an
  // accurate count of transitions for control signals").
  addTransitions(SignalId::EB_AValid, 2.0);
  addTransitions(SignalId::EB_ARdy, info.error ? 0.0 : 2.0);

  // Select lines: one pulse per transaction; whether consecutive
  // transactions hit the same line is invisible at this layer.
  addTransitions(SignalId::EB_Sel, info.error ? 0.0 : 2.0);

  if (info.error) {
    addTransitions(info.kind == bus::Kind::Write ? SignalId::EB_WBErr
                                                 : SignalId::EB_RBErr,
                   2.0);
    addTransitions(SignalId::EB_Last, 2.0);
  }
}

void Tl2PowerModel::dataPhaseDone(const bus::Tl2PhaseInfo& info) {
  if constexpr (obs::kEnabled) {
    if (ledger_ != nullptr) {
      ctxClass_ = obs::txClassOf(info.kind);
      ctxSlave_ = info.slave;
    }
  }
  const SignalId dataBus =
      info.kind == bus::Kind::Write ? SignalId::EB_WData : SignalId::EB_RData;
  const SignalId strobe =
      info.kind == bus::Kind::Write ? SignalId::EB_WDRdy : SignalId::EB_RdVal;

  if (info.error) {
    addTransitions(info.kind == bus::Kind::Write ? SignalId::EB_WBErr
                                                 : SignalId::EB_RBErr,
                   2.0);
    addTransitions(SignalId::EB_Last, 2.0);
    return;
  }

  // Data bus: every beat is charged against an idle (zero) bus — "each
  // phase on its own", with no memory of the previous beat or the
  // previous transaction. Real instruction streams and array data are
  // strongly word-to-word correlated (small Hamming steps at layer
  // 0/1), so this is the data-bus share of the systematic layer-2
  // over-estimation.
  double dataTransitions = 0.0;
  for (unsigned b = 0; b < info.beats; ++b) {
    dataTransitions += std::popcount(beatWord(info, b));
  }
  addTransitions(dataBus, dataTransitions);

  // One strobe pulse per beat (layer 0/1 hold the line through a
  // streaming burst — systematic over-count), one EB_Last pulse per
  // transaction.
  addTransitions(strobe, 2.0 * info.beats);
  addTransitions(SignalId::EB_Last, 2.0);
}

double Tl2PowerModel::energySinceLastCall_fJ() {
  const double delta = total_fJ_ - intervalMarker_fJ_;
  intervalMarker_fJ_ = total_fJ_;
  return delta;
}

} // namespace sct::power
