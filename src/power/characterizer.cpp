#include "power/characterizer.h"

namespace sct::power {

void Characterizer::onFrame(std::uint64_t /*cycle*/,
                            const bus::SignalFrame& prev,
                            const bus::SignalFrame& next,
                            const ref::GlitchCounts& /*glitches*/,
                            const ref::CycleEnergy& energy) {
  // Glitch and baseline energy are already folded into `energy`; the
  // accumulator pairs them with the TL-visible transition counts so the
  // coefficient absorbs them on average — exactly the abstraction the
  // paper performs on the Diesel output.
  acc_.add(energy, prev, next);
}

SignalEnergyTable Characterizer::buildTable() const {
  // An average over a handful of transitions is dominated by whatever
  // hazard energy happened to be attributed to the bundle (e.g. the
  // select lines of a single-slave system toggle once but collect all
  // decoder glitches); below this sample count the analytic estimate
  // is more trustworthy.
  constexpr std::uint64_t kMinTransitionSamples = 16;
  SignalEnergyTable table;
  for (const auto& info : bus::kSignalTable) {
    const std::size_t i = static_cast<std::size_t>(info.id);
    if (acc_.transitions[i] >= kMinTransitionSamples) {
      table.setCoeff_fJ(info.id,
                        acc_.perSignal_fJ[i] /
                            static_cast<double>(acc_.transitions[i]));
    } else {
      // Analytic fallback: mean wire switching energy of the bundle.
      const double meanC =
          model_.parasitics().bundleCSelf_fF(info.id) / info.width;
      table.setCoeff_fJ(info.id, model_.halfCV2(meanC));
    }
  }
  return table;
}

} // namespace sct::power
