// Layer-2 energy model (paper, Section 3.3 "Layer 2 Energy Model").
//
// "Due to the missing detailed timing information another approach is
// necessary. [...] Energy estimation is divided into two phases —
// address phase energy estimation and data phase energy estimation.
// The bus process passes the request to the corresponding energy
// estimation method after the [...] phase is finished. The entire
// address phase for a burst read or write is calculated at once."
//
// Estimation rules (and the inaccuracies they deliberately carry —
// "this model does not allow an accurate count of transitions for
// control signals [...] it considers each transaction phase on its own
// but does not consider interactions between following transactions"):
//
//  * EB_A:    driven-bit count of the address, charged against an idle
//             (zero) bus — the model keeps no cross-transaction state,
//             so repeated or sequential addresses are over-counted.
//  * Qualifiers (EB_Instr/EB_Write/EB_Burst/EB_BE): driven bits per
//             phase, same idle-state assumption.
//  * Handshake strobes: one full pulse (two transitions) per phase —
//             AValid+ARdy per address phase, RdVal or WDRdy per *beat*,
//             EB_Last per transaction. At layer 0/1, back-to-back
//             phases and streaming bursts hold these lines, so this
//             systematically over-counts — the dominant source of the
//             paper's +14.7 %.
//  * EB_Sel:  one pulse per transaction (the model cannot know whether
//             consecutive transactions hit the same slave's line).
//  * Data:    every beat is charged against an idle (zero) bus — "each
//             phase on its own", no inter-beat or inter-transaction
//             correlation; over-counts the strongly correlated data of
//             real instruction streams and arrays.
#ifndef SCT_POWER_TL2_POWER_MODEL_H
#define SCT_POWER_TL2_POWER_MODEL_H

#include <cstdint>

#include "bus/ec_interfaces.h"
#include "bus/ec_signals.h"
#include "ckpt/state_io.h"
#include "obs/ledger.h"
#include "power/coeff_table.h"
#include "power/power_if.h"

namespace sct::power {

class Tl2PowerModel final : public bus::Tl2Observer, public IntervalPowerIf {
 public:
  explicit Tl2PowerModel(const SignalEnergyTable& table) : table_(table) {}

  // bus::Tl2Observer
  void addressPhaseDone(const bus::Tl2PhaseInfo& info) override;
  void dataPhaseDone(const bus::Tl2PhaseInfo& info) override;

  // IntervalPowerIf — the paper's layer-2 power interface has only the
  // interval method; Figure 6 shows the resulting phase-granular
  // sampling skew.
  double energySinceLastCall_fJ() override;
  double totalEnergy_fJ() const override { return total_fJ_; }

  /// Estimated transition counts per bundle (diagnostics).
  double estimatedTransitions(bus::SignalId id) const {
    return estTransitions_[static_cast<std::size_t>(id)];
  }

  /// Attach an energy-attribution ledger. Every per-phase energy term is
  /// forwarded in accumulation order, so ledger.total_fJ() stays
  /// bit-identical to totalEnergy_fJ(). `master` tags all contributions.
  void attachLedger(obs::EnergyLedger& ledger, int master = 0) {
    ledger_ = &ledger;
    master_ = master;
  }

  /// -- Checkpoint (see ckpt/checkpoint.h): estimated transition
  /// counters, bit-exact energy accumulators and the attribution
  /// context of the last phase.
  static constexpr std::uint32_t kCkptVersion = 1;

  void saveState(ckpt::StateWriter& w) const {
    for (const double v : estTransitions_) w.f64(v);
    w.f64(total_fJ_);
    w.f64(intervalMarker_fJ_);
    w.u8(static_cast<std::uint8_t>(ctxClass_));
    w.i64(ctxSlave_);
  }

  void loadState(ckpt::StateReader& r) {
    for (double& v : estTransitions_) v = r.f64();
    total_fJ_ = r.f64();
    intervalMarker_fJ_ = r.f64();
    ctxClass_ = static_cast<obs::TxClass>(r.u8());
    ctxSlave_ = static_cast<int>(r.i64());
  }

 private:
  void addTransitions(bus::SignalId id, double n);

  SignalEnergyTable table_;
  std::array<double, bus::kSignalCount> estTransitions_{};
  double total_fJ_ = 0.0;
  double intervalMarker_fJ_ = 0.0;

  // Energy attribution (null = detached). The phase context is stamped
  // at the top of each observer callback before the addTransitions
  // calls it covers.
  obs::EnergyLedger* ledger_ = nullptr;
  int master_ = 0;
  obs::TxClass ctxClass_ = obs::TxClass::DataRead;
  int ctxSlave_ = -1;
};

} // namespace sct::power

#endif // SCT_POWER_TL2_POWER_MODEL_H
