// Energy-attribution ledger.
//
// The power models report energy as flat totals (the paper's Table 2
// interface-level numbers). The ledger splits every contribution four
// ways while it is being accumulated — by signal bundle, by transaction
// class (instruction read / data read / write), by decoded slave, and
// by master — which is the per-component breakdown the AMBA TLM
// validation work (Kim et al.) and the power-emulation instrumentation
// of Coburn et al. report, and the actionable form for power-aware
// firmware decisions ("which interface, talking to which slave, costs
// what").
//
// Reconciliation contract (enforced by tests/obs/ledger_reconcile_test):
// total_fJ() is BIT-IDENTICAL to the attached model's totalEnergy_fJ().
// That works because the ledger replays the model's floating-point
// accumulation exactly:
//  * Tl2PowerModel adds one energy term per addTransitions() call and
//    forwards the identical term to add(), which applies `total_ += e`
//    in the same sequence;
//  * Tl1PowerModel accumulates a per-cycle sum in bundle-index order
//    and adds it to its total once per busCycleEnd; the model forwards
//    each term to addDeferred() (same order, same partial-sum shape)
//    and calls commitCycle() where the model adds — identical operation
//    sequence, identical rounding, identical bits.
// The dimensional splits are ordinary per-dimension accumulators; their
// cross-sums agree with the total only up to floating-point
// reassociation, which is exactly why the dedicated total exists.
#ifndef SCT_OBS_LEDGER_H
#define SCT_OBS_LEDGER_H

#include <array>
#include <cstdint>

#include "bus/ec_signals.h"
#include "bus/ec_types.h"
#include "ckpt/state_io.h"
#include "obs/obs.h"

namespace sct::obs {

/// Transaction classes the ledger attributes to (the paper's workload
/// decomposition: instruction reads, data reads, writes).
enum class TxClass : std::uint8_t { InstrRead, DataRead, Write, kCount };

inline constexpr std::size_t kTxClassCount =
    static_cast<std::size_t>(TxClass::kCount);

constexpr TxClass txClassOf(bus::Kind k) {
  switch (k) {
    case bus::Kind::InstrFetch: return TxClass::InstrRead;
    case bus::Kind::Read: return TxClass::DataRead;
    case bus::Kind::Write: return TxClass::Write;
  }
  return TxClass::DataRead;
}

constexpr const char* txClassName(TxClass c) {
  switch (c) {
    case TxClass::InstrRead: return "instr-read";
    case TxClass::DataRead: return "data-read";
    case TxClass::Write: return "write";
    case TxClass::kCount: break;
  }
  return "?";
}

/// Slave dimension: decoded index -1 (miss) .. 7 (decoder limit),
/// stored shifted by one. Master dimension: platform masters (CPU,
/// DMA, bridge, ...). Shared by the live ledger and LedgerView so the
/// view type exists identically in SCT_OBS=OFF builds.
inline constexpr std::size_t kLedgerSlaveSlots = 9;
inline constexpr std::size_t kLedgerMasterSlots = 4;

/// Value-type copy of every ledger accumulator — the streamable form
/// of the attribution data. A long-running server cannot wait for
/// end-of-run totals: it snapshots the ledger at each session boundary
/// and streams `delta(end, start)` per session while the simulation
/// keeps accumulating. Views also merge (fleet aggregation across
/// workers), mirroring obs::merge for registry snapshots.
///
/// Determinism note: delta() subtracts doubles, which is only
/// bit-stable when the start state is bit-stable. The serve pool
/// guarantees that by restoring the ledger (with the rest of the
/// platform) from the boot snapshot before every session, so equal
/// sessions produce bit-identical deltas on any worker — the
/// threads=1 vs threads=N suite pins this down.
struct LedgerView {
  std::array<double, bus::kSignalCount> byBundle{};
  std::array<double, kTxClassCount> byClass{};
  std::array<double, kLedgerSlaveSlots> bySlave{};
  std::array<double, kLedgerMasterSlots> byMaster{};
  double total = 0.0;

  bool operator==(const LedgerView&) const = default;
};

/// Component-wise `end - start`: the attribution accumulated between
/// two snapshots of the SAME ledger.
inline LedgerView delta(const LedgerView& end, const LedgerView& start) {
  LedgerView d;
  for (std::size_t i = 0; i < d.byBundle.size(); ++i) {
    d.byBundle[i] = end.byBundle[i] - start.byBundle[i];
  }
  for (std::size_t i = 0; i < d.byClass.size(); ++i) {
    d.byClass[i] = end.byClass[i] - start.byClass[i];
  }
  for (std::size_t i = 0; i < d.bySlave.size(); ++i) {
    d.bySlave[i] = end.bySlave[i] - start.bySlave[i];
  }
  for (std::size_t i = 0; i < d.byMaster.size(); ++i) {
    d.byMaster[i] = end.byMaster[i] - start.byMaster[i];
  }
  d.total = end.total - start.total;
  return d;
}

/// Component-wise accumulate: fold `add` into `into` (aggregating
/// per-session deltas into a fleet total).
inline void merge(LedgerView& into, const LedgerView& add) {
  for (std::size_t i = 0; i < into.byBundle.size(); ++i) {
    into.byBundle[i] += add.byBundle[i];
  }
  for (std::size_t i = 0; i < into.byClass.size(); ++i) {
    into.byClass[i] += add.byClass[i];
  }
  for (std::size_t i = 0; i < into.bySlave.size(); ++i) {
    into.bySlave[i] += add.bySlave[i];
  }
  for (std::size_t i = 0; i < into.byMaster.size(); ++i) {
    into.byMaster[i] += add.byMaster[i];
  }
  into.total += add.total;
}

#if SCT_OBS_ENABLED

class EnergyLedger {
 public:
  static constexpr std::size_t kSlaveSlots = kLedgerSlaveSlots;
  static constexpr std::size_t kMasterSlots = kLedgerMasterSlots;

  /// Record one energy contribution immediately (interval-style models:
  /// one term per estimation call). Out of line: the caller is the
  /// models' per-signal hot path, which should carry only the
  /// ledger-attached pointer test.
  SCT_OBS_COLD void add(bus::SignalId bundle, TxClass cls, int slave,
                        int master, double fJ) {
    account(bundle, cls, slave, master, fJ);
    total_fJ_ += fJ;
  }

  /// Record one contribution of the cycle in progress (cycle-accurate
  /// models): the splits update now, the total on commitCycle() — the
  /// same two-step accumulation Tl1PowerModel::busCycleEnd performs.
  SCT_OBS_COLD void addDeferred(bus::SignalId bundle, TxClass cls, int slave,
                                int master, double fJ) {
    account(bundle, cls, slave, master, fJ);
    cycle_fJ_ += fJ;
  }

  /// Fold the deferred cycle sum into the total (once per bus cycle).
  void commitCycle() {
    total_fJ_ += cycle_fJ_;
    cycle_fJ_ = 0.0;
  }

  /// Bit-identical to the attached model's totalEnergy_fJ().
  double total_fJ() const { return total_fJ_; }

  double byBundle_fJ(bus::SignalId id) const {
    return byBundle_[static_cast<std::size_t>(id)];
  }
  double byClass_fJ(TxClass c) const {
    return byClass_[static_cast<std::size_t>(c)];
  }
  /// `slave` in [-1, kSlaveSlots - 2]; -1 aggregates decode misses.
  double bySlave_fJ(int slave) const {
    return bySlave_[slaveSlot(slave)];
  }
  double byMaster_fJ(int master) const {
    return byMaster_[masterSlot(master)];
  }

  void reset() { *this = EnergyLedger{}; }

  /// Copy every accumulator into the streamable value type. Taken at a
  /// session boundary (cycle_fJ_ folded already — the serve pool only
  /// snapshots at quiesce, where commitCycle has run), paired with
  /// delta() for per-session attribution.
  LedgerView view() const {
    LedgerView v;
    v.byBundle = byBundle_;
    v.byClass = byClass_;
    v.bySlave = bySlave_;
    v.byMaster = byMaster_;
    v.total = total_fJ_;
    return v;
  }

  /// -- Checkpoint (see ckpt/checkpoint.h): every split accumulator and
  /// both totals, bit-exact. The OBS=OFF stub writes the same-shaped
  /// empty section so snapshots stay loadable across builds with the
  /// hooks compiled out. Version 2: EB_Inv joined the signal
  /// inventory, growing the per-bundle accumulator array by one slot.
  static constexpr std::uint32_t kCkptVersion = 2;

  void saveState(ckpt::StateWriter& w) const {
    w.b(true);  // Accumulators present.
    for (const double v : byBundle_) w.f64(v);
    for (const double v : byClass_) w.f64(v);
    for (const double v : bySlave_) w.f64(v);
    for (const double v : byMaster_) w.f64(v);
    w.f64(total_fJ_);
    w.f64(cycle_fJ_);
  }

  void loadState(ckpt::StateReader& r) {
    if (!r.b()) return;  // Saved by an OBS=OFF build: nothing recorded.
    for (double& v : byBundle_) v = r.f64();
    for (double& v : byClass_) v = r.f64();
    for (double& v : bySlave_) v = r.f64();
    for (double& v : byMaster_) v = r.f64();
    total_fJ_ = r.f64();
    cycle_fJ_ = r.f64();
  }

 private:
  static std::size_t slaveSlot(int slave) {
    const std::size_t s = static_cast<std::size_t>(slave + 1);
    return s < kSlaveSlots ? s : kSlaveSlots - 1;
  }
  static std::size_t masterSlot(int master) {
    const std::size_t m = master < 0 ? 0 : static_cast<std::size_t>(master);
    return m < kMasterSlots ? m : kMasterSlots - 1;
  }

  void account(bus::SignalId bundle, TxClass cls, int slave, int master,
               double fJ) {
    byBundle_[static_cast<std::size_t>(bundle)] += fJ;
    byClass_[static_cast<std::size_t>(cls)] += fJ;
    bySlave_[slaveSlot(slave)] += fJ;
    byMaster_[masterSlot(master)] += fJ;
  }

  std::array<double, bus::kSignalCount> byBundle_{};
  std::array<double, kTxClassCount> byClass_{};
  std::array<double, kSlaveSlots> bySlave_{};
  std::array<double, kMasterSlots> byMaster_{};
  double total_fJ_ = 0.0;
  double cycle_fJ_ = 0.0;
};

#else // !SCT_OBS_ENABLED

class EnergyLedger {
 public:
  static constexpr std::size_t kSlaveSlots = kLedgerSlaveSlots;
  static constexpr std::size_t kMasterSlots = kLedgerMasterSlots;
  void add(bus::SignalId, TxClass, int, int, double) {}
  void addDeferred(bus::SignalId, TxClass, int, int, double) {}
  void commitCycle() {}
  double total_fJ() const { return 0.0; }
  double byBundle_fJ(bus::SignalId) const { return 0.0; }
  double byClass_fJ(TxClass) const { return 0.0; }
  double bySlave_fJ(int) const { return 0.0; }
  double byMaster_fJ(int) const { return 0.0; }
  void reset() {}
  LedgerView view() const { return LedgerView{}; }

  static constexpr std::uint32_t kCkptVersion = 2;
  void saveState(ckpt::StateWriter& w) const { w.b(false); }
  void loadState(ckpt::StateReader& r) {
    if (r.b()) {
      // Section written by an OBS=ON build: skip its accumulators.
      const std::size_t n = bus::kSignalCount + kTxClassCount +
                            kSlaveSlots + kMasterSlots + 2;
      for (std::size_t i = 0; i < n; ++i) (void)r.f64();
    }
  }
};

#endif // SCT_OBS_ENABLED

} // namespace sct::obs

#endif // SCT_OBS_LEDGER_H
