// Timeline recorder: transaction lifecycle spans and kernel events in
// Chrome trace_event JSON, loadable in Perfetto / chrome://tracing.
//
// Events are recorded into a bounded ring of preallocated slots — no
// allocation on the hot path, no unbounded growth on long runs. When
// the ring wraps, the oldest events are overwritten and a drop counter
// advances, so a truncated trace is detectable rather than silently
// misleading. Timestamps are bus-clock cycle numbers (the simulation's
// native time base); `displayTimeUnit` is nanoseconds so one cycle
// renders as one nanosecond tick in the viewer.
//
// Spans are emitted at completion with their begin cycle looked up from
// the transaction record ('X' complete events), which fits the
// event-driven TL2 bus: phase end cycles are resolved at accept time,
// so a span can be written the moment the retire point is reached even
// when the kernel warped over the intervening cycles.
#ifndef SCT_OBS_TRACE_JSON_H
#define SCT_OBS_TRACE_JSON_H

#include <cstdint>
#include <iosfwd>

#include "obs/obs.h"

#if SCT_OBS_ENABLED
#include <vector>
#endif

namespace sct::obs {

/// Well-known track ids (`tid` in the trace): one lane per component.
enum class Track : std::uint8_t {
  Kernel = 0,
  Clock = 1,
  Bus = 2,
  AddrPhase = 3,
  DataPhase = 4,
  Master = 5,
};

#if SCT_OBS_ENABLED

/// Optional small payload attached to an event; rendered into the
/// trace_event "args" object. Name pointers must be string literals
/// (they are stored, not copied).
struct TraceArg {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

class TraceRecorder {
 public:
  struct Event {
    const char* cat = nullptr;
    const char* name = nullptr;
    std::uint64_t ts = 0;   ///< Begin cycle.
    std::uint64_t dur = 0;  ///< Span length in cycles; unused for instants.
    Track track = Track::Kernel;
    char phase = 'X';  ///< 'X' complete span, 'i' instant.
    TraceArg a0;
    TraceArg a1;
  };

  /// `capacity` is the ring size; the recorder never allocates after
  /// construction.
  explicit TraceRecorder(std::size_t capacity = 1u << 16);

  /// Record a completed span [beginCycle, endCycle]. Category and name
  /// must be string literals.
  void span(const char* cat, const char* name, std::uint64_t beginCycle,
            std::uint64_t endCycle, Track track, TraceArg a0 = {},
            TraceArg a1 = {}) {
    Event& e = push();
    e.cat = cat;
    e.name = name;
    e.ts = beginCycle;
    e.dur = endCycle >= beginCycle ? endCycle - beginCycle : 0;
    e.track = track;
    e.phase = 'X';
    e.a0 = a0;
    e.a1 = a1;
  }

  /// Record a point event (clock warp, park, wake).
  void instant(const char* cat, const char* name, std::uint64_t cycle,
               Track track, TraceArg a0 = {}, TraceArg a1 = {}) {
    Event& e = push();
    e.cat = cat;
    e.name = name;
    e.ts = cycle;
    e.dur = 0;
    e.track = track;
    e.phase = 'i';
    e.a0 = a0;
    e.a1 = a1;
  }

  /// Events currently held (<= capacity).
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return ring_.size(); }
  /// Events overwritten because the ring was full.
  std::uint64_t dropped() const { return dropped_; }

  /// i = 0 is the oldest retained event.
  const Event& event(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }

  /// Write the retained events as a Chrome trace_event JSON document.
  void writeJson(std::ostream& os) const;

  void clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

 private:
  Event& push() {
    const std::size_t cap = ring_.size();
    std::size_t slot;
    if (size_ < cap) {
      slot = (head_ + size_) % cap;
      ++size_;
    } else {
      slot = head_;
      head_ = (head_ + 1) % cap;
      ++dropped_;
    }
    return ring_[slot];
  }

  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

#else // !SCT_OBS_ENABLED

struct TraceArg {
  const char* name = nullptr;
  std::uint64_t value = 0;
};

class TraceRecorder {
 public:
  struct Event {
    const char* cat = nullptr;
    const char* name = nullptr;
    std::uint64_t ts = 0;
    std::uint64_t dur = 0;
    Track track = Track::Kernel;
    char phase = 'X';
    TraceArg a0;
    TraceArg a1;
  };

  explicit TraceRecorder(std::size_t = 0) {}
  void span(const char*, const char*, std::uint64_t, std::uint64_t, Track,
            TraceArg = {}, TraceArg = {}) {}
  void instant(const char*, const char*, std::uint64_t, Track, TraceArg = {},
               TraceArg = {}) {}
  std::size_t size() const { return 0; }
  std::size_t capacity() const { return 0; }
  std::uint64_t dropped() const { return 0; }
  const Event& event(std::size_t) const { return dummy_; }
  void writeJson(std::ostream&) const {}
  void clear() {}

 private:
  Event dummy_;
};

#endif // SCT_OBS_ENABLED

} // namespace sct::obs

#endif // SCT_OBS_TRACE_JSON_H
