#include "obs/trace_json.h"

#if SCT_OBS_ENABLED

#include <ostream>

namespace sct::obs {

namespace {

void writeArgs(std::ostream& os, const TraceArg& a0, const TraceArg& a1) {
  if (a0.name == nullptr && a1.name == nullptr) return;
  os << ",\"args\":{";
  bool first = true;
  for (const TraceArg* a : {&a0, &a1}) {
    if (a->name == nullptr) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << a->name << "\":" << a->value;
  }
  os << '}';
}

} // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void TraceRecorder::writeJson(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ns\",\"droppedEvents\":" << dropped_
     << ",\"traceEvents\":[";
  for (std::size_t i = 0; i < size_; ++i) {
    const Event& e = event(i);
    if (i != 0) os << ',';
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
       << "\",\"ph\":\"" << e.phase << "\",\"ts\":" << e.ts;
    if (e.phase == 'X') os << ",\"dur\":" << e.dur;
    if (e.phase == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":0,\"tid\":" << static_cast<unsigned>(e.track);
    writeArgs(os, e.a0, e.a1);
    os << '}';
  }
  os << "]}";
}

} // namespace sct::obs

#endif // SCT_OBS_ENABLED
