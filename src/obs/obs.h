// Observability subsystem master switch.
//
// The whole obs layer — stats registry, energy-attribution ledger,
// Chrome-trace recorder and every hook threaded through the simulation
// stack — honours one compile-time switch: the SCT_OBS CMake option
// defines SCT_OBS_ENABLED for every target. With it off, the classes in
// obs/ collapse to empty inline stubs and every hook site is guarded by
// `if constexpr (obs::kEnabled)`, so instrumented builds and bare
// builds produce identical simulation behaviour and the bare build
// carries zero instructions for observability. With it on (the
// default), a hook whose sink is not attached costs one branch on a
// cached pointer — the same discipline as the buses' cached
// slave-control pointers.
#ifndef SCT_OBS_OBS_H
#define SCT_OBS_OBS_H

#ifndef SCT_OBS_ENABLED
#define SCT_OBS_ENABLED 1
#endif

// Emission bodies (span/instant construction, argument packing) live in
// out-of-line cold functions so the hot simulation paths carry only a
// pointer test and a call that is never taken when nothing is attached.
// Keeping the dead emission code out of the hot functions preserves
// their I-cache footprint — measured to matter on the TL2 idle-gap
// benchmarks.
#if defined(__GNUC__) || defined(__clang__)
#define SCT_OBS_COLD [[gnu::cold]] [[gnu::noinline]]
#else
#define SCT_OBS_COLD
#endif

namespace sct::obs {

/// Compile-time availability of the observability subsystem.
inline constexpr bool kEnabled = (SCT_OBS_ENABLED != 0);

} // namespace sct::obs

#endif // SCT_OBS_OBS_H
