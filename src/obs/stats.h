// Runtime metrics: hierarchically named counters, gauges and
// fixed-bucket histograms.
//
// A module resolves its handles once at attach time (StatsRegistry
// hands out stable references — storage is a deque, so registering more
// stats never invalidates earlier handles) and then updates them with a
// plain add/record on the hot path: no name lookup, no lock, no
// allocation per event. The registry itself is single-threaded like the
// simulation kernel; parallel sweeps give every worker its own registry
// and merge the snapshots afterwards (obs::merge), mirroring how
// sim::ParallelRunner keeps one kernel per task.
//
// Snapshots are plain data sorted by name, so two runs of the same
// deterministic simulation produce byte-identical JSON.
#ifndef SCT_OBS_STATS_H
#define SCT_OBS_STATS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/obs.h"

#if SCT_OBS_ENABLED

#include <deque>
#include <map>

namespace sct::obs {

/// Monotonic event count (transactions issued, warps taken, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written real value (energy totals, ratios, positions).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram over unsigned samples. Bucket `i` counts
/// samples <= bounds[i] (and greater than the previous bound); one
/// implicit overflow bucket catches the rest. Bounds are fixed at
/// creation — recording is a linear scan over a handful of bounds,
/// which for the short bucket lists used here (wait states, burst
/// lengths, queue depths, warp lengths) beats a binary search.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void record(std::uint64_t v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(count_);
  }
  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<std::uint64_t>& bucketCounts() const { return counts_; }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// One stat flattened to plain data (see StatsRegistry::snapshot).
struct SnapshotEntry {
  enum class Type : std::uint8_t { Counter, Gauge, Histogram };

  std::string name;
  Type type = Type::Counter;
  std::uint64_t count = 0;  ///< Counter value / histogram sample count.
  double value = 0.0;       ///< Gauge value / histogram sample sum.
  std::vector<std::uint64_t> bounds;   ///< Histogram only.
  std::vector<std::uint64_t> buckets;  ///< Histogram only.
};

/// Plain-data view of a registry (or a merge of several), sorted by
/// name. This is what crosses thread boundaries in exploration sweeps.
struct Snapshot {
  std::vector<SnapshotEntry> entries;

  const SnapshotEntry* find(const std::string& name) const;
  void writeJson(std::ostream& os) const;
};

/// Accumulate `from` into `into`: entries are matched by name (counter
/// values, gauge values, histogram buckets all sum; histograms must
/// share bounds). Unmatched entries are appended. Keeps `into` sorted.
void merge(Snapshot& into, const Snapshot& from);

/// Registry of named stats. Names are hierarchical dotted paths
/// ("ecbus.txn_latency_cycles", "clk.warps"); the hierarchy is a naming
/// convention, not a tree structure — flat storage keeps handles cheap.
class StatsRegistry {
 public:
  StatsRegistry() = default;
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  /// Create-or-get. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` must be ascending; it is fixed by the first caller and
  /// ignored on later lookups of the same name.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);

  std::size_t size() const { return index_.size(); }

  Snapshot snapshot() const;
  void writeJson(std::ostream& os) const;

 private:
  struct Slot {
    SnapshotEntry::Type type;
    void* stat;
  };

  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Slot> index_;
};

} // namespace sct::obs

#else // !SCT_OBS_ENABLED

namespace sct::obs {

// Inert stand-ins: same API, no state, no behaviour. Registry handles
// point at shared statics — harmless, since every mutator is a no-op.

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};

class Gauge {
 public:
  void set(double) {}
  void add(double) {}
  double value() const { return 0.0; }
};

class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> = {}) {}
  void record(std::uint64_t) {}
  std::uint64_t count() const { return 0; }
  std::uint64_t sum() const { return 0; }
  double mean() const { return 0.0; }
};

struct SnapshotEntry {
  enum class Type : std::uint8_t { Counter, Gauge, Histogram };
  std::string name;
  Type type = Type::Counter;
  std::uint64_t count = 0;
  double value = 0.0;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
};

struct Snapshot {
  std::vector<SnapshotEntry> entries;
  const SnapshotEntry* find(const std::string&) const { return nullptr; }
  void writeJson(std::ostream&) const {}
};

inline void merge(Snapshot&, const Snapshot&) {}

class StatsRegistry {
 public:
  Counter& counter(const std::string&) { return counter_; }
  Gauge& gauge(const std::string&) { return gauge_; }
  Histogram& histogram(const std::string&, std::vector<std::uint64_t>) {
    return histogram_;
  }
  std::size_t size() const { return 0; }
  Snapshot snapshot() const { return {}; }
  void writeJson(std::ostream&) const {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

} // namespace sct::obs

#endif // SCT_OBS_ENABLED

#endif // SCT_OBS_STATS_H
