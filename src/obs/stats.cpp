#include "obs/stats.h"

#if SCT_OBS_ENABLED

#include <algorithm>
#include <ostream>

namespace sct::obs {

namespace {

void writeJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

void writeUintArray(std::ostream& os, const std::vector<std::uint64_t>& v) {
  os << '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) os << ',';
    os << v[i];
  }
  os << ']';
}

const char* typeName(SnapshotEntry::Type t) {
  switch (t) {
    case SnapshotEntry::Type::Counter: return "counter";
    case SnapshotEntry::Type::Gauge: return "gauge";
    case SnapshotEntry::Type::Histogram: return "histogram";
  }
  return "?";
}

void writeEntry(std::ostream& os, const SnapshotEntry& e) {
  os << '{';
  os << "\"name\":";
  writeJsonString(os, e.name);
  os << ",\"type\":\"" << typeName(e.type) << '"';
  switch (e.type) {
    case SnapshotEntry::Type::Counter:
      os << ",\"value\":" << e.count;
      break;
    case SnapshotEntry::Type::Gauge:
      os << ",\"value\":" << e.value;
      break;
    case SnapshotEntry::Type::Histogram:
      os << ",\"count\":" << e.count << ",\"sum\":" << e.value
         << ",\"bounds\":";
      writeUintArray(os, e.bounds);
      os << ",\"buckets\":";
      writeUintArray(os, e.buckets);
      break;
  }
  os << '}';
}

} // namespace

const SnapshotEntry* Snapshot::find(const std::string& name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& e, const std::string& n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

void Snapshot::writeJson(std::ostream& os) const {
  os << "{\"stats\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) os << ',';
    writeEntry(os, entries[i]);
  }
  os << "]}";
}

void merge(Snapshot& into, const Snapshot& from) {
  for (const SnapshotEntry& e : from.entries) {
    auto it = std::lower_bound(into.entries.begin(), into.entries.end(),
                               e.name,
                               [](const SnapshotEntry& a,
                                  const std::string& n) { return a.name < n; });
    if (it == into.entries.end() || it->name != e.name) {
      into.entries.insert(it, e);
      continue;
    }
    if (it->type != e.type) continue;  // Name collision across types.
    it->count += e.count;
    it->value += e.value;
    if (e.type == SnapshotEntry::Type::Histogram &&
        it->bounds == e.bounds) {
      for (std::size_t b = 0; b < it->buckets.size() && b < e.buckets.size();
           ++b) {
        it->buckets[b] += e.buckets[b];
      }
    }
  }
}

Counter& StatsRegistry::counter(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return *static_cast<Counter*>(it->second.stat);
  Counter& c = counters_.emplace_back();
  index_.emplace(name, Slot{SnapshotEntry::Type::Counter, &c});
  return c;
}

Gauge& StatsRegistry::gauge(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return *static_cast<Gauge*>(it->second.stat);
  Gauge& g = gauges_.emplace_back();
  index_.emplace(name, Slot{SnapshotEntry::Type::Gauge, &g});
  return g;
}

Histogram& StatsRegistry::histogram(const std::string& name,
                                    std::vector<std::uint64_t> bounds) {
  auto it = index_.find(name);
  if (it != index_.end()) return *static_cast<Histogram*>(it->second.stat);
  Histogram& h = histograms_.emplace_back(std::move(bounds));
  index_.emplace(name, Slot{SnapshotEntry::Type::Histogram, &h});
  return h;
}

Snapshot StatsRegistry::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(index_.size());
  // std::map iterates in name order, so the snapshot is born sorted.
  for (const auto& [name, slot] : index_) {
    SnapshotEntry e;
    e.name = name;
    e.type = slot.type;
    switch (slot.type) {
      case SnapshotEntry::Type::Counter:
        e.count = static_cast<const Counter*>(slot.stat)->value();
        break;
      case SnapshotEntry::Type::Gauge:
        e.value = static_cast<const Gauge*>(slot.stat)->value();
        break;
      case SnapshotEntry::Type::Histogram: {
        const auto* h = static_cast<const Histogram*>(slot.stat);
        e.count = h->count();
        e.value = static_cast<double>(h->sum());
        e.bounds = h->bounds();
        e.buckets = h->bucketCounts();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

void StatsRegistry::writeJson(std::ostream& os) const {
  snapshot().writeJson(os);
}

} // namespace sct::obs

#endif // SCT_OBS_ENABLED
