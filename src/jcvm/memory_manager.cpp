#include "jcvm/memory_manager.h"

namespace sct::jcvm {

MemoryManager::MemoryManager(std::uint16_t staticFieldCount,
                             std::size_t heapShorts)
    : statics_(staticFieldCount, 0), heap_(heapShorts, 0) {}

bool MemoryManager::readStatic(std::uint16_t index, JcShort& out) const {
  if (index >= statics_.size()) return false;
  out = statics_[index];
  return true;
}

bool MemoryManager::writeStatic(std::uint16_t index, JcShort value) {
  if (index >= statics_.size()) return false;
  statics_[index] = value;
  return true;
}

ArrayRef MemoryManager::allocArray(std::uint16_t length, ContextId owner) {
  if (length == 0 || heapUsed_ + length > heap_.size() ||
      arrays_.size() >= 0xFFFE) {
    return 0;
  }
  arrays_.push_back(ArrayDesc{heapUsed_, length, owner});
  heapUsed_ += length;
  return static_cast<ArrayRef>(arrays_.size());  // 1-based.
}

const MemoryManager::ArrayDesc* MemoryManager::descFor(ArrayRef ref) const {
  if (ref == 0 || ref > arrays_.size()) return nullptr;
  return &arrays_[ref - 1];
}

bool MemoryManager::arrayLength(ArrayRef ref, std::uint16_t& out) const {
  const ArrayDesc* d = descFor(ref);
  if (d == nullptr) return false;
  out = d->length;
  return true;
}

ContextId MemoryManager::arrayOwner(ArrayRef ref) const {
  const ArrayDesc* d = descFor(ref);
  return d == nullptr ? kJcreContext : d->owner;
}

bool MemoryManager::readArray(ArrayRef ref, std::uint16_t index,
                              JcShort& out) const {
  const ArrayDesc* d = descFor(ref);
  if (d == nullptr || index >= d->length) return false;
  out = heap_[d->offset + index];
  return true;
}

bool MemoryManager::writeArray(ArrayRef ref, std::uint16_t index,
                               JcShort value) {
  const ArrayDesc* d = descFor(ref);
  if (d == nullptr || index >= d->length) return false;
  heap_[d->offset + index] = value;
  return true;
}

} // namespace sct::jcvm
