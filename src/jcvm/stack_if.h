// Operand-stack interface of the Java Card VM.
//
// This is the interface boundary the paper's communication refinement
// cuts (Figure 7): the bytecode interpreter invokes these methods
// whether the stack is the functional software model or — through the
// master adapter, the TLM bus and the slave adapter — the hardware
// stack. "The bytecode interpreter invokes the same interface functions
// as in the pure functional model."
#ifndef SCT_JCVM_STACK_IF_H
#define SCT_JCVM_STACK_IF_H

#include <cstdint>
#include <vector>

#include "ckpt/state_io.h"

namespace sct::jcvm {

using JcShort = std::int16_t;

struct StackStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t overflowAttempts = 0;
  std::uint64_t underflowAttempts = 0;
};

class OperandStackIf {
 public:
  virtual ~OperandStackIf() = default;

  /// Push a short. Returns false on overflow.
  virtual bool push(JcShort value) = 0;

  /// Pop a short into `out`. Returns false on underflow.
  virtual bool pop(JcShort& out) = 0;

  /// Current element count.
  virtual std::uint16_t depth() = 0;

  /// Empty the stack.
  virtual void reset() = 0;

  virtual const StackStats& stats() const = 0;
};

/// Pure software operand stack (the untimed functional model).
class FunctionalStack final : public OperandStackIf {
 public:
  explicit FunctionalStack(std::uint16_t capacity = 256)
      : capacity_(capacity) {
    data_.reserve(capacity);
  }

  bool push(JcShort value) override {
    ++stats_.pushes;
    if (data_.size() >= capacity_) {
      ++stats_.overflowAttempts;
      return false;
    }
    data_.push_back(value);
    return true;
  }

  bool pop(JcShort& out) override {
    ++stats_.pops;
    if (data_.empty()) {
      ++stats_.underflowAttempts;
      return false;
    }
    out = data_.back();
    data_.pop_back();
    return true;
  }

  std::uint16_t depth() override {
    return static_cast<std::uint16_t>(data_.size());
  }

  void reset() override { data_.clear(); }

  const StackStats& stats() const override { return stats_; }
  std::uint16_t capacity() const { return capacity_; }

  /// -- Checkpoint (see ckpt/checkpoint.h).
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    w.u64(static_cast<std::uint64_t>(data_.size()));
    for (const JcShort v : data_) w.u16(static_cast<std::uint16_t>(v));
    w.u64(stats_.pushes);
    w.u64(stats_.pops);
    w.u64(stats_.overflowAttempts);
    w.u64(stats_.underflowAttempts);
  }
  void loadState(ckpt::StateReader& r) {
    const std::uint64_t n = r.u64();
    if (n > capacity_) {
      throw ckpt::CheckpointError(
          "FunctionalStack::loadState: saved depth exceeds capacity");
    }
    data_.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      data_.push_back(static_cast<JcShort>(r.u16()));
    }
    stats_.pushes = r.u64();
    stats_.pops = r.u64();
    stats_.overflowAttempts = r.u64();
    stats_.underflowAttempts = r.u64();
  }

 private:
  std::uint16_t capacity_;
  std::vector<JcShort> data_;
  StackStats stats_;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_STACK_IF_H
