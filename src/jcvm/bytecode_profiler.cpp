#include "jcvm/bytecode_profiler.h"

#include <algorithm>

namespace sct::jcvm {

std::vector<BytecodeEnergyProfiler::Entry>
BytecodeEnergyProfiler::ranking() const {
  std::vector<Entry> out;
  for (std::size_t i = 0; i < kOpCount; ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Entry{static_cast<Bc>(i), counts_[i], energy_fJ_[i]});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    return a.energy_fJ > b.energy_fJ;
  });
  return out;
}

double BytecodeEnergyProfiler::totalAttributed_fJ() const {
  double sum = 0.0;
  for (double e : energy_fJ_) sum += e;
  return sum;
}

} // namespace sct::jcvm
