// Sample Java Card applets used by tests, benches and examples.
#ifndef SCT_JCVM_APPLETS_H
#define SCT_JCVM_APPLETS_H

#include "jcvm/bytecode.h"
#include "jcvm/stack_if.h"

namespace sct::jcvm::applets {

/// Sum of 1..n (argument in local 0), returned via sreturn.
/// Stack-churny loop: the classic interpreter workload.
JcProgram sumLoop();

/// Iterative Fibonacci: fib(n) for the argument in local 0.
JcProgram fibonacci();

/// The classic wallet applet: static balance field, credit/debit
/// helper methods with limit checks. Entry args: (opcode, amount)
/// where opcode 1 = credit, 2 = debit; returns the resulting balance.
/// Methods run in context 1; the balance field is owned by context 1.
JcProgram wallet(JcShort initialBalance, JcShort maxBalance);

/// Allocates an array of n elements, fills it with i*i, and returns the
/// checksum. Exercises Newarray/Saload/Sastore and the firewall.
JcProgram arrayChecksum();

/// A deliberately firewall-violating applet: context 2 code touching a
/// context-1 field.
JcProgram firewallViolator();

/// Euclid's algorithm: gcd(a, b) for the two entry arguments.
JcProgram gcd();

/// Allocates an n-element array filled with a descending sequence,
/// bubble-sorts it ascending, and returns a probe element
/// (arr[probeIndex]). Entry args: (n, probeIndex). Heavily exercises
/// Saload/Sastore and nested loops — the array workout.
JcProgram bubbleSort();

} // namespace sct::jcvm::applets

#endif // SCT_JCVM_APPLETS_H
