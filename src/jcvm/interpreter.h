// Bytecode interpreter of the Java Card VM (Figure 7).
//
// Functional and un-timed, exactly like the paper's model: executing a
// bytecode is a plain function call, and the only timed behaviour in
// the refined system comes from the operand-stack interface when it is
// backed by the hardware stack through the TLM bus. Frames (locals,
// return addresses) live in the memory manager's domain and stay in
// software; the operand stack goes through OperandStackIf.
#ifndef SCT_JCVM_INTERPRETER_H
#define SCT_JCVM_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "jcvm/bytecode.h"
#include "jcvm/memory_manager.h"
#include "jcvm/stack_if.h"

namespace sct::jcvm {

enum class VmError : std::uint8_t {
  None,
  StackOverflow,
  StackUnderflow,
  ArithmeticError,      ///< Division by zero.
  InvalidBytecode,
  BadLocalIndex,
  BadFieldIndex,
  NullOrBadArray,
  ArrayIndexOutOfBounds,
  FirewallViolation,
  CallDepthExceeded,
  StepLimitExceeded,
};

struct VmStats {
  std::uint64_t bytecodesExecuted = 0;
  std::uint64_t stackOps = 0;      ///< Pushes + pops through the interface.
  std::uint64_t invocations = 0;
  std::uint64_t branchesTaken = 0;
};

/// Observes every bytecode the interpreter executes (profilers,
/// tracers). Called before the bytecode's effects run.
class BytecodeObserver {
 public:
  virtual ~BytecodeObserver() = default;
  virtual void onBytecode(Bc op, std::uint32_t pc) = 0;
  /// Called when a run finishes (to close the last attribution span).
  virtual void onRunEnd() {}
};

class Interpreter {
 public:
  Interpreter(const JcProgram& program, OperandStackIf& stack,
              MemoryManager& memory, Firewall& firewall,
              std::size_t maxCallDepth = 32);

  void setObserver(BytecodeObserver* observer) { observer_ = observer; }

  /// Run method 0 (the entry point) with `args` pre-loaded into its
  /// first locals. Returns true on clean completion.
  bool run(const std::vector<JcShort>& args = {},
           std::uint64_t maxSteps = 1'000'000);

  VmError error() const { return error_; }
  const VmStats& stats() const { return stats_; }

  /// Value delivered by a top-level `sreturn` (0 for `return`).
  JcShort result() const { return result_; }

 private:
  struct Frame {
    std::uint8_t method;
    std::uint32_t pc;  ///< Absolute index into program.code.
    std::vector<JcShort> locals;
  };

  bool step();
  bool push(JcShort v);
  bool pop(JcShort& v);
  bool fail(VmError e);
  std::uint8_t fetchU8();
  std::uint16_t fetchU16();
  ContextId currentContext() const;

  const JcProgram& program_;
  OperandStackIf& stack_;
  MemoryManager& memory_;
  Firewall& firewall_;
  std::size_t maxCallDepth_;

  std::vector<Frame> frames_;
  BytecodeObserver* observer_ = nullptr;
  VmError error_ = VmError::None;
  VmStats stats_;
  JcShort result_ = 0;
  bool finished_ = false;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_INTERPRETER_H
