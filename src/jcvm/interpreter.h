// Bytecode interpreter of the Java Card VM (Figure 7).
//
// Functional and un-timed, exactly like the paper's model: executing a
// bytecode is a plain function call, and the only timed behaviour in
// the refined system comes from the operand-stack interface when it is
// backed by the hardware stack through the TLM bus. Frames (locals,
// return addresses) live in the memory manager's domain and stay in
// software; the operand stack goes through OperandStackIf.
#ifndef SCT_JCVM_INTERPRETER_H
#define SCT_JCVM_INTERPRETER_H

#include <cstdint>
#include <vector>

#include "ckpt/state_io.h"
#include "jcvm/bytecode.h"
#include "jcvm/memory_manager.h"
#include "jcvm/stack_if.h"

namespace sct::jcvm {

enum class VmError : std::uint8_t {
  None,
  StackOverflow,
  StackUnderflow,
  ArithmeticError,      ///< Division by zero.
  InvalidBytecode,
  BadLocalIndex,
  BadFieldIndex,
  NullOrBadArray,
  ArrayIndexOutOfBounds,
  FirewallViolation,
  CallDepthExceeded,
  StepLimitExceeded,
};

struct VmStats {
  std::uint64_t bytecodesExecuted = 0;
  std::uint64_t stackOps = 0;      ///< Pushes + pops through the interface.
  std::uint64_t invocations = 0;
  std::uint64_t branchesTaken = 0;
};

/// Observes every bytecode the interpreter executes (profilers,
/// tracers). Called before the bytecode's effects run.
class BytecodeObserver {
 public:
  virtual ~BytecodeObserver() = default;
  virtual void onBytecode(Bc op, std::uint32_t pc) = 0;
  /// Called when a run finishes (to close the last attribution span).
  virtual void onRunEnd() {}
};

class Interpreter {
 public:
  Interpreter(const JcProgram& program, OperandStackIf& stack,
              MemoryManager& memory, Firewall& firewall,
              std::size_t maxCallDepth = 32);

  void setObserver(BytecodeObserver* observer) { observer_ = observer; }

  /// Run method 0 (the entry point) with `args` pre-loaded into its
  /// first locals. Returns true on clean completion.
  bool run(const std::vector<JcShort>& args = {},
           std::uint64_t maxSteps = 1'000'000);

  VmError error() const { return error_; }
  const VmStats& stats() const { return stats_; }

  /// Value delivered by a top-level `sreturn` (0 for `return`).
  JcShort result() const { return result_; }

  /// -- Checkpoint (see ckpt/checkpoint.h): call frames (method, pc,
  /// locals), error/result latches and the execution statistics. The
  /// operand stack, memory manager and firewall are separate
  /// components; the program itself is code, not state.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    w.u64(static_cast<std::uint64_t>(frames_.size()));
    for (const Frame& f : frames_) {
      w.u8(f.method);
      w.u32(f.pc);
      w.u64(static_cast<std::uint64_t>(f.locals.size()));
      for (const JcShort v : f.locals) {
        w.u16(static_cast<std::uint16_t>(v));
      }
    }
    w.u8(static_cast<std::uint8_t>(error_));
    w.u64(stats_.bytecodesExecuted);
    w.u64(stats_.stackOps);
    w.u64(stats_.invocations);
    w.u64(stats_.branchesTaken);
    w.u16(static_cast<std::uint16_t>(result_));
    w.b(finished_);
  }
  void loadState(ckpt::StateReader& r) {
    frames_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      Frame f{};
      f.method = r.u8();
      f.pc = r.u32();
      const std::uint64_t locals = r.u64();
      f.locals.reserve(static_cast<std::size_t>(locals));
      for (std::uint64_t j = 0; j < locals; ++j) {
        f.locals.push_back(static_cast<JcShort>(r.u16()));
      }
      frames_.push_back(std::move(f));
    }
    error_ = static_cast<VmError>(r.u8());
    stats_.bytecodesExecuted = r.u64();
    stats_.stackOps = r.u64();
    stats_.invocations = r.u64();
    stats_.branchesTaken = r.u64();
    result_ = static_cast<JcShort>(r.u16());
    finished_ = r.b();
  }

 private:
  struct Frame {
    std::uint8_t method;
    std::uint32_t pc;  ///< Absolute index into program.code.
    std::vector<JcShort> locals;
  };

  bool step();
  bool push(JcShort v);
  bool pop(JcShort& v);
  bool fail(VmError e);
  std::uint8_t fetchU8();
  std::uint16_t fetchU16();
  ContextId currentContext() const;

  const JcProgram& program_;
  OperandStackIf& stack_;
  MemoryManager& memory_;
  Firewall& firewall_;
  std::size_t maxCallDepth_;

  std::vector<Frame> frames_;
  BytecodeObserver* observer_ = nullptr;
  VmError error_ = VmError::None;
  VmStats stats_;
  JcShort result_ = 0;
  bool finished_ = false;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_INTERPRETER_H
