// Java Card bytecode subset.
//
// The paper's HW/SW-interface case study uses "a java card virtual
// machine implemented as functional, un-timed SystemC model" (Figure
// 7). This module defines the bytecode subset our interpreter executes:
// the 16-bit ("short") arithmetic, stack, local-variable, branch,
// static-field, array and invocation instructions that Java Card
// applets are built from. Opcode numbering is internal to this
// framework; mnemonics follow the Java Card VM specification.
#ifndef SCT_JCVM_BYTECODE_H
#define SCT_JCVM_BYTECODE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sct::jcvm {

enum class Bc : std::uint8_t {
  Nop = 0x00,
  Bspush,   ///< Push sign-extended byte.
  Sspush,   ///< Push 16-bit short.
  Pop,
  Dup,
  Swap,
  Sadd,
  Ssub,
  Smul,
  Sdiv,     ///< Division by zero raises VmError::ArithmeticError.
  Sneg,
  Sand,
  Sor,
  Sxor,
  Sshl,
  Sshr,
  Sload,    ///< Push local variable (u8 index).
  Sstore,   ///< Pop into local variable (u8 index).
  Sinc,     ///< Add s8 constant to local (u8 index, s8 delta).
  Goto,     ///< Relative s16 branch.
  Ifeq,     ///< Branch if popped value == 0.
  Ifne,
  IfScmpeq, ///< Pop two, compare, branch.
  IfScmpne,
  IfScmplt,
  IfScmpge,
  IfScmpgt,
  IfScmple,
  Getstatic,  ///< Push static field (u16 index).
  Putstatic,  ///< Pop into static field (u16 index).
  Newarray,   ///< Pop length, push array reference.
  Arraylength,///< Pop reference, push length.
  Saload,     ///< Pop index, ref; push element.
  Sastore,    ///< Pop value, index, ref.
  Invokestatic, ///< u8 method index; args move from stack to locals.
  Sreturn,    ///< Return a short to the caller's stack.
  Return,     ///< Return void.
};

/// Operand byte count of each opcode.
constexpr unsigned operandBytes(Bc op) {
  switch (op) {
    case Bc::Bspush: return 1;
    case Bc::Sspush: return 2;
    case Bc::Sload:
    case Bc::Sstore: return 1;
    case Bc::Sinc: return 2;
    case Bc::Goto:
    case Bc::Ifeq:
    case Bc::Ifne:
    case Bc::IfScmpeq:
    case Bc::IfScmpne:
    case Bc::IfScmplt:
    case Bc::IfScmpge:
    case Bc::IfScmpgt:
    case Bc::IfScmple: return 2;
    case Bc::Getstatic:
    case Bc::Putstatic: return 2;
    case Bc::Invokestatic: return 2;  // method index, argument count.
    default: return 0;
  }
}

std::string_view mnemonic(Bc op);

/// One method of an applet: bytecode range plus frame metadata.
struct MethodInfo {
  std::uint32_t offset = 0;   ///< First bytecode index.
  std::uint8_t maxLocals = 0;
  std::uint8_t argCount = 0;
  std::uint16_t context = 0;  ///< Firewall context (package) id.
  std::string name;
};

/// A complete applet image: bytecodes, method table, static field
/// count. Method 0 is the entry point.
struct JcProgram {
  std::vector<std::uint8_t> code;
  std::vector<MethodInfo> methods;
  std::uint16_t staticFieldCount = 0;
  /// Firewall owner context per static field (parallel array; missing
  /// entries default to context 0 = shared/JCRE).
  std::vector<std::uint16_t> staticFieldContext;

  std::uint16_t fieldContext(std::uint16_t index) const {
    return index < staticFieldContext.size() ? staticFieldContext[index]
                                             : 0;
  }
};

/// Incremental builder for applet images (the test/bench "assembler").
class ProgramBuilder {
 public:
  /// Begin a method; returns its index. Methods must be closed with
  /// endMethod() before the next begins.
  std::uint8_t beginMethod(std::string name, std::uint8_t argCount,
                           std::uint8_t maxLocals, std::uint16_t context = 0);
  void endMethod();

  // Emission helpers. `fixup` targets are resolved by label().
  void emit(Bc op);
  void emitU8(Bc op, std::uint8_t v);
  void emitS8(Bc op, std::int8_t v);
  void emitU16(Bc op, std::uint16_t v);
  void emitS16(Bc op, std::int16_t v);
  void sinc(std::uint8_t local, std::int8_t delta);
  void invoke(std::uint8_t method, std::uint8_t argCount);

  /// Branch to a label (forward or backward).
  void branch(Bc op, const std::string& label);
  void defineLabel(const std::string& label);

  std::uint16_t addStaticField(std::uint16_t context = 0);

  /// Finalize: resolves branch fixups; throws std::runtime_error on
  /// undefined labels or unclosed methods.
  JcProgram build();

 private:
  struct Fixup {
    std::size_t at;  ///< Offset of the s16 operand.
    std::string label;
  };

  JcProgram program_;
  std::vector<Fixup> fixups_;
  std::vector<std::pair<std::string, std::uint32_t>> labels_;
  bool inMethod_ = false;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_BYTECODE_H
