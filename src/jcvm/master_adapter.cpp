#include "jcvm/master_adapter.h"

namespace sct::jcvm {

using bus::BusStatus;
using bus::Word;

namespace {

struct Offsets {
  bus::Address push;    ///< Write target for a single short.
  bus::Address pop;     ///< Read target for a single short.
  bus::Address pair;    ///< Pair transfer register (Packed only).
  bus::Address status;  ///< Depth / status.
  bus::Address ctrl;    ///< Reset.
};

Offsets offsetsFor(SfrOrganization org) {
  switch (org) {
    case SfrOrganization::Separate: return {0x0, 0x4, 0x0, 0x8, 0xC};
    case SfrOrganization::Combined: return {0x0, 0x0, 0x0, 0x4, 0x8};
    case SfrOrganization::Packed: return {0x4, 0x4, 0x0, 0x8, 0xC};
  }
  return {};
}

} // namespace

HwStackMasterAdapter::HwStackMasterAdapter(sim::Clock& clock,
                                           bus::EcDataIf& dataIf,
                                           const Config& config)
    : clock_(clock), dataIf_(dataIf), config_(config) {}

BusStatus HwStackMasterAdapter::transfer(bus::Tl1Request& req) {
  ++transportStats_.busTransactions;
  transportStats_.bytesOnBus += req.byteCount();
  BusStatus s = req.kind == bus::Kind::Write ? dataIf_.write(req)
                                             : dataIf_.read(req);
  const std::uint64_t start = clock_.cycle();
  while (s != BusStatus::Ok && s != BusStatus::Error) {
    clock_.runCycles(1);
    s = req.kind == bus::Kind::Write ? dataIf_.write(req)
                                     : dataIf_.read(req);
    if (clock_.cycle() - start > 10000) break;  // Wedged bus safeguard.
  }
  transportStats_.busCycles += clock_.cycle() - start;
  if (s == BusStatus::Error) ++transportStats_.busErrors;
  return s;
}

Word HwStackMasterAdapter::busRead(bus::Address offset, bool& ok) {
  bus::Tl1Request req;
  req.kind = bus::Kind::Read;
  req.address = config_.base + offset;
  req.size = bus::AccessSize::Word;
  ok = transfer(req) == BusStatus::Ok;
  return ok ? req.data[0] : 0;
}

void HwStackMasterAdapter::busWrite(bus::Address offset, Word value,
                                    bool& ok) {
  bus::Tl1Request req;
  req.kind = bus::Kind::Write;
  req.address = config_.base + offset;
  req.size = bus::AccessSize::Word;
  req.data[0] = value;
  ok = transfer(req) == BusStatus::Ok;
}

bool HwStackMasterAdapter::flushHeld() {
  if (!heldHigh_) return true;
  const Offsets off = offsetsFor(config_.organization);
  bool ok = true;
  busWrite(off.push, static_cast<std::uint16_t>(*heldHigh_), ok);
  if (ok) ++hwDepth_;
  heldHigh_.reset();
  return ok;
}

bool HwStackMasterAdapter::push(JcShort value) {
  ++stackStats_.pushes;
  const std::uint16_t total =
      static_cast<std::uint16_t>(hwDepth_ + (heldHigh_ ? 1 : 0));
  if (total >= config_.capacity) {
    ++stackStats_.overflowAttempts;
    return false;
  }
  const Offsets off = offsetsFor(config_.organization);
  if (config_.organization == SfrOrganization::Packed) {
    // Top-of-stack register with pair combining: one short may live in
    // the adapter (the TOS register); a second push spills both as one
    // pair transaction. Push/pop ping-pong hits the TOS register, and
    // sustained pushes cost half the transactions of single transfers.
    if (!heldHigh_) {
      heldHigh_ = value;
      return true;
    }
    const Word pair =
        (static_cast<Word>(static_cast<std::uint16_t>(value)) << 16) |
        static_cast<std::uint16_t>(*heldHigh_);
    bool ok = true;
    busWrite(off.pair, pair, ok);
    if (!ok) return false;
    hwDepth_ += 2;
    heldHigh_.reset();
    return true;
  }
  bool ok = true;
  busWrite(off.push, static_cast<std::uint16_t>(value), ok);
  if (ok) ++hwDepth_;
  return ok;
}

bool HwStackMasterAdapter::pop(JcShort& out) {
  ++stackStats_.pops;
  const Offsets off = offsetsFor(config_.organization);
  if (config_.organization == SfrOrganization::Packed) {
    if (heldHigh_) {
      out = *heldHigh_;
      heldHigh_.reset();
      return true;
    }
    if (hwDepth_ == 0) {
      ++stackStats_.underflowAttempts;
      return false;
    }
    bool ok = true;
    if (hwDepth_ >= 2) {
      const Word pair = busRead(off.pair, ok);
      if (!ok) return false;
      hwDepth_ -= 2;
      out = static_cast<JcShort>(static_cast<std::uint16_t>(pair >> 16));
      heldHigh_ = static_cast<JcShort>(
          static_cast<std::uint16_t>(pair & 0xFFFF));
      return true;
    }
    const Word v = busRead(off.pop, ok);
    if (!ok) return false;
    --hwDepth_;
    out = static_cast<JcShort>(static_cast<std::uint16_t>(v));
    return true;
  }
  if (hwDepth_ == 0) {
    ++stackStats_.underflowAttempts;
    return false;
  }
  bool ok = true;
  const Word v = busRead(off.pop, ok);
  if (!ok) return false;
  --hwDepth_;
  out = static_cast<JcShort>(static_cast<std::uint16_t>(v));
  return true;
}

std::uint16_t HwStackMasterAdapter::depth() {
  const std::uint16_t held = heldHigh_ ? 1 : 0;
  if (config_.shadowDepth) {
    return static_cast<std::uint16_t>(hwDepth_ + held);
  }
  const Offsets off = offsetsFor(config_.organization);
  bool ok = true;
  const Word s = busRead(off.status, ok);
  return static_cast<std::uint16_t>((ok ? (s & 0xFF) : 0) + held);
}

void HwStackMasterAdapter::reset() {
  heldHigh_.reset();
  const Offsets off = offsetsFor(config_.organization);
  bool ok = true;
  busWrite(off.ctrl, 1, ok);
  hwDepth_ = 0;
}

} // namespace sct::jcvm
