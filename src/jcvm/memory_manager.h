// Memory manager and applet firewall of the Java Card VM (Figure 7).
//
// The memory manager owns the static-field area and the short-array
// heap; the firewall enforces Java Card's context isolation: an object
// may only be touched from the context that owns it, except for objects
// owned by context 0 (the JCRE / shared context).
#ifndef SCT_JCVM_MEMORY_MANAGER_H
#define SCT_JCVM_MEMORY_MANAGER_H

#include <cstdint>
#include <vector>

#include "ckpt/state_io.h"
#include "jcvm/stack_if.h"

namespace sct::jcvm {

/// Firewall context id; 0 is the shared JCRE context.
using ContextId = std::uint16_t;
inline constexpr ContextId kJcreContext = 0;

class Firewall {
 public:
  /// May code running in `current` touch an object owned by `owner`?
  bool allows(ContextId current, ContextId owner) const {
    return owner == kJcreContext || owner == current;
  }

  void recordCheck(bool allowed) {
    ++checks_;
    if (!allowed) ++violations_;
  }

  std::uint64_t checks() const { return checks_; }
  std::uint64_t violations() const { return violations_; }

  /// -- Checkpoint (see ckpt/checkpoint.h).
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    w.u64(checks_);
    w.u64(violations_);
  }
  void loadState(ckpt::StateReader& r) {
    checks_ = r.u64();
    violations_ = r.u64();
  }

 private:
  std::uint64_t checks_ = 0;
  std::uint64_t violations_ = 0;
};

/// Array reference; 0 is the null reference.
using ArrayRef = std::uint16_t;

class MemoryManager {
 public:
  explicit MemoryManager(std::uint16_t staticFieldCount = 0,
                         std::size_t heapShorts = 4096);

  // --- Static fields -------------------------------------------------------
  std::uint16_t staticFieldCount() const {
    return static_cast<std::uint16_t>(statics_.size());
  }
  bool readStatic(std::uint16_t index, JcShort& out) const;
  bool writeStatic(std::uint16_t index, JcShort value);

  // --- Arrays ----------------------------------------------------------------
  /// Allocate a zeroed short array owned by `owner`; returns 0 when the
  /// heap is exhausted or length invalid.
  ArrayRef allocArray(std::uint16_t length, ContextId owner);
  bool arrayLength(ArrayRef ref, std::uint16_t& out) const;
  ContextId arrayOwner(ArrayRef ref) const;
  bool readArray(ArrayRef ref, std::uint16_t index, JcShort& out) const;
  bool writeArray(ArrayRef ref, std::uint16_t index, JcShort value);

  std::size_t heapUsedShorts() const { return heapUsed_; }
  std::size_t heapCapacityShorts() const { return heap_.size(); }

  /// -- Checkpoint (see ckpt/checkpoint.h): statics, the used part of
  /// the heap and the array descriptors. The restore target must have
  /// the same static-field count and heap capacity.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    w.u64(static_cast<std::uint64_t>(statics_.size()));
    for (const JcShort v : statics_) w.u16(static_cast<std::uint16_t>(v));
    w.u64(static_cast<std::uint64_t>(heap_.size()));
    w.u64(static_cast<std::uint64_t>(heapUsed_));
    for (std::size_t i = 0; i < heapUsed_; ++i) {
      w.u16(static_cast<std::uint16_t>(heap_[i]));
    }
    w.u64(static_cast<std::uint64_t>(arrays_.size()));
    for (const ArrayDesc& a : arrays_) {
      w.u64(static_cast<std::uint64_t>(a.offset));
      w.u16(a.length);
      w.u16(a.owner);
    }
  }
  void loadState(ckpt::StateReader& r) {
    if (r.u64() != statics_.size() || r.u64() != heap_.size()) {
      throw ckpt::CheckpointError(
          "MemoryManager::loadState: geometry differs from the saved "
          "manager");
    }
    for (JcShort& v : statics_) v = static_cast<JcShort>(r.u16());
    heapUsed_ = static_cast<std::size_t>(r.u64());
    if (heapUsed_ > heap_.size()) {
      throw ckpt::CheckpointError(
          "MemoryManager::loadState: saved heap use exceeds capacity");
    }
    for (std::size_t i = 0; i < heapUsed_; ++i) {
      heap_[i] = static_cast<JcShort>(r.u16());
    }
    arrays_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      ArrayDesc a{};
      a.offset = static_cast<std::size_t>(r.u64());
      a.length = r.u16();
      a.owner = r.u16();
      arrays_.push_back(a);
    }
  }

 private:
  struct ArrayDesc {
    std::size_t offset;
    std::uint16_t length;
    ContextId owner;
  };

  const ArrayDesc* descFor(ArrayRef ref) const;

  std::vector<JcShort> statics_;
  std::vector<JcShort> heap_;
  std::size_t heapUsed_ = 0;
  std::vector<ArrayDesc> arrays_;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_MEMORY_MANAGER_H
