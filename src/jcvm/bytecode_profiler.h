// Per-bytecode energy attribution.
//
// Attached to the interpreter as a BytecodeObserver and to a power
// model's interval interface, the profiler attributes the bus energy
// spent between consecutive bytecodes to the bytecode that caused it —
// turning the exploration's aggregate figures into a "which bytecodes
// cost what" ranking (the actionable form for firmware and interface
// optimization).
#ifndef SCT_JCVM_BYTECODE_PROFILER_H
#define SCT_JCVM_BYTECODE_PROFILER_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "jcvm/interpreter.h"
#include "obs/stats.h"
#include "power/power_if.h"

namespace sct::jcvm {

class BytecodeEnergyProfiler final : public BytecodeObserver {
 public:
  explicit BytecodeEnergyProfiler(power::IntervalPowerIf& power)
      : power_(power) {}

  // BytecodeObserver
  void onBytecode(Bc op, std::uint32_t /*pc*/) override {
    attributePending();
    pending_ = op;
    hasPending_ = true;
  }
  void onRunEnd() override { attributePending(); }

  struct Entry {
    Bc op;
    std::uint64_t count;
    double energy_fJ;
    double energyPerExecution_fJ() const {
      return count == 0 ? 0.0 : energy_fJ / static_cast<double>(count);
    }
  };

  /// Non-zero entries, most expensive first.
  std::vector<Entry> ranking() const;

  double totalAttributed_fJ() const;
  std::uint64_t executions(Bc op) const {
    return counts_[static_cast<std::size_t>(op)];
  }
  double energyOf(Bc op) const {
    return energy_fJ_[static_cast<std::size_t>(op)];
  }

  /// Publish the attribution into `reg`: per executed bytecode one
  /// "<prefix>.count.<mnemonic>" counter and one
  /// "<prefix>.energy_fJ.<mnemonic>" gauge. Copy-out at snapshot time;
  /// the hot path stays untouched.
  void publishTo(obs::StatsRegistry& reg,
                 const std::string& prefix = "bytecode") const {
    for (const Entry& e : ranking()) {
      const std::string op(mnemonic(e.op));
      reg.counter(prefix + ".count." + op).add(e.count);
      reg.gauge(prefix + ".energy_fJ." + op).add(e.energy_fJ);
    }
  }

 private:
  void attributePending() {
    const double delta = power_.energySinceLastCall_fJ();
    if (hasPending_) {
      const auto i = static_cast<std::size_t>(pending_);
      energy_fJ_[i] += delta;
      ++counts_[i];
    }
    hasPending_ = false;
  }

  static constexpr std::size_t kOpCount = 64;  // > last Bc value.
  power::IntervalPowerIf& power_;
  std::array<double, kOpCount> energy_fJ_{};
  std::array<std::uint64_t, kOpCount> counts_{};
  Bc pending_ = Bc::Nop;
  bool hasPending_ = false;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_BYTECODE_PROFILER_H
