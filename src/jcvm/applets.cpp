#include "jcvm/applets.h"

namespace sct::jcvm::applets {

JcProgram sumLoop() {
  // short sum(short n) { short acc = 0;
  //   while (n != 0) { acc += n; n -= 1; } return acc; }
  ProgramBuilder b;
  b.beginMethod("sum", /*argCount=*/1, /*maxLocals=*/2);
  b.defineLabel("loop");
  b.emitU8(Bc::Sload, 0);
  b.branch(Bc::Ifeq, "done");
  b.emitU8(Bc::Sload, 1);
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Sadd);
  b.emitU8(Bc::Sstore, 1);
  b.sinc(0, -1);
  b.branch(Bc::Goto, "loop");
  b.defineLabel("done");
  b.emitU8(Bc::Sload, 1);
  b.emit(Bc::Sreturn);
  b.endMethod();
  return b.build();
}

JcProgram fibonacci() {
  // short fib(short n) { short a=0,b=1;
  //   while (n != 0) { short t=a+b; a=b; b=t; n-=1; } return a; }
  ProgramBuilder b;
  b.beginMethod("fib", 1, 4);  // locals: n, a, b, t
  b.emitS8(Bc::Bspush, 0);
  b.emitU8(Bc::Sstore, 1);
  b.emitS8(Bc::Bspush, 1);
  b.emitU8(Bc::Sstore, 2);
  b.defineLabel("loop");
  b.emitU8(Bc::Sload, 0);
  b.branch(Bc::Ifeq, "done");
  b.emitU8(Bc::Sload, 1);
  b.emitU8(Bc::Sload, 2);
  b.emit(Bc::Sadd);
  b.emitU8(Bc::Sstore, 3);
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sstore, 1);
  b.emitU8(Bc::Sload, 3);
  b.emitU8(Bc::Sstore, 2);
  b.sinc(0, -1);
  b.branch(Bc::Goto, "loop");
  b.defineLabel("done");
  b.emitU8(Bc::Sload, 1);
  b.emit(Bc::Sreturn);
  b.endMethod();
  return b.build();
}

JcProgram wallet(JcShort initialBalance, JcShort maxBalance) {
  ProgramBuilder b;
  // Field 0: balance, owned by the wallet's context (1).
  const std::uint16_t balance = b.addStaticField(/*context=*/1);

  // Method 0: entry(op, amount) — dispatch to credit/debit, then
  // return the balance. Context 1.
  b.beginMethod("process", 2, 2, /*context=*/1);
  // Initialize the balance (Java Card would do this at install time).
  b.emitS16(Bc::Sspush, initialBalance);
  b.emitU16(Bc::Putstatic, balance);
  b.emitU8(Bc::Sload, 0);
  b.emitS8(Bc::Bspush, 1);
  b.branch(Bc::IfScmpeq, "credit");
  b.emitU8(Bc::Sload, 0);
  b.emitS8(Bc::Bspush, 2);
  b.branch(Bc::IfScmpeq, "debit");
  b.branch(Bc::Goto, "out");
  b.defineLabel("credit");
  b.emitU8(Bc::Sload, 1);
  b.invoke(1, 1);
  b.branch(Bc::Goto, "out");
  b.defineLabel("debit");
  b.emitU8(Bc::Sload, 1);
  b.invoke(2, 1);
  b.defineLabel("out");
  b.emitU16(Bc::Getstatic, balance);
  b.emit(Bc::Sreturn);
  b.endMethod();

  // Method 1: credit(amount) — clamp to the limit.
  b.beginMethod("credit", 1, 1, /*context=*/1);
  b.emitU16(Bc::Getstatic, balance);
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Sadd);
  b.emit(Bc::Dup);
  b.emitS16(Bc::Sspush, maxBalance);
  b.branch(Bc::IfScmple, "ok");
  b.emit(Bc::Pop);
  b.emitS16(Bc::Sspush, maxBalance);
  b.emitU16(Bc::Putstatic, balance);
  b.emit(Bc::Return);
  b.defineLabel("ok");
  b.emitU16(Bc::Putstatic, balance);
  b.emit(Bc::Return);
  b.endMethod();

  // Method 2: debit(amount) — refuse overdraft.
  b.beginMethod("debit", 1, 1, /*context=*/1);
  b.emitU16(Bc::Getstatic, balance);
  b.emitU8(Bc::Sload, 0);
  b.branch(Bc::IfScmplt, "refuse");
  b.emitU16(Bc::Getstatic, balance);
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Ssub);
  b.emitU16(Bc::Putstatic, balance);
  b.defineLabel("refuse");
  b.emit(Bc::Return);
  b.endMethod();
  return b.build();
}

JcProgram arrayChecksum() {
  // short run(short n) { short[] a = new short[n];
  //   for (i=0..n-1) a[i] = i*i;  sum = Σ a[i]; return sum; }
  ProgramBuilder b;
  b.beginMethod("run", 1, 4);  // locals: n, ref, i, sum
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Newarray);
  b.emitU8(Bc::Sstore, 1);
  b.emitS8(Bc::Bspush, 0);
  b.emitU8(Bc::Sstore, 2);
  b.defineLabel("fill");
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 0);
  b.branch(Bc::IfScmpge, "sum_init");
  b.emitU8(Bc::Sload, 1);
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 2);
  b.emit(Bc::Smul);
  b.emit(Bc::Sastore);
  b.sinc(2, 1);
  b.branch(Bc::Goto, "fill");
  b.defineLabel("sum_init");
  b.emitS8(Bc::Bspush, 0);
  b.emitU8(Bc::Sstore, 2);
  b.defineLabel("acc");
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 1);
  b.emit(Bc::Arraylength);
  b.branch(Bc::IfScmpge, "done");
  b.emitU8(Bc::Sload, 3);
  b.emitU8(Bc::Sload, 1);
  b.emitU8(Bc::Sload, 2);
  b.emit(Bc::Saload);
  b.emit(Bc::Sadd);
  b.emitU8(Bc::Sstore, 3);
  b.sinc(2, 1);
  b.branch(Bc::Goto, "acc");
  b.defineLabel("done");
  b.emitU8(Bc::Sload, 3);
  b.emit(Bc::Sreturn);
  b.endMethod();
  return b.build();
}

JcProgram gcd() {
  // short gcd(short a, short b) {
  //   while (b != 0) { short t = b; b = a % b; a = t; } return a; }
  // The subset has no remainder bytecode: a % b = a - (a / b) * b.
  ProgramBuilder b;
  b.beginMethod("gcd", 2, 3);  // locals: a, b, t
  b.defineLabel("loop");
  b.emitU8(Bc::Sload, 1);
  b.branch(Bc::Ifeq, "done");
  b.emitU8(Bc::Sload, 1);
  b.emitU8(Bc::Sstore, 2);      // t = b
  b.emitU8(Bc::Sload, 0);
  b.emitU8(Bc::Sload, 0);
  b.emitU8(Bc::Sload, 1);
  b.emit(Bc::Sdiv);             // a / b
  b.emitU8(Bc::Sload, 1);
  b.emit(Bc::Smul);             // (a / b) * b
  b.emit(Bc::Ssub);             // a - ...
  b.emitU8(Bc::Sstore, 1);      // b = a % b
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sstore, 0);      // a = t
  b.branch(Bc::Goto, "loop");
  b.defineLabel("done");
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Sreturn);
  b.endMethod();
  return b.build();
}

JcProgram bubbleSort() {
  // locals: 0 n, 1 probe, 2 ref, 3 i, 4 j, 5 a, 6 b
  ProgramBuilder b;
  b.beginMethod("sort", 2, 7);
  // ref = new short[n]; fill descending: arr[i] = n - i.
  b.emitU8(Bc::Sload, 0);
  b.emit(Bc::Newarray);
  b.emitU8(Bc::Sstore, 2);
  b.emitS8(Bc::Bspush, 0);
  b.emitU8(Bc::Sstore, 3);
  b.defineLabel("fill");
  b.emitU8(Bc::Sload, 3);
  b.emitU8(Bc::Sload, 0);
  b.branch(Bc::IfScmpge, "sort_outer_init");
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 3);
  b.emitU8(Bc::Sload, 0);
  b.emitU8(Bc::Sload, 3);
  b.emit(Bc::Ssub);
  b.emit(Bc::Sastore);          // arr[i] = n - i
  b.sinc(3, 1);
  b.branch(Bc::Goto, "fill");

  // for (i = 0; i < n-1; ++i) for (j = 0; j < n-1-i; ++j) swap if >
  b.defineLabel("sort_outer_init");
  b.emitS8(Bc::Bspush, 0);
  b.emitU8(Bc::Sstore, 3);
  b.defineLabel("outer");
  b.emitU8(Bc::Sload, 3);
  b.emitU8(Bc::Sload, 0);
  b.emitS8(Bc::Bspush, 1);
  b.emit(Bc::Ssub);
  b.branch(Bc::IfScmpge, "sorted");
  b.emitS8(Bc::Bspush, 0);
  b.emitU8(Bc::Sstore, 4);
  b.defineLabel("inner");
  b.emitU8(Bc::Sload, 4);
  b.emitU8(Bc::Sload, 0);
  b.emitS8(Bc::Bspush, 1);
  b.emit(Bc::Ssub);
  b.emitU8(Bc::Sload, 3);
  b.emit(Bc::Ssub);
  b.branch(Bc::IfScmpge, "inner_done");
  // a = arr[j]; b = arr[j+1]
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 4);
  b.emit(Bc::Saload);
  b.emitU8(Bc::Sstore, 5);
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 4);
  b.emitS8(Bc::Bspush, 1);
  b.emit(Bc::Sadd);
  b.emit(Bc::Saload);
  b.emitU8(Bc::Sstore, 6);
  // if (a > b) swap
  b.emitU8(Bc::Sload, 5);
  b.emitU8(Bc::Sload, 6);
  b.branch(Bc::IfScmple, "no_swap");
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 4);
  b.emitU8(Bc::Sload, 6);
  b.emit(Bc::Sastore);          // arr[j] = b
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 4);
  b.emitS8(Bc::Bspush, 1);
  b.emit(Bc::Sadd);
  b.emitU8(Bc::Sload, 5);
  b.emit(Bc::Sastore);          // arr[j+1] = a
  b.defineLabel("no_swap");
  b.sinc(4, 1);
  b.branch(Bc::Goto, "inner");
  b.defineLabel("inner_done");
  b.sinc(3, 1);
  b.branch(Bc::Goto, "outer");

  b.defineLabel("sorted");
  b.emitU8(Bc::Sload, 2);
  b.emitU8(Bc::Sload, 1);
  b.emit(Bc::Saload);           // arr[probe]
  b.emit(Bc::Sreturn);
  b.endMethod();
  return b.build();
}

JcProgram firewallViolator() {
  ProgramBuilder b;
  const std::uint16_t secret = b.addStaticField(/*context=*/1);
  b.beginMethod("attack", 0, 1, /*context=*/2);
  b.emitU16(Bc::Getstatic, secret);  // Context 2 touching context 1.
  b.emit(Bc::Sreturn);
  b.endMethod();
  return b.build();
}

} // namespace sct::jcvm::applets
