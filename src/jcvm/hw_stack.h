// Hardware operand stack: special-function-register slave.
//
// This is the paper's slave adapter plus hardware stack (Figure 7b):
// bus accesses to the SFR window are translated back into operand-stack
// interface calls on a backend stack model. "Communication is performed
// by using special function register. During HW/SW interface evaluation
// we change the address map, organization of these registers and used
// bus transactions to access them" — the SfrOrganization enum and the
// slave's base address are exactly those exploration dimensions.
#ifndef SCT_JCVM_HW_STACK_H
#define SCT_JCVM_HW_STACK_H

#include <string>

#include "bus/register_slave.h"
#include "jcvm/stack_if.h"

namespace sct::jcvm {

/// Register organizations explored in Section 4.3.
enum class SfrOrganization : std::uint8_t {
  /// Dedicated registers: +0x0 PUSH (W), +0x4 POP (R), +0x8 DEPTH (R),
  /// +0xC CTRL (W: any value resets). Push and pop hit different
  /// addresses, so alternating traffic toggles address bits.
  Separate,
  /// One data register: +0x0 DATA (W = push, R = pop), +0x4 STATUS
  /// (R: depth | error flags), +0x8 CTRL (W: reset). Minimal address
  /// activity for push/pop streams.
  Combined,
  /// Pair transfers: +0x0 PAIR (W = push two shorts, low first;
  /// R = pop two, top in the high half), +0x4 DATA (single-short
  /// fallback), +0x8 STATUS, +0xC CTRL. Halves the transaction count
  /// of stack-intensive bytecode when the master combines operations.
  Packed,
};

/// STATUS register bits (beyond the depth in bits 0..7).
inline constexpr bus::Word kHwStackErrOverflow = 1u << 8;
inline constexpr bus::Word kHwStackErrUnderflow = 1u << 9;

class HwStackSlave final : public bus::RegisterSlave {
 public:
  HwStackSlave(std::string name, const bus::SlaveControl& control,
               SfrOrganization organization, OperandStackIf& backend);

  SfrOrganization organization() const { return organization_; }
  OperandStackIf& backend() { return backend_; }

  bus::Word statusWord();
  bool overflowSeen() const { return overflow_; }
  bool underflowSeen() const { return underflow_; }

  /// -- Checkpoint (see ckpt/checkpoint.h): sticky error flags plus the
  /// RegisterSlave base. The backend stack is its own component.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    RegisterSlave::saveState(w);
    w.b(overflow_);
    w.b(underflow_);
  }
  void loadState(ckpt::StateReader& r) {
    RegisterSlave::loadState(r);
    overflow_ = r.b();
    underflow_ = r.b();
  }

 private:
  void defineSeparate();
  void defineCombined();
  void definePacked();
  bus::Word popShort();
  void pushShort(bus::Word v);

  SfrOrganization organization_;
  OperandStackIf& backend_;
  bool overflow_ = false;
  bool underflow_ = false;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_HW_STACK_H
