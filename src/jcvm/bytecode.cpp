#include "jcvm/bytecode.h"

#include <stdexcept>

namespace sct::jcvm {

std::string_view mnemonic(Bc op) {
  switch (op) {
    case Bc::Nop: return "nop";
    case Bc::Bspush: return "bspush";
    case Bc::Sspush: return "sspush";
    case Bc::Pop: return "pop";
    case Bc::Dup: return "dup";
    case Bc::Swap: return "swap_x";
    case Bc::Sadd: return "sadd";
    case Bc::Ssub: return "ssub";
    case Bc::Smul: return "smul";
    case Bc::Sdiv: return "sdiv";
    case Bc::Sneg: return "sneg";
    case Bc::Sand: return "sand";
    case Bc::Sor: return "sor";
    case Bc::Sxor: return "sxor";
    case Bc::Sshl: return "sshl";
    case Bc::Sshr: return "sshr";
    case Bc::Sload: return "sload";
    case Bc::Sstore: return "sstore";
    case Bc::Sinc: return "sinc";
    case Bc::Goto: return "goto";
    case Bc::Ifeq: return "ifeq";
    case Bc::Ifne: return "ifne";
    case Bc::IfScmpeq: return "if_scmpeq";
    case Bc::IfScmpne: return "if_scmpne";
    case Bc::IfScmplt: return "if_scmplt";
    case Bc::IfScmpge: return "if_scmpge";
    case Bc::IfScmpgt: return "if_scmpgt";
    case Bc::IfScmple: return "if_scmple";
    case Bc::Getstatic: return "getstatic_s";
    case Bc::Putstatic: return "putstatic_s";
    case Bc::Newarray: return "newarray";
    case Bc::Arraylength: return "arraylength";
    case Bc::Saload: return "saload";
    case Bc::Sastore: return "sastore";
    case Bc::Invokestatic: return "invokestatic";
    case Bc::Sreturn: return "sreturn";
    case Bc::Return: return "return";
  }
  return "?";
}

std::uint8_t ProgramBuilder::beginMethod(std::string name,
                                         std::uint8_t argCount,
                                         std::uint8_t maxLocals,
                                         std::uint16_t context) {
  if (inMethod_) {
    throw std::runtime_error("ProgramBuilder: previous method not closed");
  }
  if (maxLocals < argCount) {
    throw std::runtime_error("ProgramBuilder: maxLocals < argCount");
  }
  MethodInfo m;
  m.offset = static_cast<std::uint32_t>(program_.code.size());
  m.argCount = argCount;
  m.maxLocals = maxLocals;
  m.context = context;
  m.name = std::move(name);
  program_.methods.push_back(m);
  inMethod_ = true;
  return static_cast<std::uint8_t>(program_.methods.size() - 1);
}

void ProgramBuilder::endMethod() {
  if (!inMethod_) throw std::runtime_error("ProgramBuilder: no open method");
  inMethod_ = false;
}

void ProgramBuilder::emit(Bc op) {
  program_.code.push_back(static_cast<std::uint8_t>(op));
}

void ProgramBuilder::emitU8(Bc op, std::uint8_t v) {
  emit(op);
  program_.code.push_back(v);
}

void ProgramBuilder::emitS8(Bc op, std::int8_t v) {
  emitU8(op, static_cast<std::uint8_t>(v));
}

void ProgramBuilder::emitU16(Bc op, std::uint16_t v) {
  emit(op);
  program_.code.push_back(static_cast<std::uint8_t>(v >> 8));
  program_.code.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void ProgramBuilder::emitS16(Bc op, std::int16_t v) {
  emitU16(op, static_cast<std::uint16_t>(v));
}

void ProgramBuilder::sinc(std::uint8_t local, std::int8_t delta) {
  emit(Bc::Sinc);
  program_.code.push_back(local);
  program_.code.push_back(static_cast<std::uint8_t>(delta));
}

void ProgramBuilder::invoke(std::uint8_t method, std::uint8_t argCount) {
  emit(Bc::Invokestatic);
  program_.code.push_back(method);
  program_.code.push_back(argCount);
}

void ProgramBuilder::branch(Bc op, const std::string& label) {
  emit(op);
  fixups_.push_back(Fixup{program_.code.size(), label});
  program_.code.push_back(0);
  program_.code.push_back(0);
}

void ProgramBuilder::defineLabel(const std::string& label) {
  labels_.emplace_back(label,
                       static_cast<std::uint32_t>(program_.code.size()));
}

std::uint16_t ProgramBuilder::addStaticField(std::uint16_t context) {
  program_.staticFieldContext.push_back(context);
  return program_.staticFieldCount++;
}

JcProgram ProgramBuilder::build() {
  if (inMethod_) throw std::runtime_error("ProgramBuilder: method not closed");
  for (const Fixup& f : fixups_) {
    bool found = false;
    for (const auto& [name, offset] : labels_) {
      if (name != f.label) continue;
      // Branch offsets are relative to the opcode byte (at - 1).
      const std::int64_t rel =
          static_cast<std::int64_t>(offset) -
          (static_cast<std::int64_t>(f.at) - 1);
      if (rel < -32768 || rel > 32767) {
        throw std::runtime_error("ProgramBuilder: branch out of range");
      }
      const auto v = static_cast<std::uint16_t>(rel & 0xFFFF);
      program_.code[f.at] = static_cast<std::uint8_t>(v >> 8);
      program_.code[f.at + 1] = static_cast<std::uint8_t>(v & 0xFF);
      found = true;
      break;
    }
    if (!found) {
      throw std::runtime_error("ProgramBuilder: undefined label '" +
                               f.label + "'");
    }
  }
  return std::move(program_);
}

} // namespace sct::jcvm
