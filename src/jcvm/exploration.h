// HW/SW interface exploration harness (paper, Section 4.3).
//
// "This evaluation aims to support finding the best HW/SW interface
// between the java card interpreter and the hardware stack." A
// configuration fixes the address map (window base), the SFR
// organization, the transactions used (single vs. pair-combined,
// bus-read vs. shadowed depth) and the slave's wait states; evaluating
// it runs an applet on the refined model — interpreter → master
// adapter → energy-aware layer-1 bus → slave adapter → stack — and
// reports cycles, transactions and estimated energy. The pure
// functional model (Figure 7a) is the zero-cost reference point.
#ifndef SCT_JCVM_EXPLORATION_H
#define SCT_JCVM_EXPLORATION_H

#include <string>
#include <vector>

#include "jcvm/bytecode_profiler.h"
#include "jcvm/hw_stack.h"
#include "jcvm/interpreter.h"
#include "obs/ledger.h"
#include "obs/stats.h"
#include "power/coeff_table.h"

namespace sct::jcvm {

struct InterfaceConfig {
  std::string name;
  bus::Address base = 0x10000800;  ///< Address-map dimension.
  SfrOrganization organization = SfrOrganization::Combined;
  bool shadowDepth = true;  ///< Depth kept in SW vs. STATUS reads.
  unsigned slaveAddrWait = 0;
  unsigned slaveDataWait = 0;
};

struct ExplorationResult {
  std::string config;
  bool ok = false;
  VmError error = VmError::None;
  JcShort result = 0;
  std::uint64_t bytecodes = 0;
  std::uint64_t stackOps = 0;
  std::uint64_t busTransactions = 0;
  std::uint64_t busCycles = 0;
  std::uint64_t bytesOnBus = 0;
  double energy_fJ = 0.0;
  /// Per-configuration observability snapshot: clock warp/park stats,
  /// bus latency histograms, kernel counters, per-bytecode attribution
  /// and the energy split by transaction class. Each worker fills its
  /// own registry (one kernel per task), so snapshots merge across
  /// configurations with obs::merge without any locking.
  obs::Snapshot obsSnapshot;

  double energyPerBytecode_fJ() const {
    return bytecodes == 0 ? 0.0
                          : energy_fJ / static_cast<double>(bytecodes);
  }
};

/// Run `program` against a hardware stack configured per `config`,
/// with layer-1 energy estimation using `table`. When `bytecodeRanking`
/// is non-null it receives the per-bytecode energy attribution, most
/// expensive first.
ExplorationResult evaluateInterface(
    const JcProgram& program, const std::vector<JcShort>& args,
    const InterfaceConfig& config, const power::SignalEnergyTable& table,
    std::vector<BytecodeEnergyProfiler::Entry>* bytecodeRanking = nullptr);

/// Run `program` on the pure functional stack (Figure 7a): no bus, no
/// energy — the refinement baseline.
ExplorationResult evaluateFunctional(const JcProgram& program,
                                     const std::vector<JcShort>& args);

/// Sweep a whole configuration space, one independent simulation per
/// configuration, fanned out over `threads` workers (0 = use
/// sim::ParallelRunner::defaultThreadCount(), 1 = sequential on the
/// caller's thread). Each worker builds its own kernel/clock/bus/model
/// stack; `program` and `table` are shared read-only. Results come back
/// indexed by `space` order, so the output is identical to calling
/// evaluateInterface() in a loop no matter how many threads run.
std::vector<ExplorationResult> evaluateInterfaces(
    const JcProgram& program, const std::vector<JcShort>& args,
    const std::vector<InterfaceConfig>& space,
    const power::SignalEnergyTable& table, unsigned threads = 0);

/// The configuration space swept by the Section 4.3 bench.
std::vector<InterfaceConfig> defaultConfigSpace();

/// Fold every per-configuration snapshot into one aggregate view
/// (counters and histogram buckets sum; see obs::merge).
obs::Snapshot mergeObsSnapshots(const std::vector<ExplorationResult>& results);

} // namespace sct::jcvm

#endif // SCT_JCVM_EXPLORATION_H
