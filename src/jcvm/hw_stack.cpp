#include "jcvm/hw_stack.h"

namespace sct::jcvm {

using bus::Word;

HwStackSlave::HwStackSlave(std::string name,
                           const bus::SlaveControl& control,
                           SfrOrganization organization,
                           OperandStackIf& backend)
    : bus::RegisterSlave(std::move(name), control),
      organization_(organization),
      backend_(backend) {
  switch (organization_) {
    case SfrOrganization::Separate: defineSeparate(); break;
    case SfrOrganization::Combined: defineCombined(); break;
    case SfrOrganization::Packed: definePacked(); break;
  }
}

Word HwStackSlave::statusWord() {
  Word s = backend_.depth() & 0xFFu;
  if (overflow_) s |= kHwStackErrOverflow;
  if (underflow_) s |= kHwStackErrUnderflow;
  return s;
}

void HwStackSlave::pushShort(Word v) {
  if (!backend_.push(static_cast<JcShort>(v & 0xFFFF))) overflow_ = true;
}

Word HwStackSlave::popShort() {
  JcShort v = 0;
  if (!backend_.pop(v)) {
    underflow_ = true;
    return 0;
  }
  return static_cast<Word>(static_cast<std::uint16_t>(v));
}

void HwStackSlave::defineSeparate() {
  defineRegister(0x0, "PUSH", nullptr, [this](Word v) { pushShort(v); });
  defineRegister(0x4, "POP", [this] { return popShort(); }, nullptr);
  defineRegister(0x8, "DEPTH",
                 [this]() -> Word { return backend_.depth(); }, nullptr);
  defineRegister(0xC, "CTRL", nullptr, [this](Word) {
    backend_.reset();
    overflow_ = underflow_ = false;
  });
}

void HwStackSlave::defineCombined() {
  defineRegister(
      0x0, "DATA", [this] { return popShort(); },
      [this](Word v) { pushShort(v); });
  defineRegister(0x4, "STATUS", [this] { return statusWord(); }, nullptr);
  defineRegister(0x8, "CTRL", nullptr, [this](Word) {
    backend_.reset();
    overflow_ = underflow_ = false;
  });
}

void HwStackSlave::definePacked() {
  defineRegister(
      0x0, "PAIR",
      [this]() -> Word {
        // Pop two: the first popped short (the top) rides in the high
        // half so the master can unpack in order.
        const Word top = popShort();
        const Word below = popShort();
        return (top << 16) | below;
      },
      [this](Word v) {
        pushShort(v & 0xFFFF);  // Low short first, high ends on top.
        pushShort(v >> 16);
      });
  defineRegister(
      0x4, "DATA", [this] { return popShort(); },
      [this](Word v) { pushShort(v); });
  defineRegister(0x8, "STATUS", [this] { return statusWord(); }, nullptr);
  defineRegister(0xC, "CTRL", nullptr, [this](Word) {
    backend_.reset();
    overflow_ = underflow_ = false;
  });
}

} // namespace sct::jcvm
