#include "jcvm/interpreter.h"

namespace sct::jcvm {

Interpreter::Interpreter(const JcProgram& program, OperandStackIf& stack,
                         MemoryManager& memory, Firewall& firewall,
                         std::size_t maxCallDepth)
    : program_(program),
      stack_(stack),
      memory_(memory),
      firewall_(firewall),
      maxCallDepth_(maxCallDepth) {}

bool Interpreter::fail(VmError e) {
  error_ = e;
  finished_ = true;
  return false;
}

bool Interpreter::push(JcShort v) {
  ++stats_.stackOps;
  if (!stack_.push(v)) return fail(VmError::StackOverflow);
  return true;
}

bool Interpreter::pop(JcShort& v) {
  ++stats_.stackOps;
  if (!stack_.pop(v)) return fail(VmError::StackUnderflow);
  return true;
}

std::uint8_t Interpreter::fetchU8() {
  return program_.code[frames_.back().pc++];
}

std::uint16_t Interpreter::fetchU16() {
  const std::uint16_t hi = fetchU8();
  const std::uint16_t lo = fetchU8();
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

ContextId Interpreter::currentContext() const {
  return program_.methods[frames_.back().method].context;
}

bool Interpreter::run(const std::vector<JcShort>& args,
                      std::uint64_t maxSteps) {
  if (program_.methods.empty()) return false;
  frames_.clear();
  error_ = VmError::None;
  finished_ = false;
  stats_ = VmStats{};
  result_ = 0;
  stack_.reset();

  const MethodInfo& entry = program_.methods[0];
  Frame f;
  f.method = 0;
  f.pc = entry.offset;
  f.locals.assign(entry.maxLocals, 0);
  for (std::size_t i = 0; i < args.size() && i < f.locals.size(); ++i) {
    f.locals[i] = args[i];
  }
  frames_.push_back(std::move(f));

  std::uint64_t steps = 0;
  while (!finished_) {
    if (++steps > maxSteps) {
      fail(VmError::StepLimitExceeded);
      break;
    }
    if (!step() && error_ != VmError::None) break;
  }
  if (observer_ != nullptr) observer_->onRunEnd();
  return error_ == VmError::None;
}

bool Interpreter::step() {
  Frame& frame = frames_.back();
  if (frame.pc >= program_.code.size()) {
    return fail(VmError::InvalidBytecode);
  }
  const Bc op = static_cast<Bc>(fetchU8());
  ++stats_.bytecodesExecuted;
  if (observer_ != nullptr) observer_->onBytecode(op, frame.pc - 1);

  auto binary = [&](auto fn) -> bool {
    JcShort b = 0;
    JcShort a = 0;
    if (!pop(b) || !pop(a)) return false;
    return push(static_cast<JcShort>(fn(a, b)));
  };
  auto compareBranch = [&](auto fn) -> bool {
    const auto offsetBase = frame.pc - 1;  // Opcode byte.
    const auto rel = static_cast<std::int16_t>(fetchU16());
    JcShort b = 0;
    JcShort a = 0;
    if (!pop(b) || !pop(a)) return false;
    if (fn(a, b)) {
      frame.pc = static_cast<std::uint32_t>(offsetBase + rel);
      ++stats_.branchesTaken;
    }
    return true;
  };
  auto zeroBranch = [&](auto fn) -> bool {
    const auto offsetBase = frame.pc - 1;
    const auto rel = static_cast<std::int16_t>(fetchU16());
    JcShort v = 0;
    if (!pop(v)) return false;
    if (fn(v)) {
      frame.pc = static_cast<std::uint32_t>(offsetBase + rel);
      ++stats_.branchesTaken;
    }
    return true;
  };

  switch (op) {
    case Bc::Nop:
      return true;
    case Bc::Bspush:
      return push(static_cast<JcShort>(static_cast<std::int8_t>(fetchU8())));
    case Bc::Sspush:
      return push(static_cast<JcShort>(fetchU16()));
    case Bc::Pop: {
      JcShort v = 0;
      return pop(v);
    }
    case Bc::Dup: {
      JcShort v = 0;
      if (!pop(v)) return false;
      return push(v) && push(v);
    }
    case Bc::Swap: {
      JcShort a = 0;
      JcShort b = 0;
      if (!pop(b) || !pop(a)) return false;
      return push(b) && push(a);
    }
    case Bc::Sadd:
      return binary([](int a, int b) { return a + b; });
    case Bc::Ssub:
      return binary([](int a, int b) { return a - b; });
    case Bc::Smul:
      return binary([](int a, int b) { return a * b; });
    case Bc::Sdiv: {
      JcShort b = 0;
      JcShort a = 0;
      if (!pop(b) || !pop(a)) return false;
      if (b == 0) return fail(VmError::ArithmeticError);
      return push(static_cast<JcShort>(a / b));
    }
    case Bc::Sneg: {
      JcShort v = 0;
      if (!pop(v)) return false;
      return push(static_cast<JcShort>(-v));
    }
    case Bc::Sand:
      return binary([](int a, int b) { return a & b; });
    case Bc::Sor:
      return binary([](int a, int b) { return a | b; });
    case Bc::Sxor:
      return binary([](int a, int b) { return a ^ b; });
    case Bc::Sshl:
      return binary([](int a, int b) { return a << (b & 15); });
    case Bc::Sshr:
      return binary([](int a, int b) { return a >> (b & 15); });
    case Bc::Sload: {
      const std::uint8_t idx = fetchU8();
      if (idx >= frame.locals.size()) return fail(VmError::BadLocalIndex);
      return push(frame.locals[idx]);
    }
    case Bc::Sstore: {
      const std::uint8_t idx = fetchU8();
      if (idx >= frame.locals.size()) return fail(VmError::BadLocalIndex);
      JcShort v = 0;
      if (!pop(v)) return false;
      frame.locals[idx] = v;
      return true;
    }
    case Bc::Sinc: {
      const std::uint8_t idx = fetchU8();
      const auto delta = static_cast<std::int8_t>(fetchU8());
      if (idx >= frame.locals.size()) return fail(VmError::BadLocalIndex);
      frame.locals[idx] = static_cast<JcShort>(frame.locals[idx] + delta);
      return true;
    }
    case Bc::Goto: {
      const auto offsetBase = frame.pc - 1;
      const auto rel = static_cast<std::int16_t>(fetchU16());
      frame.pc = static_cast<std::uint32_t>(offsetBase + rel);
      ++stats_.branchesTaken;
      return true;
    }
    case Bc::Ifeq:
      return zeroBranch([](JcShort v) { return v == 0; });
    case Bc::Ifne:
      return zeroBranch([](JcShort v) { return v != 0; });
    case Bc::IfScmpeq:
      return compareBranch([](JcShort a, JcShort b) { return a == b; });
    case Bc::IfScmpne:
      return compareBranch([](JcShort a, JcShort b) { return a != b; });
    case Bc::IfScmplt:
      return compareBranch([](JcShort a, JcShort b) { return a < b; });
    case Bc::IfScmpge:
      return compareBranch([](JcShort a, JcShort b) { return a >= b; });
    case Bc::IfScmpgt:
      return compareBranch([](JcShort a, JcShort b) { return a > b; });
    case Bc::IfScmple:
      return compareBranch([](JcShort a, JcShort b) { return a <= b; });
    case Bc::Getstatic: {
      const std::uint16_t idx = fetchU16();
      const bool allowed =
          firewall_.allows(currentContext(), program_.fieldContext(idx));
      firewall_.recordCheck(allowed);
      if (!allowed) return fail(VmError::FirewallViolation);
      JcShort v = 0;
      if (!memory_.readStatic(idx, v)) return fail(VmError::BadFieldIndex);
      return push(v);
    }
    case Bc::Putstatic: {
      const std::uint16_t idx = fetchU16();
      const bool allowed =
          firewall_.allows(currentContext(), program_.fieldContext(idx));
      firewall_.recordCheck(allowed);
      if (!allowed) return fail(VmError::FirewallViolation);
      JcShort v = 0;
      if (!pop(v)) return false;
      if (!memory_.writeStatic(idx, v)) return fail(VmError::BadFieldIndex);
      return true;
    }
    case Bc::Newarray: {
      JcShort len = 0;
      if (!pop(len)) return false;
      if (len <= 0) return fail(VmError::NullOrBadArray);
      const ArrayRef ref = memory_.allocArray(
          static_cast<std::uint16_t>(len), currentContext());
      if (ref == 0) return fail(VmError::NullOrBadArray);
      return push(static_cast<JcShort>(ref));
    }
    case Bc::Arraylength: {
      JcShort ref = 0;
      if (!pop(ref)) return false;
      std::uint16_t len = 0;
      if (!memory_.arrayLength(static_cast<ArrayRef>(ref), len)) {
        return fail(VmError::NullOrBadArray);
      }
      return push(static_cast<JcShort>(len));
    }
    case Bc::Saload: {
      JcShort idx = 0;
      JcShort ref = 0;
      if (!pop(idx) || !pop(ref)) return false;
      const auto aref = static_cast<ArrayRef>(ref);
      const bool allowed =
          firewall_.allows(currentContext(), memory_.arrayOwner(aref));
      firewall_.recordCheck(allowed);
      if (!allowed) return fail(VmError::FirewallViolation);
      if (idx < 0) return fail(VmError::ArrayIndexOutOfBounds);
      JcShort v = 0;
      if (!memory_.readArray(aref, static_cast<std::uint16_t>(idx), v)) {
        std::uint16_t len = 0;
        return fail(memory_.arrayLength(aref, len)
                        ? VmError::ArrayIndexOutOfBounds
                        : VmError::NullOrBadArray);
      }
      return push(v);
    }
    case Bc::Sastore: {
      JcShort value = 0;
      JcShort idx = 0;
      JcShort ref = 0;
      if (!pop(value) || !pop(idx) || !pop(ref)) return false;
      const auto aref = static_cast<ArrayRef>(ref);
      const bool allowed =
          firewall_.allows(currentContext(), memory_.arrayOwner(aref));
      firewall_.recordCheck(allowed);
      if (!allowed) return fail(VmError::FirewallViolation);
      if (idx < 0) return fail(VmError::ArrayIndexOutOfBounds);
      if (!memory_.writeArray(aref, static_cast<std::uint16_t>(idx),
                              value)) {
        std::uint16_t len = 0;
        return fail(memory_.arrayLength(aref, len)
                        ? VmError::ArrayIndexOutOfBounds
                        : VmError::NullOrBadArray);
      }
      return true;
    }
    case Bc::Invokestatic: {
      const std::uint8_t methodIdx = fetchU8();
      const std::uint8_t argCount = fetchU8();
      if (methodIdx >= program_.methods.size()) {
        return fail(VmError::InvalidBytecode);
      }
      if (frames_.size() >= maxCallDepth_) {
        return fail(VmError::CallDepthExceeded);
      }
      const MethodInfo& callee = program_.methods[methodIdx];
      Frame next;
      next.method = methodIdx;
      next.pc = callee.offset;
      next.locals.assign(callee.maxLocals, 0);
      // Arguments are popped right-to-left into the first locals.
      for (unsigned i = argCount; i-- > 0;) {
        JcShort v = 0;
        if (!pop(v)) return false;
        if (i < next.locals.size()) next.locals[i] = v;
      }
      frames_.push_back(std::move(next));
      ++stats_.invocations;
      return true;
    }
    case Bc::Sreturn: {
      JcShort v = 0;
      if (!pop(v)) return false;
      frames_.pop_back();
      if (frames_.empty()) {
        result_ = v;
        finished_ = true;
        return true;
      }
      return push(v);
    }
    case Bc::Return: {
      frames_.pop_back();
      if (frames_.empty()) {
        finished_ = true;
        return true;
      }
      return true;
    }
  }
  return fail(VmError::InvalidBytecode);
}

} // namespace sct::jcvm
