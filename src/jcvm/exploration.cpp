#include "jcvm/exploration.h"

#include "bus/tl1_bus.h"
#include "jcvm/master_adapter.h"
#include "power/tl1_power_model.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/parallel_runner.h"

namespace sct::jcvm {

ExplorationResult evaluateInterface(
    const JcProgram& program, const std::vector<JcShort>& args,
    const InterfaceConfig& config, const power::SignalEnergyTable& table,
    std::vector<BytecodeEnergyProfiler::Entry>* bytecodeRanking) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 30'000);
  bus::Tl1Bus ecbus(clock, "ecbus");
  power::Tl1PowerModel pm(table);
  ecbus.addObserver(pm);

  bus::SlaveControl ctl;
  ctl.base = config.base;
  ctl.size = 0x100;
  ctl.addrWait = config.slaveAddrWait;
  ctl.readWait = config.slaveDataWait;
  ctl.writeWait = config.slaveDataWait;
  ctl.canExec = false;

  FunctionalStack backend(256);
  HwStackSlave hwStack("hwstack", ctl, config.organization, backend);
  ecbus.attach(hwStack);

  HwStackMasterAdapter::Config mc;
  mc.base = config.base;
  mc.organization = config.organization;
  mc.shadowDepth = config.shadowDepth;
  HwStackMasterAdapter adapter(clock, ecbus, mc);

  MemoryManager memory(program.staticFieldCount);
  Firewall firewall;
  Interpreter vm(program, adapter, memory, firewall);
  BytecodeEnergyProfiler profiler(pm);
  if (bytecodeRanking != nullptr) vm.setObserver(&profiler);

  ExplorationResult r;
  r.config = config.name;
  r.ok = vm.run(args);
  r.error = vm.error();
  r.result = vm.result();
  r.bytecodes = vm.stats().bytecodesExecuted;
  r.stackOps = vm.stats().stackOps;
  r.busTransactions = adapter.transport().busTransactions;
  r.busCycles = clock.cycle();
  r.bytesOnBus = adapter.transport().bytesOnBus;
  r.energy_fJ = pm.totalEnergy_fJ();
  if (bytecodeRanking != nullptr) *bytecodeRanking = profiler.ranking();
  return r;
}

ExplorationResult evaluateFunctional(const JcProgram& program,
                                     const std::vector<JcShort>& args) {
  FunctionalStack stack(256);
  MemoryManager memory(program.staticFieldCount);
  Firewall firewall;
  Interpreter vm(program, stack, memory, firewall);

  ExplorationResult r;
  r.config = "functional";
  r.ok = vm.run(args);
  r.error = vm.error();
  r.result = vm.result();
  r.bytecodes = vm.stats().bytecodesExecuted;
  r.stackOps = vm.stats().stackOps;
  return r;
}

std::vector<ExplorationResult> evaluateInterfaces(
    const JcProgram& program, const std::vector<JcShort>& args,
    const std::vector<InterfaceConfig>& space,
    const power::SignalEnergyTable& table, unsigned threads) {
  std::vector<ExplorationResult> results(space.size());
  sim::ParallelRunner::runIndexed(
      space.size(), threads, [&](std::size_t i) {
        results[i] = evaluateInterface(program, args, space[i], table);
      });
  return results;
}

std::vector<InterfaceConfig> defaultConfigSpace() {
  std::vector<InterfaceConfig> space;
  {
    InterfaceConfig c;
    c.name = "separate_regs";
    c.organization = SfrOrganization::Separate;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_reg";
    c.organization = SfrOrganization::Combined;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "packed_pairs";
    c.organization = SfrOrganization::Packed;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_status_poll";
    c.organization = SfrOrganization::Combined;
    c.shadowDepth = false;  // Depth queries go over the bus.
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_slow_slave";
    c.organization = SfrOrganization::Combined;
    c.slaveDataWait = 2;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_high_addr";
    c.organization = SfrOrganization::Combined;
    c.base = 0xF0000800;  // Address-map choice with heavy bit weight.
    space.push_back(c);
  }
  return space;
}

} // namespace sct::jcvm
