#include "jcvm/exploration.h"

#include "bus/tl1_bus.h"
#include "jcvm/master_adapter.h"
#include "power/tl1_power_model.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/parallel_runner.h"

namespace sct::jcvm {

ExplorationResult evaluateInterface(
    const JcProgram& program, const std::vector<JcShort>& args,
    const InterfaceConfig& config, const power::SignalEnergyTable& table,
    std::vector<BytecodeEnergyProfiler::Entry>* bytecodeRanking) {
  sim::Kernel kernel;
  sim::Clock clock(kernel, "clk", 30'000);
  bus::Tl1Bus ecbus(clock, "ecbus");
  power::Tl1PowerModel pm(table);
  ecbus.addObserver(pm);

  // Per-run observability: every worker owns its registry/ledger (one
  // kernel per task), so the sweep needs no locking and the snapshots
  // merge afterwards.
  obs::StatsRegistry reg;
  obs::EnergyLedger ledger;
  clock.attachObs(reg);
  ecbus.attachObs(reg);
  pm.attachLedger(ledger);

  bus::SlaveControl ctl;
  ctl.base = config.base;
  ctl.size = 0x100;
  ctl.addrWait = config.slaveAddrWait;
  ctl.readWait = config.slaveDataWait;
  ctl.writeWait = config.slaveDataWait;
  ctl.canExec = false;

  FunctionalStack backend(256);
  HwStackSlave hwStack("hwstack", ctl, config.organization, backend);
  ecbus.attach(hwStack);

  HwStackMasterAdapter::Config mc;
  mc.base = config.base;
  mc.organization = config.organization;
  mc.shadowDepth = config.shadowDepth;
  HwStackMasterAdapter adapter(clock, ecbus, mc);

  MemoryManager memory(program.staticFieldCount);
  Firewall firewall;
  Interpreter vm(program, adapter, memory, firewall);
  BytecodeEnergyProfiler profiler(pm);
  if (bytecodeRanking != nullptr) vm.setObserver(&profiler);

  ExplorationResult r;
  r.config = config.name;
  r.ok = vm.run(args);
  r.error = vm.error();
  r.result = vm.result();
  r.bytecodes = vm.stats().bytecodesExecuted;
  r.stackOps = vm.stats().stackOps;
  r.busTransactions = adapter.transport().busTransactions;
  r.busCycles = clock.cycle();
  r.bytesOnBus = adapter.transport().bytesOnBus;
  r.energy_fJ = pm.totalEnergy_fJ();
  if (bytecodeRanking != nullptr) *bytecodeRanking = profiler.ranking();

  kernel.publishObs(reg);
  if (bytecodeRanking != nullptr) profiler.publishTo(reg);
  reg.gauge("energy.total_fJ").set(ledger.total_fJ());
  for (std::size_t c = 0; c < obs::kTxClassCount; ++c) {
    const auto cls = static_cast<obs::TxClass>(c);
    reg.gauge(std::string("energy.by_class_fJ.") + obs::txClassName(cls))
        .set(ledger.byClass_fJ(cls));
  }
  r.obsSnapshot = reg.snapshot();
  return r;
}

ExplorationResult evaluateFunctional(const JcProgram& program,
                                     const std::vector<JcShort>& args) {
  FunctionalStack stack(256);
  MemoryManager memory(program.staticFieldCount);
  Firewall firewall;
  Interpreter vm(program, stack, memory, firewall);

  ExplorationResult r;
  r.config = "functional";
  r.ok = vm.run(args);
  r.error = vm.error();
  r.result = vm.result();
  r.bytecodes = vm.stats().bytecodesExecuted;
  r.stackOps = vm.stats().stackOps;
  return r;
}

std::vector<ExplorationResult> evaluateInterfaces(
    const JcProgram& program, const std::vector<JcShort>& args,
    const std::vector<InterfaceConfig>& space,
    const power::SignalEnergyTable& table, unsigned threads) {
  std::vector<ExplorationResult> results(space.size());
  sim::ParallelRunner::runIndexed(
      space.size(), threads, [&](std::size_t i) {
        results[i] = evaluateInterface(program, args, space[i], table);
      });
  return results;
}

obs::Snapshot mergeObsSnapshots(
    const std::vector<ExplorationResult>& results) {
  obs::Snapshot all;
  for (const ExplorationResult& r : results) obs::merge(all, r.obsSnapshot);
  return all;
}

std::vector<InterfaceConfig> defaultConfigSpace() {
  std::vector<InterfaceConfig> space;
  {
    InterfaceConfig c;
    c.name = "separate_regs";
    c.organization = SfrOrganization::Separate;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_reg";
    c.organization = SfrOrganization::Combined;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "packed_pairs";
    c.organization = SfrOrganization::Packed;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_status_poll";
    c.organization = SfrOrganization::Combined;
    c.shadowDepth = false;  // Depth queries go over the bus.
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_slow_slave";
    c.organization = SfrOrganization::Combined;
    c.slaveDataWait = 2;
    space.push_back(c);
  }
  {
    InterfaceConfig c;
    c.name = "combined_high_addr";
    c.organization = SfrOrganization::Combined;
    c.base = 0xF0000800;  // Address-map choice with heavy bit weight.
    space.push_back(c);
  }
  return space;
}

} // namespace sct::jcvm
