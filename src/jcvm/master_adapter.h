// Master adapter: operand-stack calls → EC bus transactions.
//
// The communication-refinement half on the interpreter's side (Figure
// 7b): "The master adapter translates them into bus transactions."
// The interpreter stays functional and un-timed; every stack interface
// call the adapter receives becomes one (or, with pair combining, half
// a) bus transaction, driven to completion by advancing the system
// clock — which is where simulated time and energy accrue.
#ifndef SCT_JCVM_MASTER_ADAPTER_H
#define SCT_JCVM_MASTER_ADAPTER_H

#include <cstdint>
#include <optional>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "jcvm/hw_stack.h"
#include "jcvm/stack_if.h"
#include "sim/clock.h"

namespace sct::jcvm {

struct TransportStats {
  std::uint64_t busTransactions = 0;
  std::uint64_t busCycles = 0;   ///< Clock cycles spent in transport.
  std::uint64_t bytesOnBus = 0;
  std::uint64_t busErrors = 0;
};

class HwStackMasterAdapter final : public OperandStackIf {
 public:
  struct Config {
    bus::Address base = 0;  ///< Base address of the HW stack window.
    SfrOrganization organization = SfrOrganization::Combined;
    /// Track the stack depth in the adapter instead of reading the
    /// DEPTH/STATUS register over the bus (cuts one transaction per
    /// depth query).
    bool shadowDepth = true;
    /// Capacity used for local overflow checks when shadowDepth is on.
    std::uint16_t capacity = 256;
  };

  HwStackMasterAdapter(sim::Clock& clock, bus::EcDataIf& dataIf,
                       const Config& config);

  // OperandStackIf — each call may issue bus transactions.
  bool push(JcShort value) override;
  bool pop(JcShort& out) override;
  std::uint16_t depth() override;
  void reset() override;
  const StackStats& stats() const override { return stackStats_; }

  const TransportStats& transport() const { return transportStats_; }
  const Config& config() const { return config_; }

 private:
  bus::Word busRead(bus::Address offset, bool& ok);
  void busWrite(bus::Address offset, bus::Word value, bool& ok);
  bus::BusStatus transfer(bus::Tl1Request& req);
  bool flushHeld();  ///< Packed mode: spill locally held shorts.

  sim::Clock& clock_;
  bus::EcDataIf& dataIf_;
  Config config_;
  std::uint16_t hwDepth_ = 0;  ///< Shadow of the backend depth.
  /// Packed mode: the top-of-stack register held in the adapter.
  std::optional<JcShort> heldHigh_;
  StackStats stackStats_;
  TransportStats transportStats_;
};

} // namespace sct::jcvm

#endif // SCT_JCVM_MASTER_ADAPTER_H
