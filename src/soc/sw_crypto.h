// Software implementation of the crypto coprocessor's cipher, in MIPS
// assembly, running on the simulated core.
//
// The paper's introduction motivates dedicated coprocessors:
// "Algorithms with high computational effort, like cryptographic
// algorithms, are often supported by dedicated coprocessors." This
// module provides the software side of that trade-off — the same
// 16-round Feistel cipher as soc::CryptoCoprocessor, executed
// instruction by instruction — so benches can quantify the cycle and
// energy gap that justifies the hardware engine and its HW/SW
// interface.
#ifndef SCT_SOC_SW_CRYPTO_H
#define SCT_SOC_SW_CRYPTO_H

#include <array>
#include <cstdint>

#include "soc/assembler.h"

namespace sct::soc {

/// Assemble a program that encrypts `blocks` consecutive 64-bit blocks
/// in software. The key is loaded from the four words at RAM offset
/// 0x000 (kRamBase), plaintext blocks start at RAM offset 0x020, and
/// ciphertext is written back in place. The program halts with BREAK.
/// The caller pokes key/plaintext into RAM before running and verifies
/// against CryptoCoprocessor::encryptBlock.
AssembledProgram swEncryptProgram(unsigned blocks);

} // namespace sct::soc

#endif // SCT_SOC_SW_CRYPTO_H
