#include "soc/apdu.h"

namespace sct::soc::apdu {

std::vector<std::uint8_t> Command::encode() const {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(5 + data.size());
  bytes.push_back(cla);
  bytes.push_back(ins);
  bytes.push_back(p1);
  bytes.push_back(p2);
  bytes.push_back(static_cast<std::uint8_t>(data.size()));
  bytes.insert(bytes.end(), data.begin(), data.end());
  return bytes;
}

AssembledProgram cardApplet(const std::uint8_t pin[4]) {
  return cardApplet(pin, std::string_view{});
}

AssembledProgram cardApplet(const std::uint8_t pin[4],
                            std::string_view bootPrelude) {
  // Register plan: $s0 UART, $s1 TRNG, $s2 crypto, $s4 verified flag,
  // $s5 CLA, $s6 INS, $s7 LC. Subroutines getc/putc/put2 are leaves.
  // The boot prelude (possibly empty) runs after the SFR bases are in
  // $s0..$s2 and before the command loop is entered.
  std::string src = R"(
    li   $s0, 0x10000200
    li   $s1, 0x10000300
    li   $s2, 0x10000400
)";
  src += bootPrelude;
  src += R"(
    addiu $s4, $zero, 0      # PIN not verified

  session:
    jal  getc
    move $s5, $v0            # CLA
    jal  getc
    move $s6, $v0            # INS
    jal  getc                # P1 (ignored)
    jal  getc                # P2 (ignored)
    jal  getc
    move $s7, $v0            # LC
    li   $t8, 0x08000000     # data buffer
    move $t9, $s7
  rdloop:
    beqz $t9, rddone
    jal  getc
    sb   $v0, 0($t8)
    addiu $t8, $t8, 1
    addiu $t9, $t9, -1
    b    rdloop
  rddone:
    addiu $t0, $zero, 0xFF
    beq  $s5, $t0, endsession
    addiu $t0, $zero, 0x20
    beq  $s6, $t0, ins_verify
    addiu $t0, $zero, 0x84
    beq  $s6, $t0, ins_challenge
    addiu $t0, $zero, 0x88
    beq  $s6, $t0, ins_auth
    addiu $a0, $zero, 0x6D   # SW 6D00: INS not supported
    addiu $a1, $zero, 0x00
    jal  put2
    b    session

  ins_verify:
    la   $t2, pin
    li   $t3, 0x08000000
    addiu $t4, $zero, 4
  vloop:
    lbu  $t5, 0($t2)
    lbu  $t6, 0($t3)
    bne  $t5, $t6, vfail
    addiu $t2, $t2, 1
    addiu $t3, $t3, 1
    addiu $t4, $t4, -1
    bnez $t4, vloop
    addiu $s4, $zero, 1
    addiu $a0, $zero, 0x90
    addiu $a1, $zero, 0x00
    jal  put2
    b    session
  vfail:
    addiu $s4, $zero, 0
    addiu $a0, $zero, 0x63
    addiu $a1, $zero, 0xC0
    jal  put2
    b    session

  ins_challenge:
    lw   $t2, 0($s1)         # TRNG word
    addiu $t3, $zero, 4
  chloop:
    andi $a0, $t2, 0xFF
    jal  putc
    srl  $t2, $t2, 8
    addiu $t3, $t3, -1
    bnez $t3, chloop
    addiu $a0, $zero, 0x90
    addiu $a1, $zero, 0x00
    jal  put2
    b    session

  ins_auth:
    bnez $s4, auth_ok
    addiu $a0, $zero, 0x69   # SW 6982: security status not satisfied
    addiu $a1, $zero, 0x82
    jal  put2
    b    session
  auth_ok:
    la   $t2, authkey        # load the 128-bit key from ROM
    addiu $t3, $zero, 0
  kloop:
    lw   $t4, 0($t2)
    addu $t5, $s2, $t3
    sw   $t4, 0($t5)         # KEY[i]
    addiu $t2, $t2, 4
    addiu $t3, $t3, 4
    addiu $t6, $zero, 16
    bne  $t3, $t6, kloop
    li   $t2, 0x08000000
    lw   $t3, 0($t2)
    sw   $t3, 0x10($s2)      # DATA0 = challenge bytes 0..3
    lw   $t3, 4($t2)
    sw   $t3, 0x14($s2)      # DATA1 = challenge bytes 4..7
    addiu $t3, $zero, 1
    sw   $t3, 0x18($s2)      # CTRL = encrypt
  abusy:
    lw   $t3, 0x1C($s2)
    bnez $t3, abusy
    lw   $t2, 0x10($s2)      # cryptogram word 0
    addiu $t3, $zero, 4
  aout0:
    andi $a0, $t2, 0xFF
    jal  putc
    srl  $t2, $t2, 8
    addiu $t3, $t3, -1
    bnez $t3, aout0
    lw   $t2, 0x14($s2)      # cryptogram word 1
    addiu $t3, $zero, 4
  aout1:
    andi $a0, $t2, 0xFF
    jal  putc
    srl  $t2, $t2, 8
    addiu $t3, $t3, -1
    bnez $t3, aout1
    addiu $a0, $zero, 0x90
    addiu $a1, $zero, 0x00
    jal  put2
    b    session

  endsession:
    addiu $a0, $zero, 0x90
    addiu $a1, $zero, 0x00
    jal  put2
    break

    # --- leaf subroutines ------------------------------------------
  getc:
    lw   $t0, 4($s0)
    andi $t0, $t0, 2
    beqz $t0, getc
    lw   $v0, 0($s0)
    andi $v0, $v0, 0xFF
    jr   $ra
  putc:
    lw   $t0, 4($s0)
    andi $t0, $t0, 1
    beqz $t0, putc
    sw   $a0, 0($s0)
    jr   $ra
  put2:
    lw   $t0, 4($s0)
    andi $t0, $t0, 1
    beqz $t0, put2
    sw   $a0, 0($s0)
  put2b:
    lw   $t0, 4($s0)
    andi $t0, $t0, 1
    beqz $t0, put2b
    sw   $a1, 0($s0)
    jr   $ra

    # --- constants --------------------------------------------------
  pin: .byte )";
  for (int i = 0; i < 4; ++i) {
    src += std::to_string(pin[i]);
    src += (i < 3 ? ", " : "\n");
  }
  src += "  authkey:\n";
  for (std::uint32_t w : kAuthKey) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "    .word 0x%08X\n", w);
    src += buf;
  }
  return assemble(src, memmap::kRomBase);
}

} // namespace sct::soc::apdu
