#include "soc/cpu.h"

namespace sct::soc {

using bus::AccessSize;
using bus::Address;
using bus::BusStatus;
using bus::Kind;
using bus::Word;

MipsCore::MipsCore(sim::Clock& clock, std::string name,
                   bus::EcInstrIf& instrIf, bus::EcDataIf& dataIf,
                   const CpuConfig& config)
    : sim::Module(clock.kernel(), std::move(name)),
      clock_(clock),
      instrIf_(instrIf),
      dataIf_(dataIf),
      config_(config),
      icache_(config.icacheBytes, config.lineBytes),
      dcache_(config.dcacheBytes, config.lineBytes),
      blocks_(config.icacheBytes / config.lineBytes, config.lineBytes) {
  handlerId_ = clock_.onRisingRaw(
      [](void* self) { static_cast<MipsCore*>(self)->onRisingEdge(); }, this);
  reset(config.resetPc);
}

MipsCore::~MipsCore() { clock_.removeHandler(handlerId_); }

void MipsCore::reset(Address pc) {
  regs_.fill(0);
  hi_ = 0;
  lo_ = 0;
  pc_ = pc;
  epc_ = 0;
  inIsr_ = false;
  interruptsTaken_ = 0;
  state_ = State::Running;
  haltPending_ = false;
  faulted_ = false;
  icache_.invalidateAll();
  dcache_.invalidateAll();
  blocks_.flush();
  curBlock_ = nullptr;
  curIdx_ = 0;
  ifetchSubmitted_ = false;
  loadSubmitted_ = false;
  storeActive_.fill(false);
  storeBusy_ = 0;
  stats_ = CpuStats{};
}

void MipsCore::halt(bool fault) {
  state_ = State::Halted;
  faulted_ = fault;
}

// ---------------------------------------------------------------------------
// Per-cycle behaviour
// ---------------------------------------------------------------------------

void MipsCore::onRisingEdge() {
  if (state_ == State::Halted && storeBusy_ == 0) return;
  ++stats_.cycles;
  pollStores();

  switch (state_) {
    case State::Halted:
      return;  // Draining the store buffer.
    case State::WaitIFetch: {
      ++stats_.ifetchStallCycles;
      if (!ifetchSubmitted_) {
        const BusStatus s = instrIf_.fetch(ifetchReq_);
        if (s == BusStatus::Request) ifetchSubmitted_ = true;
        if (s == BusStatus::Error) halt(true);
        return;
      }
      const BusStatus s = instrIf_.fetch(ifetchReq_);
      if (s == BusStatus::Ok) {
        ifetchSubmitted_ = false;
        icache_.fillLine(ifetchReq_.address, ifetchReq_.data.data());
        // The refill may have evicted another tag from this line: any
        // block decoded from the old content is stale now.
        blocks_.noteLineFilled(icache_.lineIndex(ifetchReq_.address));
        state_ = State::Running;
      } else if (s == BusStatus::Error) {
        ifetchSubmitted_ = false;
        halt(true);
      }
      return;
    }
    case State::WaitLoad: {
      ++stats_.loadStallCycles;
      if (!loadSubmitted_) {
        const BusStatus s = dataIf_.read(loadReq_);
        if (s == BusStatus::Request) loadSubmitted_ = true;
        if (s == BusStatus::Error) halt(true);
        return;
      }
      const BusStatus s = dataIf_.read(loadReq_);
      if (s == BusStatus::Ok) {
        loadSubmitted_ = false;
        finishLoad();
        state_ = State::Running;
      } else if (s == BusStatus::Error) {
        loadSubmitted_ = false;
        halt(true);
      }
      return;
    }
    case State::WaitStoreSlot: {
      ++stats_.storeStallCycles;
      if (startStore(pendingStore_, pendingStoreAddr_)) {
        state_ = State::Running;
      }
      return;
    }
    case State::Running:
      if (haltPending_) {
        halt(false);
        return;
      }
      executeOne();
      return;
  }
}

void MipsCore::pollStores() {
  if (storeBusy_ == 0) return;
  for (std::size_t i = 0; i < storeReqs_.size(); ++i) {
    if (!storeActive_[i]) continue;
    const BusStatus s = dataIf_.write(storeReqs_[i]);
    if (s == BusStatus::Ok) {
      storeActive_[i] = false;
      --storeBusy_;
    } else if (s == BusStatus::Error) {
      storeActive_[i] = false;
      --storeBusy_;
      halt(true);
    }
  }
}

// ---------------------------------------------------------------------------
// Instruction execution
// ---------------------------------------------------------------------------

void MipsCore::startIFetch(Address pcLine) {
  ifetchReq_.reset();
  ifetchReq_.kind = Kind::InstrFetch;
  ifetchReq_.address = pcLine;
  ifetchReq_.size = AccessSize::Word;
  ifetchReq_.beats =
      static_cast<std::uint8_t>(config_.lineBytes / 4);
  const BusStatus s = instrIf_.fetch(ifetchReq_);
  ifetchSubmitted_ = s == BusStatus::Request;
  if (s == BusStatus::Error) {
    halt(true);
    return;
  }
  state_ = State::WaitIFetch;
}

void MipsCore::executeOne() {
  // --- Interrupt dispatch (instruction boundary) ---------------------------
  if (!inIsr_ && config_.irqVector != 0 && irqSource_ && irqSource_() != 0) {
    epc_ = pc_;
    pc_ = config_.irqVector;
    inIsr_ = true;
    ++interruptsTaken_;
    curBlock_ = nullptr;  // Vectoring breaks the sequential run.
  }

  // --- Fetch / dispatch ----------------------------------------------------
  // Fast path: the cursor points at the PC's op inside the current
  // decoded block. One generation compare proves the backing icache
  // line still holds the content the op was decoded from, standing in
  // for the tag probe; noteHit keeps the icache statistics identical
  // to the decode-on-fetch path.
  if (curBlock_ != nullptr) {
    if (curIdx_ < curBlock_->count &&
        blocks_.opFresh(*curBlock_, curIdx_, pc_)) {
      icache_.noteHit();
      blocks_.noteHit();
      executeDecoded(curBlock_->ops[curIdx_].d);
      return;
    }
    curBlock_ = nullptr;
  }

  if (config_.decodedBlockCache) {
    if (const BlockCache::Block* b = blocks_.lookup(pc_)) {
      curBlock_ = b;
      curIdx_ = 0;
      icache_.noteHit();
      blocks_.noteHit();
      executeDecoded(b->ops[0].d);
      return;
    }
  }

  Word instrWord = 0;
  if (!icache_.lookupWord(pc_, instrWord)) {
    startIFetch(icache_.lineBase(pc_));
    return;
  }
  if (config_.decodedBlockCache) {
    // Translate-once: decode the whole superblock while the line is
    // hot, then dispatch the first op straight out of it.
    blocks_.noteMiss();
    curBlock_ = blocks_.build(pc_, icache_);
    curIdx_ = 0;
    executeDecoded(curBlock_->ops[0].d);
    return;
  }
  executeDecoded(decode(instrWord));
}

/// Advance past an instruction that neither stalled nor halted: count
/// it, move the PC, and keep the block cursor only across sequential
/// flow (a taken branch, jump or ERET drops it).
void MipsCore::retire(Address nextPc) {
  ++stats_.instructions;
  if (curBlock_ != nullptr) {
    if (nextPc == pc_ + 4) {
      ++curIdx_;
    } else {
      curBlock_ = nullptr;
    }
  }
  pc_ = nextPc;
}

void MipsCore::executeDecoded(const DecodedInstr& d) {
  Address nextPc = pc_ + 4;
  const auto rs = regs_[d.rs];
  const auto rt = regs_[d.rt];
  auto setRd = [&](std::uint32_t v) { setReg(d.rd, v); };
  auto setRt = [&](std::uint32_t v) { setReg(d.rt, v); };
  auto branch = [&](bool taken) {
    if (taken) nextPc = pc_ + 4 + (static_cast<std::int64_t>(d.simm) << 2);
  };

  switch (d.op) {
    case Op::Addu: setRd(rs + rt); break;
    case Op::Subu: setRd(rs - rt); break;
    case Op::And: setRd(rs & rt); break;
    case Op::Or: setRd(rs | rt); break;
    case Op::Xor: setRd(rs ^ rt); break;
    case Op::Nor: setRd(~(rs | rt)); break;
    case Op::Slt:
      setRd(static_cast<std::int32_t>(rs) < static_cast<std::int32_t>(rt));
      break;
    case Op::Sltu: setRd(rs < rt); break;
    case Op::Sll: setRd(rt << d.shamt); break;
    case Op::Srl: setRd(rt >> d.shamt); break;
    case Op::Sra:
      setRd(static_cast<std::uint32_t>(static_cast<std::int32_t>(rt) >>
                                       d.shamt));
      break;
    case Op::Sllv: setRd(rt << (rs & 31)); break;
    case Op::Srlv: setRd(rt >> (rs & 31)); break;
    case Op::Srav:
      setRd(static_cast<std::uint32_t>(static_cast<std::int32_t>(rt) >>
                                       (rs & 31)));
      break;
    case Op::Mult: {
      const std::int64_t p = static_cast<std::int64_t>(
                                 static_cast<std::int32_t>(rs)) *
                             static_cast<std::int32_t>(rt);
      lo_ = static_cast<std::uint32_t>(p);
      hi_ = static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
      break;
    }
    case Op::Multu: {
      const std::uint64_t p = static_cast<std::uint64_t>(rs) * rt;
      lo_ = static_cast<std::uint32_t>(p);
      hi_ = static_cast<std::uint32_t>(p >> 32);
      break;
    }
    case Op::Div:
      // Division by zero leaves HI/LO unpredictable on MIPS; we keep
      // them unchanged rather than faulting (matches real cores).
      if (rt != 0) {
        lo_ = static_cast<std::uint32_t>(static_cast<std::int32_t>(rs) /
                                         static_cast<std::int32_t>(rt));
        hi_ = static_cast<std::uint32_t>(static_cast<std::int32_t>(rs) %
                                         static_cast<std::int32_t>(rt));
      }
      break;
    case Op::Divu:
      if (rt != 0) {
        lo_ = rs / rt;
        hi_ = rs % rt;
      }
      break;
    case Op::Mfhi: setRd(hi_); break;
    case Op::Mflo: setRd(lo_); break;
    case Op::Mthi: hi_ = rs; break;
    case Op::Mtlo: lo_ = rs; break;
    case Op::Jr: nextPc = rs; break;
    case Op::Jalr:
      setRd(static_cast<std::uint32_t>(pc_ + 4));
      nextPc = rs;
      break;
    case Op::Addiu: setRt(rs + static_cast<std::uint32_t>(d.simm)); break;
    case Op::Andi: setRt(rs & d.uimm); break;
    case Op::Ori: setRt(rs | d.uimm); break;
    case Op::Xori: setRt(rs ^ d.uimm); break;
    case Op::Slti:
      setRt(static_cast<std::int32_t>(rs) < d.simm);
      break;
    case Op::Sltiu:
      setRt(rs < static_cast<std::uint32_t>(d.simm));
      break;
    case Op::Lui: setRt(d.uimm << 16); break;
    case Op::Beq: branch(rs == rt); break;
    case Op::Bne: branch(rs != rt); break;
    case Op::Blez: branch(static_cast<std::int32_t>(rs) <= 0); break;
    case Op::Bgtz: branch(static_cast<std::int32_t>(rs) > 0); break;
    case Op::Bltz: branch(static_cast<std::int32_t>(rs) < 0); break;
    case Op::Bgez: branch(static_cast<std::int32_t>(rs) >= 0); break;
    case Op::J:
      nextPc = ((pc_ + 4) & ~Address{0x0FFFFFFF}) | (Address{d.target} << 2);
      break;
    case Op::Jal:
      regs_[31] = static_cast<std::uint32_t>(pc_ + 4);
      nextPc = ((pc_ + 4) & ~Address{0x0FFFFFFF}) | (Address{d.target} << 2);
      break;
    case Op::Lb:
    case Op::Lbu:
    case Op::Lh:
    case Op::Lhu:
    case Op::Lw: {
      const Address addr = rs + static_cast<std::uint32_t>(d.simm);
      // Read-after-write hazard: the EC interface's separate read and
      // write paths may complete a later read before an earlier write
      // (the spec's reordering). Stall the load until overlapping
      // stores have drained from the write buffer, as the 4K BIU does.
      if (storeBufferOverlaps(addr)) {
        ++stats_.storeStallCycles;
        return;  // PC and cursor unchanged; retry next cycle.
      }
      retire(nextPc);
      startLoad(d, addr);
      return;
    }
    case Op::Sb:
    case Op::Sh:
    case Op::Sw: {
      const Address addr = rs + static_cast<std::uint32_t>(d.simm);
      retire(nextPc);
      if (!startStore(d, addr)) {
        pendingStore_ = d;
        pendingStoreAddr_ = addr;
        state_ = State::WaitStoreSlot;
      }
      return;
    }
    case Op::Syscall:
    case Op::Break:
      ++stats_.instructions;
      haltPending_ = true;
      curBlock_ = nullptr;
      return;
    case Op::Eret:
      nextPc = epc_;
      inIsr_ = false;
      break;
    case Op::Invalid:
      curBlock_ = nullptr;
      halt(true);
      return;
  }
  retire(nextPc);
}

namespace {

AccessSize sizeOf(Op op) {
  switch (op) {
    case Op::Lb:
    case Op::Lbu:
    case Op::Sb: return AccessSize::Byte;
    case Op::Lh:
    case Op::Lhu:
    case Op::Sh: return AccessSize::Half;
    default: return AccessSize::Word;
  }
}

} // namespace

void MipsCore::startLoad(const DecodedInstr& d, Address addr) {
  loadInstr_ = d;
  loadAddr_ = addr;
  const bool uncached = addr >= config_.uncachedBase;
  Word cachedWord = 0;
  if (!uncached && dcache_.lookupWord(addr, cachedWord)) {
    loadIsCached_ = true;
    writeLoadResult(cachedWord);
    return;  // Hit: single-cycle load.
  }
  loadReq_.reset();
  loadReq_.kind = Kind::Read;
  if (uncached) {
    loadIsCached_ = false;
    loadReq_.address = addr & ~static_cast<Address>(
                                  static_cast<std::size_t>(sizeOf(d.op)) - 1);
    loadReq_.size = sizeOf(d.op);
    loadReq_.beats = 1;
  } else {
    loadIsCached_ = true;
    loadReq_.address = dcache_.lineBase(addr);
    loadReq_.size = AccessSize::Word;
    loadReq_.beats = static_cast<std::uint8_t>(config_.lineBytes / 4);
  }
  const BusStatus s = dataIf_.read(loadReq_);
  loadSubmitted_ = s == BusStatus::Request;
  if (s == BusStatus::Error) {
    halt(true);
    return;
  }
  state_ = State::WaitLoad;
}

void MipsCore::finishLoad() {
  if (loadIsCached_ && loadReq_.beats > 1) {
    dcache_.fillLine(loadReq_.address, loadReq_.data.data());
    const std::size_t wordIndex =
        static_cast<std::size_t>((loadAddr_ - loadReq_.address) / 4);
    writeLoadResult(loadReq_.data[wordIndex]);
  } else {
    writeLoadResult(loadReq_.data[0]);
  }
}

std::uint32_t MipsCore::extractLane(Word word, Address addr, Op op) {
  const unsigned lane = static_cast<unsigned>(addr & 0x3u);
  switch (op) {
    case Op::Lb: {
      const auto b = static_cast<std::int8_t>((word >> (8 * lane)) & 0xFF);
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(b));
    }
    case Op::Lbu:
      return (word >> (8 * lane)) & 0xFF;
    case Op::Lh: {
      const auto h =
          static_cast<std::int16_t>((word >> (8 * (lane & ~1u))) & 0xFFFF);
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(h));
    }
    case Op::Lhu:
      return (word >> (8 * (lane & ~1u))) & 0xFFFF;
    default:
      return word;
  }
}

void MipsCore::writeLoadResult(Word wordOnBus) {
  setReg(loadInstr_.rt, extractLane(wordOnBus, loadAddr_, loadInstr_.op));
}

bool MipsCore::storeBufferOverlaps(Address addr) const {
  const Address word = addr & ~Address{3};
  for (std::size_t i = 0; i < storeReqs_.size(); ++i) {
    if (storeActive_[i] &&
        (storeReqs_[i].address & ~Address{3}) == word) {
      return true;
    }
  }
  return false;
}

bool MipsCore::startStore(const DecodedInstr& d, Address addr) {
  std::size_t slot = storeReqs_.size();
  for (std::size_t i = 0; i < storeReqs_.size(); ++i) {
    if (!storeActive_[i]) {
      slot = i;
      break;
    }
  }
  if (slot == storeReqs_.size() || storeBusy_ >= config_.storeBufferDepth) {
    return false;  // Buffer full; retry next cycle.
  }

  const AccessSize size = sizeOf(d.op);
  const unsigned lane = static_cast<unsigned>(addr & 0x3u);
  Word value = regs_[d.rt];
  switch (size) {
    case AccessSize::Byte: value = (value & 0xFF) << (8 * lane); break;
    case AccessSize::Half:
      value = (value & 0xFFFF) << (8 * (lane & ~1u));
      break;
    case AccessSize::Word: break;
  }

  bus::Tl1Request& req = storeReqs_[slot];
  req.reset();
  req.kind = Kind::Write;
  req.address = addr & ~static_cast<Address>(
                           static_cast<std::size_t>(size) - 1);
  req.size = size;
  req.beats = 1;
  req.data[0] = value;

  // Write-through: keep the cached copy coherent.
  if (addr < config_.uncachedBase) {
    dcache_.updateIfPresent(addr, value, bus::byteEnables(size, addr));
    // Self-modifying-code safety: dropping an icache line also retires
    // every decoded block built from it (generation bump).
    if (icache_.invalidate(addr)) {
      blocks_.noteLineInvalidated(icache_.lineIndex(addr));
    }
  }

  const BusStatus s = dataIf_.write(req);
  if (s == BusStatus::Request) {
    storeActive_[slot] = true;
    ++storeBusy_;
    return true;
  }
  if (s == BusStatus::Error) {
    halt(true);
    return true;  // Halted; nothing to retry.
  }
  return false;  // Bus refused the accept (EC limit); retry.
}

void MipsCore::invalidateICacheRange(Address addr, std::size_t bytes) {
  if (bytes == 0) return;
  const Address first = icache_.lineBase(addr);
  const Address last = icache_.lineBase(addr + bytes - 1);
  for (Address a = first;; a += config_.lineBytes) {
    if (icache_.invalidate(a)) {
      blocks_.noteLineInvalidated(icache_.lineIndex(a));
    }
    if (a == last) break;
  }
  curBlock_ = nullptr;
}

void MipsCore::publishObs(obs::StatsRegistry& reg) const {
  if constexpr (obs::kEnabled) {
    reg.counter("iss.block_hits").add(blocks_.stats().hits);
    reg.counter("iss.block_misses").add(blocks_.stats().misses);
    reg.counter("iss.invalidations").add(blocks_.stats().invalidations);
  } else {
    (void)reg;
  }
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

namespace {

void saveInstr(ckpt::StateWriter& w, const DecodedInstr& d) {
  w.u16(static_cast<std::uint16_t>(d.op));
  w.u8(d.rs);
  w.u8(d.rt);
  w.u8(d.rd);
  w.u8(d.shamt);
  w.i64(d.simm);
  w.u32(d.uimm);
  w.u32(d.target);
}

void loadInstr(ckpt::StateReader& r, DecodedInstr& d) {
  d.op = static_cast<Op>(r.u16());
  d.rs = r.u8();
  d.rt = r.u8();
  d.rd = r.u8();
  d.shamt = r.u8();
  d.simm = static_cast<std::int32_t>(r.i64());
  d.uimm = r.u32();
  d.target = r.u32();
}

/// Full payload: a not-yet-accepted request (refused while the bus was
/// draining) must resubmit the identical words after restore.
void saveReq(ckpt::StateWriter& w, const bus::Tl1Request& q) {
  w.u8(static_cast<std::uint8_t>(q.kind));
  w.u64(q.address);
  w.u8(static_cast<std::uint8_t>(q.size));
  w.u8(q.beats);
  for (const Word v : q.data) w.u32(v);
  w.u8(static_cast<std::uint8_t>(q.result));
  w.u8(static_cast<std::uint8_t>(q.stage));
  w.u8(q.beatsDone);
  w.i64(q.slave);
  w.u32(q.waitCount);
  w.u64(q.acceptCycle);
  w.u64(q.finishCycle);
}

void loadReq(ckpt::StateReader& r, bus::Tl1Request& q) {
  q.kind = static_cast<Kind>(r.u8());
  q.address = r.u64();
  q.size = static_cast<AccessSize>(r.u8());
  q.beats = r.u8();
  for (Word& v : q.data) v = r.u32();
  q.result = static_cast<BusStatus>(r.u8());
  q.stage = static_cast<bus::Tl1Stage>(r.u8());
  q.beatsDone = r.u8();
  q.slave = static_cast<int>(r.i64());
  q.waitCount = r.u32();
  q.acceptCycle = r.u64();
  q.finishCycle = r.u64();
}

} // namespace

void MipsCore::saveState(ckpt::StateWriter& w) const {
  if (ifetchSubmitted_ || loadSubmitted_ || storeBusy_ != 0) {
    throw ckpt::CheckpointError(
        "MipsCore::saveState: bus transactions in flight (snapshot only at "
        "quiesce points; ifetch=" +
        std::to_string(ifetchSubmitted_) +
        " load=" + std::to_string(loadSubmitted_) +
        " storeBusy=" + std::to_string(storeBusy_) + ")");
  }
  for (const std::uint32_t v : regs_) w.u32(v);
  w.u32(hi_);
  w.u32(lo_);
  w.u64(pc_);
  w.u64(epc_);
  w.b(inIsr_);
  w.u64(interruptsTaken_);
  w.u8(static_cast<std::uint8_t>(state_));
  w.b(haltPending_);
  w.b(faulted_);
  icache_.saveState(w);
  dcache_.saveState(w);
  saveReq(w, ifetchReq_);
  saveReq(w, loadReq_);
  w.b(loadIsCached_);
  saveInstr(w, loadInstr_);
  w.u64(loadAddr_);
  saveInstr(w, pendingStore_);
  w.u64(pendingStoreAddr_);
  w.u64(stats_.cycles);
  w.u64(stats_.instructions);
  w.u64(stats_.ifetchStallCycles);
  w.u64(stats_.loadStallCycles);
  w.u64(stats_.storeStallCycles);
}

void MipsCore::loadState(ckpt::StateReader& r) {
  if (ifetchSubmitted_ || loadSubmitted_ || storeBusy_ != 0) {
    throw ckpt::CheckpointError(
        "MipsCore::loadState: restore target has bus transactions in "
        "flight");
  }
  for (std::uint32_t& v : regs_) v = r.u32();
  hi_ = r.u32();
  lo_ = r.u32();
  pc_ = r.u64();
  epc_ = r.u64();
  inIsr_ = r.b();
  interruptsTaken_ = r.u64();
  state_ = static_cast<State>(r.u8());
  haltPending_ = r.b();
  faulted_ = r.b();
  icache_.loadState(r);
  dcache_.loadState(r);
  loadReq(r, ifetchReq_);
  loadReq(r, loadReq_);
  loadIsCached_ = r.b();
  loadInstr(r, loadInstr_);
  loadAddr_ = r.u64();
  loadInstr(r, pendingStore_);
  pendingStoreAddr_ = r.u64();
  stats_.cycles = r.u64();
  stats_.instructions = r.u64();
  stats_.ifetchStallCycles = r.u64();
  stats_.loadStallCycles = r.u64();
  stats_.storeStallCycles = r.u64();
  ifetchSubmitted_ = false;
  loadSubmitted_ = false;
  storeActive_.fill(false);
  storeBusy_ = 0;
  // The decoded-block cache is derived state: nothing of it is in the
  // snapshot (the checkpoint format predates it and stays unchanged),
  // so a restore drops every block and lets demand decoding rebuild
  // them from the restored icache content.
  blocks_.flush();
  curBlock_ = nullptr;
  curIdx_ = 0;
}

bool MipsCore::runUntilHalt(std::uint64_t maxCycles) {
  const std::uint64_t start = clock_.cycle();
  while (!halted() && clock_.cycle() - start < maxCycles) {
    clock_.runCycles(1);
  }
  return halted();
}

} // namespace sct::soc
