// MIPS-subset instruction-set simulator with caches and EC bus port.
//
// Models the processor core of the paper's target platform at the
// fidelity the experiments need: it executes real MIPS32 encodings one
// instruction per cycle, keeps direct-mapped instruction and data
// caches whose refills appear as 4-beat EC bursts, posts stores through
// a write buffer (up to the EC limit of four outstanding writes), and
// stalls on refills and uncached accesses. It drives the non-blocking
// EC master interfaces on rising clock edges — the discipline the
// paper's assembly test programs exercised on the RTL.
//
// Simplifications (documented): no branch delay slots, no TLB/MMU (the
// 4KSc's fixed mapping is identity here), no precise exceptions —
// SYSCALL/BREAK halt the core, a bus error or invalid opcode halts with
// an error flag.
#ifndef SCT_SOC_CPU_H
#define SCT_SOC_CPU_H

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "ckpt/state_io.h"
#include "obs/stats.h"
#include "sim/clock.h"
#include "sim/module.h"
#include "soc/cache.h"
#include "soc/decoded_block.h"
#include "soc/isa.h"

namespace sct::soc {

struct CpuConfig {
  bus::Address resetPc = 0;
  /// Interrupt vector. When an interrupt source is connected and
  /// reports a pending line, the core saves PC to EPC and jumps here;
  /// the handler returns with ERET. 0 disables interrupt dispatch.
  bus::Address irqVector = 0;
  std::size_t icacheBytes = 4096;
  std::size_t dcacheBytes = 4096;
  std::size_t lineBytes = 16;  ///< Must equal the EC burst (4 words).
  /// Addresses at or above this are uncached (memory-mapped SFRs).
  bus::Address uncachedBase = 0x10000000;
  unsigned storeBufferDepth = 4;  ///< <= EC outstanding-write limit.
  /// Dispatch through the decoded-block cache (decode each basic block
  /// once, re-execute from pre-resolved entries). Architecturally and
  /// cycle-wise identical to decode-on-fetch — the off setting exists
  /// for the equivalence suite and as the seed baseline in benchmarks.
  bool decodedBlockCache = true;
};

struct CpuStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t ifetchStallCycles = 0;
  std::uint64_t loadStallCycles = 0;
  std::uint64_t storeStallCycles = 0;

  double cpi() const {
    return instructions == 0
               ? 0.0
               : static_cast<double>(cycles) /
                     static_cast<double>(instructions);
  }
};

class MipsCore final : public sim::Module {
 public:
  MipsCore(sim::Clock& clock, std::string name, bus::EcInstrIf& instrIf,
           bus::EcDataIf& dataIf, const CpuConfig& config = CpuConfig{});
  ~MipsCore() override;

  /// Restart execution at `pc` with cleared registers and caches.
  void reset(bus::Address pc);

  bool halted() const { return state_ == State::Halted && storeBusy_ == 0; }
  /// True when the core stopped because of a bus error or invalid
  /// opcode rather than SYSCALL/BREAK.
  bool faulted() const { return faulted_; }
  /// True when the core has nothing in flight on the bus: no submitted
  /// instruction fetch or load, no store draining. This is the CPU half
  /// of the platform quiesce predicate checkpoints enforce; pollers
  /// (the serve recycle loop) combine it with the bus's own
  /// outstandingTotal() == 0 instead of try/catching CheckpointError
  /// every cycle.
  bool busQuiesced() const {
    return !ifetchSubmitted_ && !loadSubmitted_ && storeBusy_ == 0;
  }

  std::uint32_t reg(unsigned index) const { return regs_[index & 31]; }
  void setReg(unsigned index, std::uint32_t value) {
    if ((index & 31) != 0) regs_[index & 31] = value;
  }
  bus::Address pc() const { return pc_; }
  std::uint32_t hi() const { return hi_; }
  std::uint32_t lo() const { return lo_; }

  const CpuStats& stats() const { return stats_; }
  const Cache& icache() const { return icache_; }
  const Cache& dcache() const { return dcache_; }
  const BlockCacheStats& blockCacheStats() const { return blocks_.stats(); }

  /// Drop any cached instruction state covering [addr, addr+bytes):
  /// icache lines and the decoded blocks derived from them. External
  /// image mutators (DMA-style backdoor writes, JCVM code stores that
  /// bypass the data port) must call this, exactly like software would
  /// run a cache op after patching code.
  void invalidateICacheRange(bus::Address addr, std::size_t bytes);

  /// Publish dispatch-loop counters (iss.block_hits, iss.block_misses,
  /// iss.invalidations) into `reg`. Compiles to nothing with SCT_OBS=OFF.
  void publishObs(obs::StatsRegistry& reg) const;

  /// Drive the clock until the core halts. Returns true if it halted
  /// within `maxCycles`.
  bool runUntilHalt(std::uint64_t maxCycles = 10'000'000);

  /// Connect the interrupt request line (e.g. the interrupt
  /// controller's masked pending word). Sampled at instruction
  /// boundaries; a non-zero value outside a handler vectors the core.
  void setInterruptSource(std::function<std::uint32_t()> source) {
    irqSource_ = std::move(source);
  }

  bus::Address epc() const { return epc_; }
  bool inInterruptHandler() const { return inIsr_; }
  std::uint64_t interruptsTaken() const { return interruptsTaken_; }

  /// -- Checkpoint (see ckpt/checkpoint.h): only legal with no bus
  /// transaction in flight (no submitted fetch/load, empty store
  /// buffer — guaranteed at a quiesce point). Architectural state,
  /// caches, the stall micro-state and the pending request payloads
  /// all travel. The restore target must share the cache geometry.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  enum class State : std::uint8_t {
    Running,
    WaitIFetch,
    WaitLoad,
    WaitStoreSlot,
    Halted,
  };

  void onRisingEdge();
  void pollStores();
  void executeOne();
  void executeDecoded(const DecodedInstr& d);
  void retire(bus::Address nextPc);
  void startIFetch(bus::Address pcLine);
  void startLoad(const DecodedInstr& d, bus::Address addr);
  bool storeBufferOverlaps(bus::Address addr) const;
  bool startStore(const DecodedInstr& d, bus::Address addr);
  void finishLoad();
  void writeLoadResult(bus::Word wordOnBus);
  static std::uint32_t extractLane(bus::Word word, bus::Address addr, Op op);
  void halt(bool fault);

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  bus::EcInstrIf& instrIf_;
  bus::EcDataIf& dataIf_;
  CpuConfig config_;

  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t hi_ = 0;
  std::uint32_t lo_ = 0;
  bus::Address pc_ = 0;
  bus::Address epc_ = 0;
  bool inIsr_ = false;
  std::function<std::uint32_t()> irqSource_;
  std::uint64_t interruptsTaken_ = 0;
  State state_ = State::Halted;
  bool haltPending_ = false;
  bool faulted_ = false;

  Cache icache_;
  Cache dcache_;

  // Decoded-block dispatch (derived state: flushed on reset and on
  // checkpoint restore, never serialized). The cursor tracks the op the
  // PC points at inside the current block; it survives only sequential
  // flow and is dropped on any redirect.
  BlockCache blocks_;
  const BlockCache::Block* curBlock_ = nullptr;
  std::uint32_t curIdx_ = 0;

  bus::Tl1Request ifetchReq_;
  bool ifetchSubmitted_ = false;
  bus::Tl1Request loadReq_;
  bool loadSubmitted_ = false;
  bool loadIsCached_ = false;
  DecodedInstr loadInstr_{};
  bus::Address loadAddr_ = 0;
  std::array<bus::Tl1Request, bus::kMaxOutstandingPerClass> storeReqs_{};
  std::array<bool, bus::kMaxOutstandingPerClass> storeActive_{};
  unsigned storeBusy_ = 0;
  DecodedInstr pendingStore_{};
  bus::Address pendingStoreAddr_ = 0;

  CpuStats stats_;
};

} // namespace sct::soc

#endif // SCT_SOC_CPU_H
