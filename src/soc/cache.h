// Direct-mapped cache model.
//
// The MIPS 4KSc integrates instruction and data caches whose refills
// appear on the EC interface as 4-beat bursts (Figure 1). This model
// keeps tags, valid bits and data so the simulator's bus traffic — and
// nothing else — is cycle-relevant: hits cost no bus transaction,
// misses trigger a line refill issued by the core.
#ifndef SCT_SOC_CACHE_H
#define SCT_SOC_CACHE_H

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bus/ec_types.h"
#include "ckpt/state_io.h"

namespace sct::soc {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hitRate() const {
    const double total = static_cast<double>(hits + misses);
    return total == 0.0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class Cache {
 public:
  /// `sizeBytes` and `lineBytes` must be powers of two; the line size
  /// must match the EC burst (16 bytes = 4 words).
  Cache(std::size_t sizeBytes, std::size_t lineBytes = 16);

  std::size_t lineBytes() const { return lineBytes_; }
  std::size_t lineCount() const { return lines_.size(); }

  /// Line-aligned base address for `addr`.
  bus::Address lineBase(bus::Address addr) const {
    return addr & ~static_cast<bus::Address>(lineBytes_ - 1);
  }

  bool contains(bus::Address addr) const;

  /// Word lookup. Returns true and sets `out` on a hit (records a hit);
  /// records a miss otherwise.
  bool lookupWord(bus::Address addr, bus::Word& out);

  /// Word lookup without touching the hit/miss statistics. The
  /// decoded-block builder probes ahead of the architectural fetch
  /// stream with this; its probes must not perturb the cache counters.
  bool peekWord(bus::Address addr, bus::Word& out) const;

  /// Direct-mapped index of the line that would hold `addr`.
  std::size_t lineIndex(bus::Address addr) const {
    return static_cast<std::size_t>(lineBase(addr) / lineBytes_) %
           lines_.size();
  }

  /// Record a hit without a tag probe. The decoded-block dispatch path
  /// proves residency through line generations instead of tag compares;
  /// this keeps the hit/miss statistics identical to decode-on-fetch.
  void noteHit() { ++stats_.hits; }

  /// Install a line fetched from memory. `words` must hold
  /// lineBytes()/4 entries starting at lineBase(addr).
  void fillLine(bus::Address addr, const bus::Word* words);

  /// Write-through update: if the line is present, patch the cached
  /// copy (byte-enable granular). Never allocates.
  void updateIfPresent(bus::Address addr, bus::Word value,
                       std::uint8_t byteEnables);

  /// Drop a line (e.g. on DMA or self-modifying code). Returns true
  /// when a valid line actually matched and was dropped, so callers can
  /// propagate the invalidation to derived state (decoded blocks).
  bool invalidate(bus::Address addr);
  void invalidateAll();

  const CacheStats& stats() const { return stats_; }

  /// -- Checkpoint (see ckpt/checkpoint.h): tags, valid bits, cached
  /// words and hit/miss statistics. The restore target must have the
  /// same geometry (enforced with a CheckpointError).
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Line {
    bool valid = false;
    bus::Address tagBase = 0;  ///< Line-aligned address of the content.
    std::vector<bus::Word> words;
  };

  Line& lineFor(bus::Address addr);
  const Line& lineFor(bus::Address addr) const;

  std::size_t lineBytes_;
  std::vector<Line> lines_;
  CacheStats stats_;
};

} // namespace sct::soc

#endif // SCT_SOC_CACHE_H
