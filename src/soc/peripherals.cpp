#include "soc/peripherals.h"

#include <bit>

#include "sim/rng.h"

namespace sct::soc {

using bus::Word;

// ---------------------------------------------------------------------------
// InterruptController
// ---------------------------------------------------------------------------

InterruptController::InterruptController(std::string name,
                                         const bus::SlaveControl& control)
    : bus::RegisterSlave(std::move(name), control) {
  defineRegister(
      0x0, "STATUS", [this] { return pending_ & enable_; },
      [this](Word v) { pending_ &= ~v; });  // Write-1-to-clear.
  defineRegister(
      0x4, "ENABLE", [this] { return enable_; },
      [this](Word v) { enable_ = v; });
}

// ---------------------------------------------------------------------------
// Timer
// ---------------------------------------------------------------------------

Timer::Timer(sim::Clock& clock, std::string name,
             const bus::SlaveControl& control, InterruptController* irq,
             unsigned irqLine)
    : bus::RegisterSlave(std::move(name), control),
      clock_(clock),
      irq_(irq),
      irqLine_(irqLine) {
  defineRegister(0x0, "COUNT", [this] { return count_; }, nullptr);
  defineRegister(
      0x4, "COMPARE", [this] { return compare_; },
      [this](Word v) { compare_ = v & 0xFFFF; });
  defineRegister(
      0x8, "CTRL", [this] { return ctrl_; },
      [this](Word v) { ctrl_ = v; });
  defineRegister(
      0xC, "STATUS", [this] { return status_; },
      [this](Word) { status_ = 0; });
  handlerId_ = clock_.onRising([this] { tick(); });
}

Timer::~Timer() { clock_.removeHandler(handlerId_); }

void Timer::tick() {
  if ((ctrl_ & 1u) == 0) return;
  const unsigned prescaler = (ctrl_ >> 8) & 0xFF;
  if (prescale_ < prescaler) {
    ++prescale_;
    return;
  }
  prescale_ = 0;
  count_ = (count_ + 1) & 0xFFFF;
  ++ticks_;
  if (count_ == compare_) {
    status_ |= 1u;
    if (irq_ != nullptr) irq_->raise(irqLine_);
  }
}

// ---------------------------------------------------------------------------
// Uart
// ---------------------------------------------------------------------------

Uart::Uart(sim::Clock& clock, std::string name,
           const bus::SlaveControl& control, unsigned cyclesPerByte)
    : bus::RegisterSlave(std::move(name), control),
      clock_(clock),
      cyclesPerByte_(cyclesPerByte) {
  defineRegister(
      0x0, "DATA",
      [this]() -> Word {
        if (rx_.empty()) return 0;
        const Word v = rx_.front();
        rx_.pop_front();
        return v;
      },
      [this](Word v) {
        tx_.push_back(static_cast<char>(v & 0xFF));
        busyCycles_ = cyclesPerByte_;
      });
  defineRegister(
      0x4, "STATUS",
      [this]() -> Word {
        Word s = 0;
        if (busyCycles_ == 0) s |= 1u;   // TX ready.
        if (!rx_.empty()) s |= 2u;       // RX available.
        return s;
      },
      nullptr);
  handlerId_ = clock_.onRising([this] { tick(); });
}

Uart::~Uart() { clock_.removeHandler(handlerId_); }

void Uart::tick() {
  if (busyCycles_ > 0) --busyCycles_;
}

// ---------------------------------------------------------------------------
// Trng
// ---------------------------------------------------------------------------

Trng::Trng(std::string name, const bus::SlaveControl& control,
           std::uint64_t seed)
    : bus::RegisterSlave(std::move(name), control), rng_(seed) {
  defineRegister(
      0x0, "DATA",
      [this]() -> Word {
        ++drawn_;
        return rng_.next32();
      },
      nullptr);
  defineRegister(0x4, "STATUS", [] { return Word{1}; }, nullptr);
}

// ---------------------------------------------------------------------------
// CryptoCoprocessor
// ---------------------------------------------------------------------------

namespace {

/// AES S-box — used as a well-understood nonlinear substitution for the
/// toy Feistel round function.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr unsigned kRounds = soc::CryptoCoprocessor::kRounds;

std::uint32_t substitute(std::uint32_t v) {
  std::uint32_t out = 0;
  for (unsigned i = 0; i < 4; ++i) {
    out |= static_cast<std::uint32_t>(kSbox[(v >> (8 * i)) & 0xFF])
           << (8 * i);
  }
  return out;
}

std::uint32_t rotl32(std::uint32_t v, unsigned k) {
  return (v << k) | (v >> (32 - k));
}

std::uint32_t roundKey(const std::uint32_t key[4], unsigned round) {
  return rotl32(key[round & 3] ^ (0x9E3779B9u * (round + 1)), round % 31);
}

std::uint32_t feistelF(std::uint32_t half, std::uint32_t rk) {
  return rotl32(substitute(half ^ rk), 5) ^ (half >> 3);
}

} // namespace

void CryptoCoprocessor::encryptBlock(const std::uint32_t key[4],
                                     std::uint32_t& d0, std::uint32_t& d1) {
  std::uint32_t l = d0;
  std::uint32_t r = d1;
  for (unsigned round = 0; round < kRounds; ++round) {
    const std::uint32_t t = r;
    r = l ^ feistelF(r, roundKey(key, round));
    l = t;
  }
  d0 = r;  // Final swap.
  d1 = l;
}

void CryptoCoprocessor::decryptBlock(const std::uint32_t key[4],
                                     std::uint32_t& d0, std::uint32_t& d1) {
  std::uint32_t r = d0;
  std::uint32_t l = d1;
  for (unsigned round = kRounds; round-- > 0;) {
    const std::uint32_t t = l;
    l = r ^ feistelF(l, roundKey(key, round));
    r = t;
  }
  d0 = l;
  d1 = r;
}

std::uint8_t CryptoCoprocessor::sbox(std::uint8_t v) { return kSbox[v]; }

void CryptoCoprocessor::rebuildLeakSchedule() {
  leakValid_ = leak_.hdCoeff_fJ != 0.0 && busyCycles_ > 0 &&
               (pendingMode_ == 1 || pendingMode_ == 2);
  if (!leakValid_) return;

  // Walk the same round trajectory the completion tick will execute
  // and record the Hamming distance between consecutive (l, r) state
  // register pairs. With masking, each round state is XORed with fresh
  // masks drawn statelessly from (maskSeed, operation#, round) — the
  // toggles a masked datapath would really show — which decorrelates
  // the schedule from the data without touching ciphertext or timing.
  const auto mask32 = [&](unsigned idx) -> std::uint32_t {
    if (!leak_.maskRounds) return 0;
    return static_cast<std::uint32_t>(
        sim::hash64(leak_.maskSeed, operations_, idx));
  };
  // Decryption is the same (l, r) -> (r, l ^ F(r, rk)) recurrence with
  // the round-key order reversed (decryptBlock's variable naming swaps
  // the labels, which cancels out of the symmetric Hamming distance).
  std::uint32_t l = data_[0];
  std::uint32_t r = data_[1];
  std::uint32_t mLsb = l ^ mask32(0);
  std::uint32_t mRsb = r ^ mask32(1);
  for (unsigned round = 0; round < kRounds; ++round) {
    const unsigned k = pendingMode_ == 1 ? round : kRounds - 1 - round;
    const std::uint32_t t = r;
    r = l ^ feistelF(r, roundKey(key_, k));
    l = t;
    const std::uint32_t nextL = l ^ mask32(2 * round + 2);
    const std::uint32_t nextR = r ^ mask32(2 * round + 3);
    leakSchedule_[round] =
        static_cast<std::uint32_t>(std::popcount(mLsb ^ nextL)) +
        static_cast<std::uint32_t>(std::popcount(mRsb ^ nextR));
    mLsb = nextL;
    mRsb = nextR;
  }
}

CryptoCoprocessor::CryptoCoprocessor(sim::Clock& clock, std::string name,
                                     const bus::SlaveControl& control,
                                     unsigned cyclesPerRound,
                                     InterruptController* irq,
                                     unsigned irqLine)
    : bus::RegisterSlave(std::move(name), control),
      clock_(clock),
      irq_(irq),
      irqLine_(irqLine),
      cyclesPerRound_(cyclesPerRound) {
  for (unsigned i = 0; i < 4; ++i) {
    defineRegister(
        0x00 + 4 * i, "KEY" + std::to_string(i), nullptr,
        [this, i](Word v) { key_[i] = v; });
  }
  for (unsigned i = 0; i < 2; ++i) {
    defineRegister(
        0x10 + 4 * i, "DATA" + std::to_string(i),
        [this, i]() -> Word { return data_[i]; },
        [this, i](Word v) { data_[i] = v; });
  }
  defineRegister(0x18, "CTRL", nullptr, [this](Word v) { start(v); });
  defineRegister(
      0x1C, "STATUS", [this]() -> Word { return busy() ? 1u : 0u; },
      nullptr);
  handlerId_ = clock_.onRising([this] { tick(); });
}

CryptoCoprocessor::~CryptoCoprocessor() { clock_.removeHandler(handlerId_); }

bus::BusStatus CryptoCoprocessor::readBeat(bus::Address addr,
                                           bus::AccessSize size,
                                           Word& out) {
  const bus::Address off = (addr - control().base) & ~bus::Address{3};
  if (busy() && (off == 0x10 || off == 0x14)) return bus::BusStatus::Wait;
  return RegisterSlave::readBeat(addr, size, out);
}

void CryptoCoprocessor::start(Word mode) {
  if (mode != 1 && mode != 2) return;
  pendingMode_ = mode;
  busyCycles_ = kRounds * cyclesPerRound_;
  rebuildLeakSchedule();
}

void CryptoCoprocessor::tick() {
  lastLeak_fJ_ = 0.0;
  if (busyCycles_ == 0) return;
  --busyCycles_;
  if (leakValid_) {
    // One round completes every cyclesPerRound_ ticks; emit its state
    // register toggles as internal energy on that tick.
    const unsigned elapsed = kRounds * cyclesPerRound_ - busyCycles_;
    if (elapsed % cyclesPerRound_ == 0) {
      lastLeak_fJ_ = leak_.hdCoeff_fJ *
                     static_cast<double>(
                         leakSchedule_[elapsed / cyclesPerRound_ - 1]);
    }
  }
  if (busyCycles_ == 0) {
    if (pendingMode_ == 1) {
      encryptBlock(key_, data_[0], data_[1]);
    } else {
      decryptBlock(key_, data_[0], data_[1]);
    }
    pendingMode_ = 0;
    leakValid_ = false;
    ++operations_;
    if (irq_ != nullptr) irq_->raise(irqLine_);
  }
}

} // namespace sct::soc
