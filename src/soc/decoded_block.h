// Decoded-block cache: translate-once frontend for the MIPS ISS.
//
// Decode-on-fetch pays the full field-extraction and opcode-dispatch
// cost of decode() on every executed instruction even though smart-card
// firmware spends almost all of its time re-executing the same short
// loops out of a warm instruction cache. This cache decodes a run of
// straight-line instructions once — a "superblock" that extends through
// the fall-through path of conditional branches — into pre-resolved
// DecodedInstr entries, and lets the core dispatch subsequent visits
// directly off the cached entries.
//
// Coherence model: a block mirrors the *instruction cache*, not memory.
// Every mutation of an icache line (refill over an old line, or an
// invalidation from the write-through self-modifying-code path) bumps a
// per-line generation counter; each cached op remembers the generation
// of the line it was decoded from, so validity is one compare per
// dispatched instruction. Because only the icache feeds blocks, the
// block path is cycle- and stats-identical to decode-on-fetch: it never
// executes an instruction the icache would have missed on.
//
// The whole structure is derived state: it is rebuilt on demand, never
// serialized, and flushed on reset and on checkpoint restore (the
// checkpoint format is unchanged — see MipsCore::loadState).
#ifndef SCT_SOC_DECODED_BLOCK_H
#define SCT_SOC_DECODED_BLOCK_H

#include <array>
#include <cstdint>
#include <vector>

#include "bus/ec_types.h"
#include "soc/cache.h"
#include "soc/isa.h"

namespace sct::soc {

/// Dispatch-loop diagnostics (never serialized; see obs counters
/// iss.block_hits / iss.block_misses / iss.invalidations).
struct BlockCacheStats {
  std::uint64_t hits = 0;    ///< Instructions dispatched from a block.
  std::uint64_t misses = 0;  ///< Instructions that fell back to decode().
  std::uint64_t builds = 0;  ///< Blocks (re)decoded.
  std::uint64_t invalidations = 0;  ///< Icache-line drops that retired
                                    ///  decoded state (SMC / DMA).
};

class BlockCache {
 public:
  static constexpr std::size_t kSlots = 256;  ///< Direct-mapped, pow2.
  static constexpr std::size_t kMaxOps = 16;  ///< Ops per superblock.

  struct CachedOp {
    DecodedInstr d{};
    /// Generation of the backing icache line when the op was decoded.
    std::uint64_t lineGen = 0;
  };

  struct Block {
    bus::Address startPc = 0;
    std::uint16_t count = 0;  ///< 0 = empty slot.
    std::array<CachedOp, kMaxOps> ops{};
  };

  /// Geometry must match the instruction cache feeding the blocks;
  /// both dimensions are powers of two (enforced by Cache).
  BlockCache(std::size_t icacheLineCount, std::size_t lineBytes);

  /// Block whose first op starts at `pc` and is still coherent with
  /// the icache, or nullptr.
  const Block* lookup(bus::Address pc) const {
    const Block& b = slots_[slotOf(pc)];
    if (b.count != 0 && b.startPc == pc && opFresh(b, 0, pc)) return &b;
    return nullptr;
  }

  /// True when op `idx` of `b` (located at `pc`) was decoded from the
  /// current generation of its icache line — the single compare that
  /// stands in for the tag probe on the dispatch fast path.
  bool opFresh(const Block& b, std::size_t idx, bus::Address pc) const {
    return gens_[lineIndexOf(pc)] == b.ops[idx].lineGen;
  }

  /// Decode a superblock starting at `pc` out of the icache. The first
  /// word must be resident (the caller just hit on it); decoding stops
  /// at kMaxOps, at a non-resident line, or after an op that cannot
  /// fall through. Returns the slot the block was installed in.
  const Block* build(bus::Address pc, const Cache& icache);

  /// An icache line was refilled (possibly evicting another tag): all
  /// ops decoded from the old content become stale.
  void noteLineFilled(std::size_t lineIdx) { ++gens_[lineIdx]; }

  /// An icache line was dropped by the coherence path (self-modifying
  /// code, external image mutation): stale ops, counted as a real
  /// invalidation event.
  void noteLineInvalidated(std::size_t lineIdx) {
    ++gens_[lineIdx];
    ++stats_.invalidations;
  }

  /// Drop every block (reset, checkpoint restore). Generations and
  /// cumulative stats survive; entries do not.
  void flush();

  void noteHit() { ++stats_.hits; }
  void noteMiss() { ++stats_.misses; }
  const BlockCacheStats& stats() const { return stats_; }

 private:
  std::size_t lineIndexOf(bus::Address a) const {
    return (static_cast<std::size_t>(a) >> lineShift_) & lineMask_;
  }
  static std::size_t slotOf(bus::Address pc) {
    return (static_cast<std::size_t>(pc) >> 2) & (kSlots - 1);
  }

  unsigned lineShift_;
  std::size_t lineMask_;
  std::vector<std::uint64_t> gens_;  ///< Per-icache-line generation.
  std::vector<Block> slots_;
  BlockCacheStats stats_;
};

} // namespace sct::soc

#endif // SCT_SOC_DECODED_BLOCK_H
