#include "soc/sw_crypto.h"

#include <string>

#include "soc/smartcard.h"

namespace sct::soc {

AssembledProgram swEncryptProgram(unsigned blocks) {
  // Register plan:
  //   $s0 sbox base   $s1 key array base (RAM)   $s2 block pointer
  //   $s3 blocks left $s5 L                      $s6 R
  //   $s7 round       $t8 gamma accumulator      $a2 golden-ratio const
  //   $a3 0x...FF mask scratch
  const std::string src = std::string(R"(
    la    $s0, sbox
    li    $s1, 0x08000000        # key[4] at RAM+0
    li    $s2, 0x08000020        # first block
    addiu $s3, $zero, )") + std::to_string(blocks) + R"(
    li    $a2, 0x9E3779B9

  block_loop:
    lw    $s5, 0($s2)            # L = d0
    lw    $s6, 4($s2)            # R = d1
    addiu $s7, $zero, 0          # round = 0
    addiu $t8, $zero, 0          # gamma = 0

  round_loop:
    addu  $t8, $t8, $a2          # gamma += 0x9E3779B9 (== c*(round+1))

    # rk = rotl32(key[round & 3] ^ gamma, round)
    andi  $t0, $s7, 3
    sll   $t0, $t0, 2
    addu  $t0, $t0, $s1
    lw    $t1, 0($t0)            # key[round & 3]
    xor   $t1, $t1, $t8
    sllv  $t2, $t1, $s7
    addiu $t3, $zero, 32
    subu  $t3, $t3, $s7
    andi  $t3, $t3, 31
    srlv  $t3, $t1, $t3
    or    $t1, $t2, $t3          # rk

    # F(R, rk) = rotl32(substitute(R ^ rk), 5) ^ (R >> 3)
    xor   $t1, $s6, $t1          # x = R ^ rk
    # substitute: four S-box byte lookups
    andi  $t2, $t1, 0xFF
    addu  $t2, $t2, $s0
    lbu   $t4, 0($t2)            # sbox[x & FF]
    srl   $t2, $t1, 8
    andi  $t2, $t2, 0xFF
    addu  $t2, $t2, $s0
    lbu   $t5, 0($t2)
    sll   $t5, $t5, 8
    or    $t4, $t4, $t5
    srl   $t2, $t1, 16
    andi  $t2, $t2, 0xFF
    addu  $t2, $t2, $s0
    lbu   $t5, 0($t2)
    sll   $t5, $t5, 16
    or    $t4, $t4, $t5
    srl   $t2, $t1, 24
    addu  $t2, $t2, $s0
    lbu   $t5, 0($t2)
    sll   $t5, $t5, 24
    or    $t4, $t4, $t5          # substituted
    # rotl 5
    sll   $t5, $t4, 5
    srl   $t4, $t4, 27
    or    $t4, $t5, $t4
    # ^ (R >> 3)
    srl   $t5, $s6, 3
    xor   $t4, $t4, $t5          # f

    # Feistel swap: t = R; R = L ^ f; L = t
    move  $t5, $s6
    xor   $s6, $s5, $t4
    move  $s5, $t5

    addiu $s7, $s7, 1
    addiu $t0, $zero, 16
    bne   $s7, $t0, round_loop

    # Final swap: d0 = R, d1 = L
    sw    $s6, 0($s2)
    sw    $s5, 4($s2)
    addiu $s2, $s2, 8
    addiu $s3, $s3, -1
    bne   $s3, $zero, block_loop
    break

  sbox:
    .word 0x7B777C63, 0xC56F6BF2, 0x2B670130, 0x76ABD7FE
    .word 0x7DC982CA, 0xF04759FA, 0xAFA2D4AD, 0xC072A49C
    .word 0x2693FDB7, 0xCCF73F36, 0xF1E5A534, 0x1531D871
    .word 0xC323C704, 0x9A059618, 0xE2801207, 0x75B227EB
    .word 0x1A2C8309, 0xA05A6E1B, 0xB3D63B52, 0x842FE329
    .word 0xED00D153, 0x5BB1FC20, 0x39BECB6A, 0xCF584C4A
    .word 0xFBAAEFD0, 0x85334D43, 0x7F02F945, 0xA89F3C50
    .word 0x8F40A351, 0xF5389D92, 0x21DAB6BC, 0xD2F3FF10
    .word 0xEC130CCD, 0x1744975F, 0x3D7EA7C4, 0x73195D64
    .word 0xDC4F8160, 0x88902A22, 0x14B8EE46, 0xDB0B5EDE
    .word 0x0A3A32E0, 0x5C240649, 0x62ACD3C2, 0x79E49591
    .word 0x6D37C8E7, 0xA94ED58D, 0xEAF4566C, 0x08AE7A65
    .word 0x2E2578BA, 0xC6B4A61C, 0x1F74DDE8, 0x8A8BBD4B
    .word 0x66B53E70, 0x0EF60348, 0xB9573561, 0x9E1DC186
    .word 0x1198F8E1, 0x948ED969, 0xE9871E9B, 0xDF2855CE
    .word 0x0D89A18C, 0x6842E6BF, 0x0F2D9941, 0x16BB54B0
  )";
  return assemble(src, memmap::kRomBase);
}

} // namespace sct::soc
