// ISO 7816-style APDU command interpreter (firmware + host helpers).
//
// Smart cards speak command/response APDUs over their serial interface;
// this module makes the simulated platform do its actual job. The
// firmware (MIPS assembly, generated here) polls the UART for a command
// header CLA INS P1 P2 LC, optionally reads LC data bytes, dispatches:
//
//   INS 0x20 VERIFY               — compare LC=4 bytes with the ROM PIN;
//                                   SW 9000 on match, 63C0 otherwise.
//   INS 0x84 GET CHALLENGE        — respond with 4 TRNG bytes, SW 9000.
//   INS 0x88 INTERNAL AUTHENTICATE— LC=8 challenge through the crypto
//                                   coprocessor, 8 ciphertext bytes,
//                                   SW 9000 (requires prior VERIFY;
//                                   SW 6982 otherwise).
//   anything else                 — SW 6D00 (INS not supported).
//   CLA 0xFF                      — end of session: SW 9000, halt.
//
// The host side drives the session from C++: queue a command into the
// UART receiver, run the simulation until the response (data + status
// word) has been transmitted, repeat.
#ifndef SCT_SOC_APDU_H
#define SCT_SOC_APDU_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "soc/assembler.h"
#include "soc/smartcard.h"

namespace sct::soc::apdu {

inline constexpr std::uint8_t kInsVerify = 0x20;
inline constexpr std::uint8_t kInsGetChallenge = 0x84;
inline constexpr std::uint8_t kInsInternalAuth = 0x88;
inline constexpr std::uint8_t kClaEndSession = 0xFF;

inline constexpr std::uint16_t kSwOk = 0x9000;
inline constexpr std::uint16_t kSwPinWrong = 0x63C0;
inline constexpr std::uint16_t kSwNotVerified = 0x6982;
inline constexpr std::uint16_t kSwInsNotSupported = 0x6D00;

/// The card applet. `pin` is burned into ROM (4 bytes); the
/// authentication key is the fixed 128-bit key below.
AssembledProgram cardApplet(const std::uint8_t pin[4]);

/// Same applet with extra assembly spliced in between the reset-time
/// register setup and the command-wait loop — a boot prelude. The
/// prelude runs exactly once per cold boot, may clobber $t*/$a*/$v*
/// and rely on $s0=UART, $s1=TRNG, $s2=crypto SFR bases, and must not
/// define labels colliding with the applet's. An empty prelude yields
/// an image byte-identical to cardApplet(pin). The serve daemon uses
/// this to model a realistic card OS cold boot (RAM zeroization,
/// EEPROM scan, crypto self-test) that snapshot-recycled sessions
/// never pay again.
AssembledProgram cardApplet(const std::uint8_t pin[4],
                            std::string_view bootPrelude);

/// The INTERNAL AUTHENTICATE key the applet uses (shared with hosts
/// that want to verify the cryptogram).
inline constexpr std::uint32_t kAuthKey[4] = {0x0F1E2D3C, 0x4B5A6978,
                                              0x8796A5B4, 0xC3D2E1F0};

struct Command {
  std::uint8_t cla = 0x00;
  std::uint8_t ins = 0x00;
  std::uint8_t p1 = 0x00;
  std::uint8_t p2 = 0x00;
  std::vector<std::uint8_t> data;  ///< LC bytes.

  std::vector<std::uint8_t> encode() const;
};

struct Response {
  std::vector<std::uint8_t> data;
  std::uint16_t sw = 0;
};

/// Host-side session driver for a SmartCardSoC running cardApplet().
template <typename SocT>
class Session {
 public:
  explicit Session(SocT& card) : card_(card) {}

  /// Send a command and run the simulation until the response (
  /// `expectData` payload bytes + 2 status bytes) arrived. Returns
  /// false on timeout.
  bool exchange(const Command& cmd, std::size_t expectData, Response& out,
                std::uint64_t maxCycles = 2'000'000) {
    for (std::uint8_t b : cmd.encode()) card_.uart().injectReceive(b);
    const std::size_t want =
        card_.uart().transmitted().size() + expectData + 2;
    const std::uint64_t start = card_.clock().cycle();
    while (card_.uart().transmitted().size() < want &&
           card_.clock().cycle() - start < maxCycles &&
           !card_.cpu().halted()) {
      card_.clock().runCycles(16);
    }
    const std::string& tx = card_.uart().transmitted();
    if (tx.size() < want) return false;
    out.data.assign(tx.end() - static_cast<long>(expectData) - 2,
                    tx.end() - 2);
    out.sw = static_cast<std::uint16_t>(
        (static_cast<std::uint8_t>(tx[tx.size() - 2]) << 8) |
        static_cast<std::uint8_t>(tx[tx.size() - 1]));
    return true;
  }

 private:
  SocT& card_;
};

} // namespace sct::soc::apdu

#endif // SCT_SOC_APDU_H
