// Two-pass assembler for the MIPS32 subset.
//
// The paper drove its RTL and TLM verification with assembly test
// programs; this assembler lets tests, examples and benches write them
// as text. Supported: all instructions of soc/isa.h, labels, `.org` /
// `.word` / `.space` directives, `#`/`;` comments, numeric ($0..$31)
// and ABI register names, and the pseudo-instructions
// `li` (lui+ori), `la` (lui+ori), `move`, `b` and `nop`.
#ifndef SCT_SOC_ASSEMBLER_H
#define SCT_SOC_ASSEMBLER_H

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bus/ec_types.h"

namespace sct::soc {

class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("asm line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

struct AssembledProgram {
  bus::Address origin = 0;  ///< Address of words[0].
  std::vector<std::uint32_t> words;
  std::map<std::string, bus::Address> labels;

  const std::uint8_t* bytes() const {
    return reinterpret_cast<const std::uint8_t*>(words.data());
  }
  std::size_t byteSize() const { return words.size() * 4; }

  bus::Address label(const std::string& name) const {
    const auto it = labels.find(name);
    if (it == labels.end()) {
      throw std::out_of_range("unknown label: " + name);
    }
    return it->second;
  }
};

/// Assemble `source`; the program starts at `origin` unless an `.org`
/// directive appears before the first emitted word. Throws AsmError.
AssembledProgram assemble(std::string_view source, bus::Address origin = 0);

/// Register number for "$t0", "$4", "$ra", ... Throws AsmError(0, ...)
/// on unknown names (exposed for tests).
unsigned parseRegister(std::string_view token);

} // namespace sct::soc

#endif // SCT_SOC_ASSEMBLER_H
