// Smart-card peripherals (Figure 1 of the paper): timers, UART, true
// random number generator, interrupt system — and the cryptographic
// coprocessor whose HW/SW interface motivates the paper's exploration.
//
// All peripherals are memory-mapped register slaves on the EC bus
// controller; their register traffic is what the "early energy
// estimation for several different typical smart card components"
// extension (paper, Section 5) measures.
#ifndef SCT_SOC_PERIPHERALS_H
#define SCT_SOC_PERIPHERALS_H

#include <cstdint>
#include <deque>
#include <string>

#include "bus/register_slave.h"
#include "ckpt/state_io.h"
#include "sim/clock.h"
#include "sim/random.h"

namespace sct::soc {

/// Aggregates peripheral interrupt lines into a memory-mapped pending /
/// enable register pair. The core observes interrupts by polling STATUS
/// (documented simplification of the 4KSc's interrupt system).
///
/// Register map (word offsets): +0x0 STATUS (R, W1C), +0x4 ENABLE (RW).
class InterruptController final : public bus::RegisterSlave {
 public:
  InterruptController(std::string name, const bus::SlaveControl& control);

  void raise(unsigned line) { pending_ |= (1u << line); }
  std::uint32_t pending() const { return pending_ & enable_; }

  /// -- Checkpoint (see ckpt/checkpoint.h).
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    RegisterSlave::saveState(w);
    w.u32(pending_);
    w.u32(enable_);
  }
  void loadState(ckpt::StateReader& r) {
    RegisterSlave::loadState(r);
    pending_ = r.u32();
    enable_ = r.u32();
  }

 private:
  bus::Word pending_ = 0;
  bus::Word enable_ = 0;
};

/// 16-bit timer with prescaler and compare interrupt.
///
/// Register map: +0x0 COUNT (R), +0x4 COMPARE (RW), +0x8 CTRL (RW:
/// bit0 enable, bits8..15 prescaler), +0xC STATUS (R, any write clears;
/// bit0 = compare match).
class Timer final : public bus::RegisterSlave {
 public:
  Timer(sim::Clock& clock, std::string name,
        const bus::SlaveControl& control,
        InterruptController* irq = nullptr, unsigned irqLine = 0);
  ~Timer() override;

  std::uint32_t count() const { return count_; }
  bool matched() const { return (status_ & 1u) != 0; }
  /// Monotonic tick counter (does not wrap with COUNT).
  std::uint64_t ticks() const { return ticks_; }

  /// -- Checkpoint (see ckpt/checkpoint.h).
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    RegisterSlave::saveState(w);
    w.u32(count_);
    w.u64(ticks_);
    w.u32(compare_);
    w.u32(ctrl_);
    w.u32(status_);
    w.u64(prescale_);
  }
  void loadState(ckpt::StateReader& r) {
    RegisterSlave::loadState(r);
    count_ = r.u32();
    ticks_ = r.u64();
    compare_ = r.u32();
    ctrl_ = r.u32();
    status_ = r.u32();
    prescale_ = static_cast<unsigned>(r.u64());
  }

 private:
  void tick();

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  InterruptController* irq_;
  unsigned irqLine_;
  bus::Word count_ = 0;
  std::uint64_t ticks_ = 0;
  bus::Word compare_ = 0;
  bus::Word ctrl_ = 0;
  bus::Word status_ = 0;
  unsigned prescale_ = 0;
};

/// Transmit-only-plus-loopback UART.
///
/// Register map: +0x0 DATA (W: transmit byte; R: receive byte),
/// +0x4 STATUS (R: bit0 tx ready, bit1 rx available).
class Uart final : public bus::RegisterSlave {
 public:
  /// `cyclesPerByte` models the shifting time; STATUS bit0 drops while
  /// a byte is on the wire.
  Uart(sim::Clock& clock, std::string name,
       const bus::SlaveControl& control, unsigned cyclesPerByte = 16);
  ~Uart() override;

  const std::string& transmitted() const { return tx_; }
  std::uint64_t bytesTransmitted() const { return tx_.size(); }
  void injectReceive(std::uint8_t byte) { rx_.push_back(byte); }
  bool txBusy() const { return busyCycles_ > 0; }

  /// -- Checkpoint (see ckpt/checkpoint.h): the transmit log travels so
  /// a restored run ends with the same transmitted() string as the
  /// uninterrupted one.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    RegisterSlave::saveState(w);
    w.u64(busyCycles_);
    w.str(tx_);
    w.u64(static_cast<std::uint64_t>(rx_.size()));
    for (const std::uint8_t b : rx_) w.u8(b);
  }
  void loadState(ckpt::StateReader& r) {
    RegisterSlave::loadState(r);
    busyCycles_ = static_cast<unsigned>(r.u64());
    tx_ = r.str();
    rx_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) rx_.push_back(r.u8());
  }

 private:
  void tick();

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  unsigned cyclesPerByte_;
  unsigned busyCycles_ = 0;
  std::string tx_;
  std::deque<std::uint8_t> rx_;
};

/// True random number generator (entropy source modeled by a seeded
/// PRNG so simulations stay reproducible).
///
/// Register map: +0x0 DATA (R: next 32 random bits), +0x4 STATUS
/// (R: bit0 always ready).
class Trng final : public bus::RegisterSlave {
 public:
  Trng(std::string name, const bus::SlaveControl& control,
       std::uint64_t seed = 0xC0FFEE);

  std::uint64_t wordsDrawn() const { return drawn_; }

  /// -- Checkpoint (see ckpt/checkpoint.h): the PRNG state travels, so
  /// a restored run draws the identical "entropy" stream.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    RegisterSlave::saveState(w);
    rng_.saveState(w);
    w.u64(drawn_);
  }
  void loadState(ckpt::StateReader& r) {
    RegisterSlave::loadState(r);
    rng_.loadState(r);
    drawn_ = r.u64();
  }

 private:
  sim::Xoshiro256 rng_;
  std::uint64_t drawn_ = 0;
};

/// Cryptographic coprocessor: a 16-round Feistel block cipher on
/// 64-bit blocks with a 128-bit key (a stand-in for the DES/3DES
/// engines of real smart cards — same interface shape, same
/// key-dependent data activity, no cryptographic strength claimed).
///
/// Register map: +0x00..0x0C KEY0..KEY3 (W), +0x10 DATA0 (RW),
/// +0x14 DATA1 (RW), +0x18 CTRL (W: 1 = encrypt, 2 = decrypt),
/// +0x1C STATUS (R: bit0 busy). Reading DATA while busy stalls the bus
/// (dynamic wait states — visible at layers 0/1, invisible at layer 2).
class CryptoCoprocessor final : public bus::RegisterSlave {
 public:
  static constexpr unsigned kRounds = 16;

  CryptoCoprocessor(sim::Clock& clock, std::string name,
                    const bus::SlaveControl& control,
                    unsigned cyclesPerRound = 2,
                    InterruptController* irq = nullptr,
                    unsigned irqLine = 1);
  ~CryptoCoprocessor() override;

  bool busy() const { return busyCycles_ > 0; }
  std::uint64_t operations() const { return operations_; }

  /// Side-channel leak model of the internal datapath (src/sca). The
  /// bus-level power model only sees register traffic; the attack
  /// surface of a real coprocessor is the round datapath itself —
  /// every round, the (l, r) state register pair toggles by the
  /// Hamming distance between consecutive round states. With
  /// `hdCoeff_fJ` non-zero, the engine emits that HD × coefficient as
  /// internal energy on the clock tick each round completes
  /// (internalEnergyLastCycle_fJ — an accessor, never folded into the
  /// bus power model, so every existing energy total is unchanged).
  ///
  /// `maskRounds` is the countermeasure knob: the emitted HDs are
  /// computed over a boolean-masked state trajectory (fresh masks per
  /// round drawn statelessly from (maskSeed, operation#, round)), so
  /// the leak decorrelates from the data while ciphertext and timing
  /// stay identical.
  struct LeakConfig {
    double hdCoeff_fJ = 0.0;    ///< fJ per toggled state bit (0 = off).
    bool maskRounds = false;    ///< Masking countermeasure on/off.
    std::uint64_t maskSeed = 0; ///< Mask stream seed.
  };

  /// The leak schedule is derived state: recomputed here, in start()
  /// and in loadState() from the already-checkpointed key/data/mode
  /// latches — never serialized, so the checkpoint byte layout (and
  /// the ckpt golden file) is untouched.
  void setLeakModel(const LeakConfig& cfg) {
    leak_ = cfg;
    rebuildLeakSchedule();
  }
  const LeakConfig& leakModel() const { return leak_; }

  /// Internal (datapath) energy emitted on the last clock tick, fJ.
  /// Zero when idle, between round boundaries, or with the model off.
  double internalEnergyLastCycle_fJ() const { return lastLeak_fJ_; }

  /// The round function's substitution box (for attack hypothesis
  /// computation in src/sca — the analyzer models what the hardware
  /// does, it does not peek at secrets).
  static std::uint8_t sbox(std::uint8_t v);

  /// Reads of DATA0/DATA1 answer Wait while an operation is running:
  /// dynamic wait states the layer-2 timing estimation cannot see.
  bus::BusStatus readBeat(bus::Address addr, bus::AccessSize size,
                          bus::Word& out) override;

  /// Reference software implementation of the same cipher (for tests
  /// and for the SW-vs-HW energy comparison).
  static void encryptBlock(const std::uint32_t key[4], std::uint32_t& d0,
                           std::uint32_t& d1);
  static void decryptBlock(const std::uint32_t key[4], std::uint32_t& d0,
                           std::uint32_t& d1);

  /// -- Checkpoint (see ckpt/checkpoint.h): key, data latches and the
  /// countdown of an operation in progress.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const {
    RegisterSlave::saveState(w);
    w.u64(busyCycles_);
    w.u32(pendingMode_);
    for (const bus::Word k : key_) w.u32(k);
    for (const bus::Word d : data_) w.u32(d);
    w.u64(operations_);
  }
  void loadState(ckpt::StateReader& r) {
    RegisterSlave::loadState(r);
    busyCycles_ = static_cast<unsigned>(r.u64());
    pendingMode_ = r.u32();
    for (bus::Word& k : key_) k = r.u32();
    for (bus::Word& d : data_) d = r.u32();
    operations_ = r.u64();
    // Mid-operation restore: the data latches still hold the operation
    // input (the cipher only executes on the completion tick), so the
    // restored schedule is identical to the one the interrupted run
    // computed at start().
    rebuildLeakSchedule();
  }

 private:
  void tick();
  void start(bus::Word mode);
  void rebuildLeakSchedule();

  sim::Clock& clock_;
  sim::Clock::HandlerId handlerId_;
  InterruptController* irq_;
  unsigned irqLine_;
  unsigned cyclesPerRound_;
  unsigned busyCycles_ = 0;
  bus::Word pendingMode_ = 0;
  bus::Word key_[4] = {};
  bus::Word data_[2] = {};
  std::uint64_t operations_ = 0;

  // Leak model (derived state — see LeakConfig; none of it serialized).
  LeakConfig leak_;
  bool leakValid_ = false;
  std::uint32_t leakSchedule_[kRounds] = {};
  double lastLeak_fJ_ = 0.0;
};

} // namespace sct::soc

#endif // SCT_SOC_PERIPHERALS_H
