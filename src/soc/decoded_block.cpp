#include "soc/decoded_block.h"

#include <bit>

namespace sct::soc {

namespace {

/// Ops after which straight-line decoding cannot continue: the
/// successor is never pc+4 (jumps, ERET) or the core halts
/// (SYSCALL/BREAK/invalid). Conditional branches are *not* terminators:
/// their fall-through successor keeps the superblock alive, and a taken
/// branch simply drops the dispatch cursor at retire time.
bool endsBlock(Op op) {
  switch (op) {
    case Op::J:
    case Op::Jal:
    case Op::Jr:
    case Op::Jalr:
    case Op::Eret:
    case Op::Syscall:
    case Op::Break:
    case Op::Invalid:
      return true;
    default:
      return false;
  }
}

} // namespace

BlockCache::BlockCache(std::size_t icacheLineCount, std::size_t lineBytes)
    : lineShift_(static_cast<unsigned>(std::countr_zero(lineBytes))),
      lineMask_(icacheLineCount - 1),
      gens_(icacheLineCount, 0),
      slots_(kSlots) {}

void BlockCache::flush() {
  for (Block& b : slots_) b.count = 0;
}

const BlockCache::Block* BlockCache::build(bus::Address pc,
                                           const Cache& icache) {
  Block& b = slots_[slotOf(pc)];
  b.startPc = pc;
  b.count = 0;
  bus::Address a = pc;
  for (std::size_t n = 0; n < kMaxOps; ++n, a += 4) {
    bus::Word w = 0;
    if (!icache.peekWord(a, w)) break;  // Line not resident: stop here.
    CachedOp& op = b.ops[n];
    op.d = decode(w);
    op.lineGen = gens_[lineIndexOf(a)];
    b.count = static_cast<std::uint16_t>(n + 1);
    if (endsBlock(op.d.op)) break;
  }
  ++stats_.builds;
  return &b;
}

} // namespace sct::soc
