#include "soc/cache.h"

namespace sct::soc {

namespace {
bool isPow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }
} // namespace

Cache::Cache(std::size_t sizeBytes, std::size_t lineBytes)
    : lineBytes_(lineBytes) {
  if (!isPow2(sizeBytes) || !isPow2(lineBytes) || lineBytes < 4 ||
      sizeBytes < lineBytes) {
    throw std::invalid_argument("Cache: sizes must be powers of two");
  }
  lines_.resize(sizeBytes / lineBytes);
  for (Line& l : lines_) l.words.resize(lineBytes / 4, 0);
}

Cache::Line& Cache::lineFor(bus::Address addr) {
  const std::size_t index =
      static_cast<std::size_t>(lineBase(addr) / lineBytes_) % lines_.size();
  return lines_[index];
}

const Cache::Line& Cache::lineFor(bus::Address addr) const {
  const std::size_t index =
      static_cast<std::size_t>((addr & ~static_cast<bus::Address>(
                                           lineBytes_ - 1)) /
                               lineBytes_) %
      lines_.size();
  return lines_[index];
}

bool Cache::contains(bus::Address addr) const {
  const Line& l = lineFor(addr);
  return l.valid && l.tagBase == (addr & ~static_cast<bus::Address>(
                                             lineBytes_ - 1));
}

bool Cache::lookupWord(bus::Address addr, bus::Word& out) {
  Line& l = lineFor(addr);
  if (l.valid && l.tagBase == lineBase(addr)) {
    out = l.words[static_cast<std::size_t>((addr - l.tagBase) / 4)];
    ++stats_.hits;
    return true;
  }
  ++stats_.misses;
  return false;
}

bool Cache::peekWord(bus::Address addr, bus::Word& out) const {
  const Line& l = lineFor(addr);
  if (l.valid && l.tagBase == lineBase(addr)) {
    out = l.words[static_cast<std::size_t>((addr - l.tagBase) / 4)];
    return true;
  }
  return false;
}

void Cache::fillLine(bus::Address addr, const bus::Word* words) {
  Line& l = lineFor(addr);
  l.valid = true;
  l.tagBase = lineBase(addr);
  for (std::size_t i = 0; i < l.words.size(); ++i) l.words[i] = words[i];
}

void Cache::updateIfPresent(bus::Address addr, bus::Word value,
                            std::uint8_t byteEnables) {
  Line& l = lineFor(addr);
  if (!l.valid || l.tagBase != lineBase(addr)) return;
  bus::Word& w = l.words[static_cast<std::size_t>((addr - l.tagBase) / 4)];
  for (unsigned lane = 0; lane < 4; ++lane) {
    if (byteEnables & (1u << lane)) {
      const bus::Word mask = bus::Word{0xFF} << (8 * lane);
      w = (w & ~mask) | (value & mask);
    }
  }
}

bool Cache::invalidate(bus::Address addr) {
  Line& l = lineFor(addr);
  if (l.valid && l.tagBase == lineBase(addr)) {
    l.valid = false;
    return true;
  }
  return false;
}

void Cache::invalidateAll() {
  for (Line& l : lines_) l.valid = false;
}

void Cache::saveState(ckpt::StateWriter& w) const {
  w.u64(static_cast<std::uint64_t>(lineBytes_));
  w.u64(static_cast<std::uint64_t>(lines_.size()));
  for (const Line& l : lines_) {
    w.b(l.valid);
    w.u64(l.tagBase);
    for (const bus::Word v : l.words) w.u32(v);
  }
  w.u64(stats_.hits);
  w.u64(stats_.misses);
}

void Cache::loadState(ckpt::StateReader& r) {
  if (r.u64() != lineBytes_ || r.u64() != lines_.size()) {
    throw ckpt::CheckpointError(
        "Cache::loadState: geometry differs from the saved cache");
  }
  for (Line& l : lines_) {
    l.valid = r.b();
    l.tagBase = r.u64();
    for (bus::Word& v : l.words) v = r.u32();
  }
  stats_.hits = r.u64();
  stats_.misses = r.u64();
}

} // namespace sct::soc
