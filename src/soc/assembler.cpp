#include "soc/assembler.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>

#include "soc/isa.h"

namespace sct::soc {

namespace {

constexpr std::array<std::string_view, 32> kAbiNames{
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0",   "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0",   "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8",   "t9", "k0", "k1", "gp", "sp", "fp", "ra"};

std::string toLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

/// One source statement after tokenization.
struct Statement {
  std::size_t line;
  std::string mnemonic;             // Lower-case, empty for pure labels.
  std::vector<std::string> operands;
};

std::string stripComment(const std::string& line) {
  const std::size_t pos = line.find_first_of("#;");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool validLabelName(const std::string& s) {
  if (s.empty() || (!std::isalpha(static_cast<unsigned char>(s[0])) &&
                    s[0] != '_' && s[0] != '.')) {
    return false;
  }
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isalnum(c) || c == '_' || c == '.';
  });
}

} // namespace

unsigned parseRegister(std::string_view token) {
  if (token.empty() || token[0] != '$') {
    throw AsmError(0, "expected register, got '" + std::string(token) + "'");
  }
  const std::string body = toLower(token.substr(1));
  if (!body.empty() && std::isdigit(static_cast<unsigned char>(body[0]))) {
    const unsigned n = static_cast<unsigned>(std::stoul(body));
    if (n > 31) throw AsmError(0, "register number out of range");
    return n;
  }
  for (unsigned i = 0; i < kAbiNames.size(); ++i) {
    if (kAbiNames[i] == body) return i;
  }
  throw AsmError(0, "unknown register '" + std::string(token) + "'");
}

namespace {

class Assembler {
 public:
  Assembler(std::string_view source, bus::Address origin)
      : origin_(origin) {
    tokenize(source);
  }

  AssembledProgram run() {
    layout();           // Pass 1: label addresses.
    emitAll();          // Pass 2: encode.
    AssembledProgram p;
    p.origin = origin_;
    p.words = std::move(words_);
    p.labels = std::move(labels_);
    return p;
  }

 private:
  // --- Tokenization --------------------------------------------------------

  void tokenize(std::string_view source) {
    std::istringstream in{std::string(source)};
    std::string raw;
    std::size_t lineNo = 0;
    while (std::getline(in, raw)) {
      ++lineNo;
      std::string line = trim(stripComment(raw));
      // Peel leading labels ("loop:" possibly followed by code).
      while (true) {
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos) break;
        const std::string head = trim(line.substr(0, colon));
        if (!validLabelName(head)) break;
        Statement label;
        label.line = lineNo;
        label.mnemonic = ":" + head;  // Marker for a label definition.
        stmts_.push_back(label);
        line = trim(line.substr(colon + 1));
      }
      if (line.empty()) continue;
      Statement st;
      st.line = lineNo;
      const std::size_t sp = line.find_first_of(" \t");
      st.mnemonic = toLower(line.substr(0, sp));
      if (sp != std::string::npos) {
        std::string rest = trim(line.substr(sp));
        std::string cur;
        for (char c : rest) {
          if (c == ',') {
            st.operands.push_back(trim(cur));
            cur.clear();
          } else {
            cur += c;
          }
        }
        if (!trim(cur).empty()) st.operands.push_back(trim(cur));
      }
      stmts_.push_back(st);
    }
  }

  // --- Sizing / layout -----------------------------------------------------

  /// Number of words a statement emits.
  std::size_t wordsFor(const Statement& st) const {
    if (st.mnemonic[0] == ':') return 0;
    if (st.mnemonic == ".org") return 0;
    if (st.mnemonic == ".word") return st.operands.size();
    if (st.mnemonic == ".byte") {
      // Bytes pack into words, padded to the next word boundary.
      return (st.operands.size() + 3) / 4;
    }
    if (st.mnemonic == ".ascii" || st.mnemonic == ".asciz") {
      return (asciiBytes(st).size() + 3) / 4;
    }
    if (st.mnemonic == ".space") {
      return (parseNumber(st, st.operands.at(0)) + 3) / 4;
    }
    if (st.mnemonic == "li" || st.mnemonic == "la") return 2;
    return 1;
  }

  /// Decode the string literal of an .ascii/.asciz directive
  /// (re-joining operands, since commas may appear inside the quotes).
  std::vector<std::uint8_t> asciiBytes(const Statement& st) const {
    std::string joined;
    for (std::size_t i = 0; i < st.operands.size(); ++i) {
      if (i > 0) joined += ",";
      joined += st.operands[i];
    }
    if (joined.size() < 2 || joined.front() != '"' ||
        joined.back() != '"') {
      throw AsmError(st.line, ".ascii expects a quoted string");
    }
    std::vector<std::uint8_t> bytes;
    for (std::size_t i = 1; i + 1 < joined.size(); ++i) {
      char c = joined[i];
      if (c == '\\' && i + 2 < joined.size()) {
        const char esc = joined[++i];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '"': c = '"'; break;
          default:
            throw AsmError(st.line, "unknown escape in string");
        }
      }
      bytes.push_back(static_cast<std::uint8_t>(c));
    }
    if (st.mnemonic == ".asciz") bytes.push_back(0);
    return bytes;
  }

  void emitPackedBytes(const std::vector<std::uint8_t>& bytes) {
    for (std::size_t i = 0; i < bytes.size(); i += 4) {
      std::uint32_t w = 0;
      for (std::size_t k = 0; k < 4 && i + k < bytes.size(); ++k) {
        w |= static_cast<std::uint32_t>(bytes[i + k]) << (8 * k);
      }
      words_.push_back(w);
    }
  }

  void layout() {
    bus::Address addr = origin_;
    bool originFixed = false;
    for (const Statement& st : stmts_) {
      if (st.mnemonic[0] == ':') {
        labels_[st.mnemonic.substr(1)] = addr;
        continue;
      }
      if (st.mnemonic == ".org") {
        const std::int64_t raw = parseNumber(st, operand(st, 0));
        if (raw < 0) throw AsmError(st.line, ".org address is negative");
        const auto target = static_cast<bus::Address>(raw);
        if (!originFixed && words_.empty() && addr == origin_) {
          origin_ = target;
          addr = target;
          originFixed = true;
        } else if (target < addr) {
          throw AsmError(st.line, ".org may not move backwards");
        } else {
          addr = target;
        }
        continue;
      }
      addr += 4 * wordsFor(st);
      if ((addr & 0x3u) != 0) {
        throw AsmError(st.line, "unaligned layout");
      }
    }
  }

  // --- Emission ------------------------------------------------------------

  void emitAll() {
    bus::Address addr = origin_;
    for (const Statement& st : stmts_) {
      if (st.mnemonic[0] == ':') continue;
      if (st.mnemonic == ".org") {
        const auto target =
            static_cast<bus::Address>(parseNumber(st, operand(st, 0)));
        if (target == origin_ && words_.empty()) {
          addr = target;
          continue;
        }
        while (addr < target) {
          words_.push_back(0);
          addr += 4;
        }
        continue;
      }
      const std::size_t before = words_.size();
      emit(st, addr);
      addr += 4 * (words_.size() - before);
    }
  }

  const std::string& operand(const Statement& st, std::size_t i) const {
    if (i >= st.operands.size()) {
      throw AsmError(st.line, "missing operand " + std::to_string(i + 1) +
                                  " for '" + st.mnemonic + "'");
    }
    return st.operands[i];
  }

  std::int64_t parseNumber(const Statement& st, const std::string& tok) const {
    try {
      std::size_t used = 0;
      const std::int64_t v = std::stoll(tok, &used, 0);
      if (used != tok.size()) throw std::invalid_argument(tok);
      return v;
    } catch (const std::exception&) {
      throw AsmError(st.line, "bad number '" + tok + "'");
    }
  }

  /// Number or label value.
  std::int64_t value(const Statement& st, const std::string& tok) const {
    const auto it = labels_.find(tok);
    if (it != labels_.end()) return static_cast<std::int64_t>(it->second);
    return parseNumber(st, tok);
  }

  unsigned reg(const Statement& st, const std::string& tok) const {
    try {
      return parseRegister(tok);
    } catch (const AsmError& e) {
      throw AsmError(st.line, e.what());
    }
  }

  std::uint16_t imm16(const Statement& st, std::int64_t v) const {
    if (v < -32768 || v > 65535) {
      throw AsmError(st.line, "immediate out of 16-bit range");
    }
    return static_cast<std::uint16_t>(v & 0xFFFF);
  }

  std::uint16_t branchOffset(const Statement& st, const std::string& tok,
                             bus::Address pc) const {
    const std::int64_t target = value(st, tok);
    const std::int64_t diff = (target - static_cast<std::int64_t>(pc + 4)) / 4;
    if (diff < -32768 || diff > 32767) {
      throw AsmError(st.line, "branch target out of range");
    }
    return static_cast<std::uint16_t>(diff & 0xFFFF);
  }

  /// Parse "imm($reg)" memory operands.
  void memOperand(const Statement& st, const std::string& tok,
                  unsigned& base, std::int64_t& offset) const {
    const std::size_t open = tok.find('(');
    const std::size_t close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      throw AsmError(st.line, "bad memory operand '" + tok + "'");
    }
    const std::string offTok = trim(tok.substr(0, open));
    offset = offTok.empty() ? 0 : value(st, offTok);
    base = reg(st, trim(tok.substr(open + 1, close - open - 1)));
  }

  void emit(const Statement& st, bus::Address pc) {
    const std::string& m = st.mnemonic;

    // Directives.
    if (m == ".word") {
      for (const std::string& tok : st.operands) {
        words_.push_back(static_cast<std::uint32_t>(value(st, tok)));
      }
      return;
    }
    if (m == ".byte") {
      std::vector<std::uint8_t> bytes;
      for (const std::string& tok : st.operands) {
        const std::int64_t v = value(st, tok);
        if (v < -128 || v > 255) {
          throw AsmError(st.line, ".byte value out of range");
        }
        bytes.push_back(static_cast<std::uint8_t>(v & 0xFF));
      }
      emitPackedBytes(bytes);
      return;
    }
    if (m == ".ascii" || m == ".asciz") {
      emitPackedBytes(asciiBytes(st));
      return;
    }
    if (m == ".space") {
      const std::size_t n =
          static_cast<std::size_t>((parseNumber(st, operand(st, 0)) + 3) / 4);
      words_.insert(words_.end(), n, 0);
      return;
    }

    // Pseudo-instructions.
    if (m == "nop") {
      words_.push_back(kNop);
      return;
    }
    if (m == "move") {
      const unsigned rd = reg(st, operand(st, 0));
      const unsigned rs = reg(st, operand(st, 1));
      words_.push_back(encodeR(0, rs, 0, rd, 0, 0x25));  // or rd, rs, $0
      return;
    }
    if (m == "li" || m == "la") {
      const unsigned rt = reg(st, operand(st, 0));
      const std::uint32_t v =
          static_cast<std::uint32_t>(value(st, operand(st, 1)));
      words_.push_back(encodeI(0x0F, 0, rt, static_cast<std::uint16_t>(
                                                v >> 16)));  // lui
      words_.push_back(encodeI(0x0D, rt, rt,
                               static_cast<std::uint16_t>(v & 0xFFFF)));
      return;
    }
    if (m == "b") {
      words_.push_back(
          encodeI(0x04, 0, 0, branchOffset(st, operand(st, 0), pc)));
      return;
    }
    if (m == "beqz" || m == "bnez") {
      const unsigned rs = reg(st, operand(st, 0));
      words_.push_back(encodeI(m == "beqz" ? 0x04 : 0x05, rs, 0,
                               branchOffset(st, operand(st, 1), pc)));
      return;
    }
    if (m == "neg" || m == "negu") {
      const unsigned rd = reg(st, operand(st, 0));
      const unsigned rs = reg(st, operand(st, 1));
      words_.push_back(encodeR(0, 0, rs, rd, 0, 0x23));  // subu rd,$0,rs
      return;
    }
    if (m == "syscall") {
      words_.push_back(kSyscall);
      return;
    }
    if (m == "break") {
      words_.push_back(kBreak);
      return;
    }
    if (m == "eret") {
      words_.push_back(kEret);
      return;
    }

    // R-type three-register ALU.
    static const std::map<std::string, unsigned> rFunct{
        {"addu", 0x21}, {"subu", 0x23}, {"and", 0x24}, {"or", 0x25},
        {"xor", 0x26},  {"nor", 0x27},  {"slt", 0x2A}, {"sltu", 0x2B},
        {"sllv", 0x04}, {"srlv", 0x06}, {"srav", 0x07}};
    if (const auto it = rFunct.find(m); it != rFunct.end()) {
      const unsigned rd = reg(st, operand(st, 0));
      const unsigned rs = reg(st, operand(st, 1));
      const unsigned rt = reg(st, operand(st, 2));
      // Shift-variable forms take (rd, rt, rs) order per MIPS syntax.
      if (m == "sllv" || m == "srlv" || m == "srav") {
        words_.push_back(encodeR(0, rt, rs, rd, 0, it->second));
      } else {
        words_.push_back(encodeR(0, rs, rt, rd, 0, it->second));
      }
      return;
    }

    // Shifts with immediate amount.
    static const std::map<std::string, unsigned> shifts{
        {"sll", 0x00}, {"srl", 0x02}, {"sra", 0x03}};
    if (const auto it = shifts.find(m); it != shifts.end()) {
      const unsigned rd = reg(st, operand(st, 0));
      const unsigned rt = reg(st, operand(st, 1));
      const auto sh = parseNumber(st, operand(st, 2));
      if (sh < 0 || sh > 31) throw AsmError(st.line, "shift out of range");
      words_.push_back(
          encodeR(0, 0, rt, rd, static_cast<unsigned>(sh), it->second));
      return;
    }

    // I-type ALU.
    static const std::map<std::string, unsigned> iOps{
        {"addiu", 0x09}, {"slti", 0x0A}, {"sltiu", 0x0B},
        {"andi", 0x0C},  {"ori", 0x0D},  {"xori", 0x0E}};
    if (const auto it = iOps.find(m); it != iOps.end()) {
      const unsigned rt = reg(st, operand(st, 0));
      const unsigned rs = reg(st, operand(st, 1));
      words_.push_back(encodeI(it->second, rs, rt,
                               imm16(st, value(st, operand(st, 2)))));
      return;
    }
    if (m == "lui") {
      const unsigned rt = reg(st, operand(st, 0));
      words_.push_back(
          encodeI(0x0F, 0, rt, imm16(st, value(st, operand(st, 1)))));
      return;
    }

    // Loads / stores.
    static const std::map<std::string, unsigned> mems{
        {"lb", 0x20}, {"lh", 0x21}, {"lw", 0x23}, {"lbu", 0x24},
        {"lhu", 0x25}, {"sb", 0x28}, {"sh", 0x29}, {"sw", 0x2B}};
    if (const auto it = mems.find(m); it != mems.end()) {
      const unsigned rt = reg(st, operand(st, 0));
      unsigned base = 0;
      std::int64_t off = 0;
      memOperand(st, operand(st, 1), base, off);
      words_.push_back(encodeI(it->second, base, rt, imm16(st, off)));
      return;
    }

    // Branches.
    if (m == "beq" || m == "bne") {
      const unsigned rs = reg(st, operand(st, 0));
      const unsigned rt = reg(st, operand(st, 1));
      words_.push_back(encodeI(m == "beq" ? 0x04 : 0x05, rs, rt,
                               branchOffset(st, operand(st, 2), pc)));
      return;
    }
    if (m == "blez" || m == "bgtz") {
      const unsigned rs = reg(st, operand(st, 0));
      words_.push_back(encodeI(m == "blez" ? 0x06 : 0x07, rs, 0,
                               branchOffset(st, operand(st, 1), pc)));
      return;
    }
    if (m == "bltz" || m == "bgez") {
      const unsigned rs = reg(st, operand(st, 0));
      words_.push_back(encodeI(0x01, rs, m == "bltz" ? 0 : 1,
                               branchOffset(st, operand(st, 1), pc)));
      return;
    }

    // Multiply/divide unit.
    static const std::map<std::string, unsigned> mdOps{
        {"mult", 0x18}, {"multu", 0x19}, {"div", 0x1A}, {"divu", 0x1B}};
    if (const auto it = mdOps.find(m); it != mdOps.end()) {
      const unsigned rs = reg(st, operand(st, 0));
      const unsigned rt = reg(st, operand(st, 1));
      words_.push_back(encodeR(0, rs, rt, 0, 0, it->second));
      return;
    }
    if (m == "mfhi" || m == "mflo") {
      const unsigned rd = reg(st, operand(st, 0));
      words_.push_back(
          encodeR(0, 0, 0, rd, 0, m == "mfhi" ? 0x10 : 0x12));
      return;
    }
    if (m == "mthi" || m == "mtlo") {
      const unsigned rs = reg(st, operand(st, 0));
      words_.push_back(
          encodeR(0, rs, 0, 0, 0, m == "mthi" ? 0x11 : 0x13));
      return;
    }

    // Jumps.
    if (m == "j" || m == "jal") {
      const std::int64_t target = value(st, operand(st, 0));
      words_.push_back(encodeJ(m == "j" ? 0x02 : 0x03,
                               static_cast<std::uint32_t>(target >> 2)));
      return;
    }
    if (m == "jr") {
      words_.push_back(encodeR(0, reg(st, operand(st, 0)), 0, 0, 0, 0x08));
      return;
    }
    if (m == "jalr") {
      const unsigned rd =
          st.operands.size() > 1 ? reg(st, operand(st, 0)) : 31u;
      const unsigned rs = st.operands.size() > 1
                              ? reg(st, operand(st, 1))
                              : reg(st, operand(st, 0));
      words_.push_back(encodeR(0, rs, 0, rd, 0, 0x09));
      return;
    }

    throw AsmError(st.line, "unknown mnemonic '" + m + "'");
  }

  bus::Address origin_;
  std::vector<Statement> stmts_;
  std::vector<std::uint32_t> words_;
  std::map<std::string, bus::Address> labels_;
};

} // namespace

AssembledProgram assemble(std::string_view source, bus::Address origin) {
  return Assembler(source, origin).run();
}

} // namespace sct::soc
