// The smart-card SoC of the paper's Figure 1.
//
// Assembles the complete target platform: MIPS-subset core with I/D
// caches behind the EC bus controller, the three program memories
// (256 KiB ROM, 32 KiB EEPROM, 64 KiB FLASH), scratchpad RAM, and the
// smart-card peripherals (interrupt system, two 16-bit timers, UART,
// true RNG, crypto coprocessor). The bus layer is a
// template parameter: instantiate with bus::Tl1Bus for transaction-
// level simulation or ref::GlBus for the signal-accurate reference
// (extra constructor arguments are forwarded to the bus).
#ifndef SCT_SOC_SMARTCARD_H
#define SCT_SOC_SMARTCARD_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "bus/memory_slave.h"
#include "ckpt/checkpoint.h"
#include "sim/clock.h"
#include "sim/kernel.h"
#include "sim/time.h"
#include "soc/assembler.h"
#include "soc/cpu.h"
#include "soc/peripherals.h"

namespace sct::soc {

/// Fixed physical memory map (36-bit EC address space).
namespace memmap {
inline constexpr bus::Address kRomBase = 0x00000000;
inline constexpr bus::Address kRomSize = 256 * 1024;
inline constexpr bus::Address kRamBase = 0x08000000;
inline constexpr bus::Address kRamSize = 8 * 1024;
inline constexpr bus::Address kEepromBase = 0x0A000000;
inline constexpr bus::Address kEepromSize = 32 * 1024;
inline constexpr bus::Address kFlashBase = 0x0C000000;
inline constexpr bus::Address kFlashSize = 64 * 1024;
inline constexpr bus::Address kSfrBase = 0x10000000;
inline constexpr bus::Address kIrqBase = kSfrBase + 0x000;
inline constexpr bus::Address kTimerBase = kSfrBase + 0x100;
inline constexpr bus::Address kTimer2Base = kSfrBase + 0x500;
inline constexpr bus::Address kUartBase = kSfrBase + 0x200;
inline constexpr bus::Address kTrngBase = kSfrBase + 0x300;
inline constexpr bus::Address kCryptoBase = kSfrBase + 0x400;
inline constexpr bus::Address kSfrWindow = 0x100;
/// Interrupt vector: firmware that unmasks interrupt lines places its
/// handler here (and returns with ERET).
inline constexpr bus::Address kIrqVector = kRomBase + 0x200;
} // namespace memmap

struct SocConfig {
  /// 33 MHz class smart-card clock (30 ns period, even in picoseconds).
  sim::Time clockPeriodPs = 30'000;
  CpuConfig cpu;
  unsigned eepromExtraWritePerBeat = 2;  ///< Dynamic programming stretch.

  SocConfig() { cpu.irqVector = memmap::kIrqVector; }
};

template <typename BusT>
class SmartCardSoC {
 public:
  template <typename... BusArgs>
  explicit SmartCardSoC(const SocConfig& config, BusArgs&&... busArgs)
      : clock_(kernel_, "clk", config.clockPeriodPs),
        bus_(clock_, "ecbus", std::forward<BusArgs>(busArgs)...),
        rom_("rom", romCtl()),
        ram_("ram", ramCtl()),
        eeprom_("eeprom", eepromCtl()),
        flash_("flash", flashCtl()),
        irqc_("irqc", sfrCtl(memmap::kIrqBase)),
        timer_(clock_, "timer0", sfrCtl(memmap::kTimerBase), &irqc_, 0),
        timer2_(clock_, "timer1", sfrCtl(memmap::kTimer2Base), &irqc_, 2),
        uart_(clock_, "uart", sfrCtl(memmap::kUartBase)),
        trng_("trng", sfrCtl(memmap::kTrngBase)),
        crypto_(clock_, "crypto", sfrCtl(memmap::kCryptoBase), 2, &irqc_, 1),
        cpu_(clock_, "cpu", bus_, bus_, config.cpu) {
    eeprom_.setExtraWritePerBeat(config.eepromExtraWritePerBeat);
    cpu_.setInterruptSource([this] { return irqc_.pending(); });
    bus_.attach(rom_);
    bus_.attach(ram_);
    bus_.attach(eeprom_);
    bus_.attach(flash_);
    bus_.attach(irqc_);
    bus_.attach(timer_);
    bus_.attach(timer2_);
    bus_.attach(uart_);
    bus_.attach(trng_);
    bus_.attach(crypto_);
  }

  /// Load an assembled program into whichever memory its origin maps
  /// to, and point the core's reset PC at it.
  void loadProgram(const AssembledProgram& program) {
    memoryAt(program.origin).load(program.origin, program.bytes(),
                                  program.byteSize());
    cpu_.reset(program.origin);
  }

  /// Backdoor data load (e.g. constants into EEPROM).
  void loadData(bus::Address address, const std::uint8_t* data,
                std::size_t n) {
    memoryAt(address).load(address, data, n);
  }

  bool run(std::uint64_t maxCycles = 10'000'000) {
    return cpu_.runUntilHalt(maxCycles);
  }

  /// Bind every component to `reg` in construction order. Registration
  /// order is also load order: the Kernel must restore before the clock
  /// re-arms its edge activation, and the clock before anything whose
  /// park state it owns. Only instantiable for bus types with
  /// checkpoint support (bus::Tl1Bus; the ref::GlBus reference has
  /// none — don't call this on a reference platform).
  void registerCheckpoint(ckpt::CheckpointRegistry& reg) {
    reg.add("kernel", kernel_);
    reg.add("clk", clock_);
    reg.add("ecbus", bus_);
    reg.add("rom", rom_);
    reg.add("ram", ram_);
    reg.add("eeprom", eeprom_);
    reg.add("flash", flash_);
    reg.add("irqc", irqc_);
    reg.add("timer0", timer_);
    reg.add("timer1", timer2_);
    reg.add("uart", uart_);
    reg.add("trng", trng_);
    reg.add("crypto", crypto_);
    reg.add("cpu", cpu_);
  }

  /// Convenience wrappers over a one-shot registry.
  ckpt::Snapshot checkpoint() {
    ckpt::CheckpointRegistry reg;
    registerCheckpoint(reg);
    return reg.saveAll();
  }
  void restore(const ckpt::Snapshot& snap) {
    ckpt::CheckpointRegistry reg;
    registerCheckpoint(reg);
    reg.loadAll(snap);
  }

  sim::Kernel& kernel() { return kernel_; }
  sim::Clock& clock() { return clock_; }
  BusT& bus() { return bus_; }
  MipsCore& cpu() { return cpu_; }
  bus::MemorySlave& rom() { return rom_; }
  bus::MemorySlave& ram() { return ram_; }
  bus::MemorySlave& eeprom() { return eeprom_; }
  bus::MemorySlave& flash() { return flash_; }
  InterruptController& irqController() { return irqc_; }
  Timer& timer() { return timer_; }
  Timer& timer2() { return timer2_; }
  Uart& uart() { return uart_; }
  Trng& trng() { return trng_; }
  CryptoCoprocessor& crypto() { return crypto_; }

 private:
  static bus::SlaveControl romCtl() {
    bus::SlaveControl c;
    c.base = memmap::kRomBase;
    c.size = memmap::kRomSize;
    c.canWrite = false;
    return c;
  }
  static bus::SlaveControl ramCtl() {
    bus::SlaveControl c;
    c.base = memmap::kRamBase;
    c.size = memmap::kRamSize;
    return c;
  }
  static bus::SlaveControl eepromCtl() {
    bus::SlaveControl c;
    c.base = memmap::kEepromBase;
    c.size = memmap::kEepromSize;
    c.readWait = 1;
    c.writeWait = 3;
    return c;
  }
  static bus::SlaveControl flashCtl() {
    bus::SlaveControl c;
    c.base = memmap::kFlashBase;
    c.size = memmap::kFlashSize;
    c.readWait = 1;
    c.canWrite = false;
    return c;
  }
  static bus::SlaveControl sfrCtl(bus::Address base) {
    bus::SlaveControl c;
    c.base = base;
    c.size = memmap::kSfrWindow;
    c.canExec = false;
    return c;
  }

  bus::MemorySlave& memoryAt(bus::Address address) {
    for (bus::MemorySlave* m : {&rom_, &ram_, &eeprom_, &flash_}) {
      if (m->control().contains(address)) return *m;
    }
    throw std::out_of_range("SmartCardSoC: address maps to no memory");
  }

  sim::Kernel kernel_;
  sim::Clock clock_;
  BusT bus_;
  bus::MemorySlave rom_;
  bus::MemorySlave ram_;
  bus::MemorySlave eeprom_;
  bus::MemorySlave flash_;
  InterruptController irqc_;
  Timer timer_;
  Timer timer2_;
  Uart uart_;
  Trng trng_;
  CryptoCoprocessor crypto_;
  MipsCore cpu_;
};

} // namespace sct::soc

#endif // SCT_SOC_SMARTCARD_H
