#include "soc/isa.h"

namespace sct::soc {

DecodedInstr decode(std::uint32_t w) {
  DecodedInstr d;
  if (w == kEret) {
    d.op = Op::Eret;
    return d;
  }
  const unsigned opcode = w >> 26;
  d.rs = static_cast<std::uint8_t>((w >> 21) & 0x1F);
  d.rt = static_cast<std::uint8_t>((w >> 16) & 0x1F);
  d.rd = static_cast<std::uint8_t>((w >> 11) & 0x1F);
  d.shamt = static_cast<std::uint8_t>((w >> 6) & 0x1F);
  d.simm = static_cast<std::int32_t>(static_cast<std::int16_t>(w & 0xFFFF));
  d.uimm = w & 0xFFFF;
  d.target = w & 0x3FFFFFF;

  switch (opcode) {
    case 0x00: {  // SPECIAL
      switch (w & 0x3F) {
        case 0x00: d.op = Op::Sll; break;
        case 0x02: d.op = Op::Srl; break;
        case 0x03: d.op = Op::Sra; break;
        case 0x04: d.op = Op::Sllv; break;
        case 0x06: d.op = Op::Srlv; break;
        case 0x07: d.op = Op::Srav; break;
        case 0x08: d.op = Op::Jr; break;
        case 0x09: d.op = Op::Jalr; break;
        case 0x10: d.op = Op::Mfhi; break;
        case 0x11: d.op = Op::Mthi; break;
        case 0x12: d.op = Op::Mflo; break;
        case 0x13: d.op = Op::Mtlo; break;
        case 0x18: d.op = Op::Mult; break;
        case 0x19: d.op = Op::Multu; break;
        case 0x1A: d.op = Op::Div; break;
        case 0x1B: d.op = Op::Divu; break;
        case 0x0C: d.op = Op::Syscall; break;
        case 0x0D: d.op = Op::Break; break;
        case 0x21: d.op = Op::Addu; break;
        case 0x23: d.op = Op::Subu; break;
        case 0x24: d.op = Op::And; break;
        case 0x25: d.op = Op::Or; break;
        case 0x26: d.op = Op::Xor; break;
        case 0x27: d.op = Op::Nor; break;
        case 0x2A: d.op = Op::Slt; break;
        case 0x2B: d.op = Op::Sltu; break;
        default: d.op = Op::Invalid; break;
      }
      break;
    }
    case 0x01: {  // REGIMM
      switch (d.rt) {
        case 0x00: d.op = Op::Bltz; break;
        case 0x01: d.op = Op::Bgez; break;
        default: d.op = Op::Invalid; break;
      }
      break;
    }
    case 0x02: d.op = Op::J; break;
    case 0x03: d.op = Op::Jal; break;
    case 0x04: d.op = Op::Beq; break;
    case 0x05: d.op = Op::Bne; break;
    case 0x06: d.op = Op::Blez; break;
    case 0x07: d.op = Op::Bgtz; break;
    case 0x09: d.op = Op::Addiu; break;
    case 0x0A: d.op = Op::Slti; break;
    case 0x0B: d.op = Op::Sltiu; break;
    case 0x0C: d.op = Op::Andi; break;
    case 0x0D: d.op = Op::Ori; break;
    case 0x0E: d.op = Op::Xori; break;
    case 0x0F: d.op = Op::Lui; break;
    case 0x20: d.op = Op::Lb; break;
    case 0x21: d.op = Op::Lh; break;
    case 0x23: d.op = Op::Lw; break;
    case 0x24: d.op = Op::Lbu; break;
    case 0x25: d.op = Op::Lhu; break;
    case 0x28: d.op = Op::Sb; break;
    case 0x29: d.op = Op::Sh; break;
    case 0x2B: d.op = Op::Sw; break;
    default: d.op = Op::Invalid; break;
  }
  return d;
}

std::string mnemonic(Op op) {
  switch (op) {
    case Op::Addu: return "addu";
    case Op::Subu: return "subu";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Nor: return "nor";
    case Op::Slt: return "slt";
    case Op::Sltu: return "sltu";
    case Op::Sll: return "sll";
    case Op::Srl: return "srl";
    case Op::Sra: return "sra";
    case Op::Sllv: return "sllv";
    case Op::Srlv: return "srlv";
    case Op::Srav: return "srav";
    case Op::Mult: return "mult";
    case Op::Multu: return "multu";
    case Op::Div: return "div";
    case Op::Divu: return "divu";
    case Op::Mfhi: return "mfhi";
    case Op::Mflo: return "mflo";
    case Op::Mthi: return "mthi";
    case Op::Mtlo: return "mtlo";
    case Op::Jr: return "jr";
    case Op::Jalr: return "jalr";
    case Op::Addiu: return "addiu";
    case Op::Andi: return "andi";
    case Op::Ori: return "ori";
    case Op::Xori: return "xori";
    case Op::Slti: return "slti";
    case Op::Sltiu: return "sltiu";
    case Op::Lui: return "lui";
    case Op::Lb: return "lb";
    case Op::Lbu: return "lbu";
    case Op::Lh: return "lh";
    case Op::Lhu: return "lhu";
    case Op::Lw: return "lw";
    case Op::Sb: return "sb";
    case Op::Sh: return "sh";
    case Op::Sw: return "sw";
    case Op::Beq: return "beq";
    case Op::Bne: return "bne";
    case Op::Blez: return "blez";
    case Op::Bgtz: return "bgtz";
    case Op::Bltz: return "bltz";
    case Op::Bgez: return "bgez";
    case Op::J: return "j";
    case Op::Jal: return "jal";
    case Op::Syscall: return "syscall";
    case Op::Break: return "break";
    case Op::Eret: return "eret";
    case Op::Invalid: return "invalid";
  }
  return "?";
}

} // namespace sct::soc
