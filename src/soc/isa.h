// MIPS32 instruction subset: encodings and decoder.
//
// The target platform of the paper is built around a MIPS 4KSc
// smart-card core. This module defines the instruction subset our
// instruction-set simulator executes — standard MIPS32 encodings for
// the ALU, load/store, branch and jump instructions that smart-card
// firmware exercises, plus SYSCALL/BREAK as halt markers. Branch delay
// slots are not modeled (documented simplification: the simulator's
// purpose is generating realistic bus traffic, not micro-architectural
// fidelity).
#ifndef SCT_SOC_ISA_H
#define SCT_SOC_ISA_H

#include <cstdint>
#include <string>

namespace sct::soc {

/// Decoded operation kinds.
enum class Op : std::uint8_t {
  // R-type ALU.
  Addu, Subu, And, Or, Xor, Nor, Slt, Sltu,
  Sll, Srl, Sra, Sllv, Srlv, Srav,
  Mult, Multu, Div, Divu, Mfhi, Mflo, Mthi, Mtlo,
  Jr, Jalr,
  // I-type ALU.
  Addiu, Andi, Ori, Xori, Slti, Sltiu, Lui,
  // Loads/stores.
  Lb, Lbu, Lh, Lhu, Lw, Sb, Sh, Sw,
  // Branches.
  Beq, Bne, Blez, Bgtz, Bltz, Bgez,
  // Jumps.
  J, Jal,
  // System.
  Syscall, Break, Eret,
  Invalid,
};

struct DecodedInstr {
  Op op = Op::Invalid;
  std::uint8_t rs = 0;
  std::uint8_t rt = 0;
  std::uint8_t rd = 0;
  std::uint8_t shamt = 0;
  std::int32_t simm = 0;   ///< Sign-extended 16-bit immediate.
  std::uint32_t uimm = 0;  ///< Zero-extended 16-bit immediate.
  std::uint32_t target = 0;  ///< 26-bit jump target field.
};

/// Decode one 32-bit instruction word.
DecodedInstr decode(std::uint32_t word);

/// Mnemonic for diagnostics ("addu", "lw", ...).
std::string mnemonic(Op op);

// --- Encoders (used by the assembler and by tests) ---------------------

constexpr std::uint32_t encodeR(unsigned opcode, unsigned rs, unsigned rt,
                                unsigned rd, unsigned shamt,
                                unsigned funct) {
  return (opcode << 26) | (rs << 21) | (rt << 16) | (rd << 11) |
         (shamt << 6) | funct;
}

constexpr std::uint32_t encodeI(unsigned opcode, unsigned rs, unsigned rt,
                                std::uint16_t imm) {
  return (opcode << 26) | (rs << 21) | (rt << 16) | imm;
}

constexpr std::uint32_t encodeJ(unsigned opcode, std::uint32_t target26) {
  return (opcode << 26) | (target26 & 0x3FFFFFF);
}

// Frequently used fixed encodings.
constexpr std::uint32_t kNop = 0;  // sll r0, r0, 0
constexpr std::uint32_t kSyscall = 0x0000000C;
constexpr std::uint32_t kBreak = 0x0000000D;
constexpr std::uint32_t kEret = 0x42000018;  // COP0 ERET.

} // namespace sct::soc

#endif // SCT_SOC_ISA_H
