// Transition-resolved gate-level energy model (Diesel substitute).
//
// Computes, for each clock cycle, the energy dissipated by the EC
// interface wires when the signal state moves from `prev` to `next`:
//
//   * switching energy  ½·C_self·Vdd² per toggling wire, with a
//     direction asymmetry (rise vs. fall) and a slope-dependent
//     short-circuit adder — Diesel "distinguishes between all
//     combinations of signal transitions with regard to their signal
//     slopes";
//   * coupling energy between adjacent bits of a bundle (Miller effect:
//     opposite-direction toggles cost ~4× a single toggle against a
//     quiet neighbour);
//   * hazard (glitch) energy reported by the layer-0 protocol model for
//     combinational logic such as the address decoder — invisible to
//     transaction-level transition counting;
//   * a static baseline per cycle (leakage + clock/driver overhead of
//     the bus interface unit).
//
// All energies are in femtojoules. The model is deliberately *richer*
// than what the layer-1/layer-2 estimators can see: the gap is exactly
// the estimation error the paper's Table 2 quantifies.
#ifndef SCT_REF_ENERGY_H
#define SCT_REF_ENERGY_H

#include <array>
#include <cstdint>

#include "bus/ec_signals.h"
#include "ref/parasitics.h"

namespace sct::ref {

/// Extra transition-equivalents per bundle caused by combinational
/// hazards in one cycle (fractional counts are fine).
using GlitchCounts = std::array<double, bus::kSignalCount>;

struct ProcessParams {
  double vdd = 1.8;                ///< Supply voltage (0.18 µm class).
  double riseFactor = 1.08;        ///< Rising edges cost slightly more
  double fallFactor = 0.92;        ///  (driver asymmetry).
  /// Short-circuit adder per slope class, as a fraction of ½CV².
  std::array<double, 3> shortCircuitFactor{0.04, 0.10, 0.20};
  /// Coupling factors relative to ½·C_couple·Vdd².
  double coupleSingle = 1.0;   ///< One of the pair toggles.
  double coupleOpposite = 4.0; ///< Both toggle, opposite directions.
  double coupleSame = 0.0;     ///< Both toggle, same direction.
  /// Static baseline of the bus-interface region per cycle (fJ):
  /// leakage plus clock-tree/driver overhead. Dissipated whether or not
  /// the bus moves; reported separately from switching energy because
  /// it has no transaction-level counterpart (the layer-1/2 estimators
  /// structurally miss it — the dominant source of the layer-1
  /// under-estimation in Table 2).
  double baselinePerCycle_fJ = 300.0;
  /// Energy of one glitch transition-equivalent, as a fraction of the
  /// mean switching energy of the glitching bundle's wires.
  double glitchFactor = 0.85;
};

/// Per-cycle energy result. `perSignal_fJ` holds switching-related
/// energy only (dynamic + short-circuit + coupling + hazards);
/// `baseline_fJ` is the static per-cycle term (leakage, clock tree,
/// input drivers) that has no transaction-level counterpart — Diesel
/// reports it, the characterized coefficients deliberately do not
/// absorb it, and the transaction-level estimates therefore miss it.
struct CycleEnergy {
  double total_fJ = 0.0;  ///< Switching + baseline.
  double baseline_fJ = 0.0;
  std::array<double, bus::kSignalCount> perSignal_fJ{};
};

/// Accumulates reference energy and TL-visible transition counts over a
/// simulation; the characterizer derives per-signal coefficients from
/// one of these.
struct EnergyAccumulator {
  double total_fJ = 0.0;
  double baseline_fJ = 0.0;
  std::array<double, bus::kSignalCount> perSignal_fJ{};
  std::array<std::uint64_t, bus::kSignalCount> transitions{};
  /// Direction-resolved counts, as Diesel reports them ("the number of
  /// transitions between false, true and high-impedance" — we model
  /// two-state wires, so rising and falling).
  std::array<std::uint64_t, bus::kSignalCount> risingTransitions{};
  std::array<std::uint64_t, bus::kSignalCount> fallingTransitions{};
  std::uint64_t cycles = 0;

  void add(const CycleEnergy& e, const bus::SignalFrame& prev,
           const bus::SignalFrame& next);
};

class TransitionEnergyModel {
 public:
  TransitionEnergyModel(const ParasiticDb& db, const ProcessParams& params);

  /// Energy of one clock cycle moving the wires from `prev` to `next`,
  /// plus hazard activity reported by the protocol model.
  CycleEnergy cycleEnergy(const bus::SignalFrame& prev,
                          const bus::SignalFrame& next,
                          const GlitchCounts& glitches) const;

  const ProcessParams& params() const { return params_; }
  const ParasiticDb& parasitics() const { return db_; }

  /// ½·C·Vdd² for a capacitance in fF — the basic switching quantum.
  double halfCV2(double c_fF) const { return 0.5 * c_fF * params_.vdd * params_.vdd; }

 private:
  const ParasiticDb& db_;
  ProcessParams params_;
  std::array<double, bus::kSignalCount> meanSwitch_fJ_{};
};

} // namespace sct::ref

#endif // SCT_REF_ENERGY_H
