// Layer-0 reference bus: a signal-accurate model of the EC interface.
//
// This is the repository's stand-in for the paper's gate-level
// simulation. It implements the same EC protocol as the layer-1 model —
// but as an independently coded wire-level machine: every falling clock
// edge it produces the concrete value of all 122 EC interface wires
// (bus/ec_signals.h), feeds the transition-resolved energy model with
// the old and new frames plus combinational hazard activity, and hands
// each frame to registered listeners (VCD dump, characterizer).
//
// Master protocol and timing semantics are the EC rules of the paper:
// non-blocking request/wait/ok/error interfaces, up to four outstanding
// transactions per class, slave wait states for address/read/write
// phases, read and write data phases in parallel, same-cycle address →
// data hand-over. Cycle equality with the layer-1 model on arbitrary
// workloads is enforced by property tests — that equality is the
// paper's Table 1 "layer one = 0 % timing error" result.
#ifndef SCT_REF_GL_BUS_H
#define SCT_REF_GL_BUS_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "bus/decoder.h"
#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/ec_signals.h"
#include "bus/tl1_bus.h"
#include "ref/energy.h"
#include "sim/clock.h"
#include "sim/module.h"

namespace sct::ref {

/// Receives every completed signal frame of the reference simulation.
class FrameListener {
 public:
  virtual ~FrameListener() = default;
  virtual void onFrame(std::uint64_t cycle, const bus::SignalFrame& prev,
                       const bus::SignalFrame& next,
                       const GlitchCounts& glitches,
                       const CycleEnergy& energy) = 0;
};

/// Hazard-model parameters: transition-equivalents injected per changed
/// address bit when the address bus is re-driven (decoder and mux
/// hazards). Deterministic; documented in DESIGN.md.
struct HazardParams {
  double selectPerAddrBit = 0.30;
  double addrMuxPerAddrBit = 0.15;
};

class GlBus final : public sim::Module,
                    public bus::EcInstrIf,
                    public bus::EcDataIf {
 public:
  GlBus(sim::Clock& clock, std::string name,
        const TransitionEnergyModel& energyModel,
        const HazardParams& hazards = HazardParams{});
  ~GlBus() override;

  int attach(bus::EcSlave& slave) { return decoder_.attach(slave); }

  // Master interfaces (identical contract to the layer-1 bus).
  bus::BusStatus fetch(bus::Tl1Request& req) override;
  bus::BusStatus read(bus::Tl1Request& req) override;
  bus::BusStatus write(bus::Tl1Request& req) override;
  // The bus process moves req.stage to Finished itself; intermediate
  // polls are side-effect-free, so masters may gate on the stage field.
  bool publishesStage() const override { return true; }

  bool idle() const;

  void addFrameListener(FrameListener& l) { listeners_.push_back(&l); }
  void removeFrameListener(FrameListener& l);

  const EnergyAccumulator& energy() const { return energy_; }
  const bus::SignalFrame& frame() const { return frame_; }
  const bus::Tl1BusStats& stats() const { return stats_; }
  std::uint64_t cycle() const { return clock_.cycle(); }

 private:
  struct Slot {
    bus::Tl1Request* txn = nullptr;
    unsigned count = 0;  ///< Remaining wait cycles.
    unsigned beat = 0;
  };

  bus::BusStatus submitOrPoll(bus::Tl1Request& req, bus::Kind expectedKind);
  unsigned& outstanding(bus::Kind k);
  void process();
  void stepAddressUnit(bus::SignalFrame& next, GlitchCounts& glitches);
  void stepReadUnit(bus::SignalFrame& next);
  void stepWriteUnit(bus::SignalFrame& next);
  void retire(bus::Tl1Request& req, bus::BusStatus result);
  void driveAddress(bus::SignalFrame& next, GlitchCounts& glitches,
                    const bus::Tl1Request& req);

  sim::Clock& clock_;
  sim::Clock::HandlerId processId_;
  const TransitionEnergyModel& energyModel_;
  HazardParams hazards_;
  bus::AddressDecoder decoder_;
  std::vector<FrameListener*> listeners_;

  std::deque<bus::Tl1Request*> accepted_;
  std::deque<bus::Tl1Request*> readPending_;
  std::deque<bus::Tl1Request*> writePending_;
  Slot addrUnit_;
  Slot readUnit_;
  Slot writeUnit_;
  unsigned outstandingInstr_ = 0;
  unsigned outstandingRead_ = 0;
  unsigned outstandingWrite_ = 0;

  bus::SignalFrame frame_;  ///< Wire state after the last completed cycle.
  EnergyAccumulator energy_;
  bus::Tl1BusStats stats_;
};

} // namespace sct::ref

#endif // SCT_REF_GL_BUS_H
