#include "ref/gl_bus.h"

#include <algorithm>
#include <stdexcept>

namespace sct::ref {

using bus::AccessSize;
using bus::Address;
using bus::BusStatus;
using bus::Kind;
using bus::SignalFrame;
using bus::SignalId;
using bus::Tl1Request;
using bus::Tl1Stage;
using bus::Word;

GlBus::GlBus(sim::Clock& clock, std::string name,
             const TransitionEnergyModel& energyModel,
             const HazardParams& hazards)
    : sim::Module(clock.kernel(), std::move(name)),
      clock_(clock),
      energyModel_(energyModel),
      hazards_(hazards) {
  processId_ = clock_.onFalling([this] { process(); });
}

GlBus::~GlBus() { clock_.removeHandler(processId_); }

void GlBus::removeFrameListener(FrameListener& l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), &l),
                   listeners_.end());
}

// ---------------------------------------------------------------------------
// Master protocol (EC accept/poll rules)
// ---------------------------------------------------------------------------

BusStatus GlBus::fetch(Tl1Request& req) {
  return submitOrPoll(req, Kind::InstrFetch);
}
BusStatus GlBus::read(Tl1Request& req) {
  return submitOrPoll(req, Kind::Read);
}
BusStatus GlBus::write(Tl1Request& req) {
  return submitOrPoll(req, Kind::Write);
}

unsigned& GlBus::outstanding(Kind k) {
  switch (k) {
    case Kind::InstrFetch: return outstandingInstr_;
    case Kind::Read: return outstandingRead_;
    case Kind::Write: return outstandingWrite_;
  }
  return outstandingRead_;  // unreachable
}

BusStatus GlBus::submitOrPoll(Tl1Request& req, Kind expectedKind) {
  if (req.kind != expectedKind) {
    throw std::logic_error(name() +
                           ": request kind does not match the interface");
  }
  if (req.stage == Tl1Stage::Finished) {
    const BusStatus result = req.result;
    req.stage = Tl1Stage::Idle;
    return result;
  }
  if (req.stage != Tl1Stage::Idle) return BusStatus::Wait;

  const bool alignedOk =
      req.burst() ? (req.size == AccessSize::Word &&
                     bus::isAligned(AccessSize::Word, req.address))
                  : bus::isAligned(req.size, req.address);
  if (req.beats == 0 || req.beats > bus::kMaxBurstBeats || !alignedOk ||
      (req.address & ~bus::kAddressMask) != 0) {
    req.result = BusStatus::Error;
    return BusStatus::Error;
  }
  if (outstanding(req.kind) >= bus::kMaxOutstandingPerClass) {
    return BusStatus::Wait;
  }
  req.stage = Tl1Stage::Requested;
  req.result = BusStatus::Wait;
  req.beatsDone = 0;
  req.slave = -1;
  req.acceptCycle = clock_.cycle();
  ++outstanding(req.kind);
  accepted_.push_back(&req);
  return BusStatus::Request;
}

bool GlBus::idle() const {
  return accepted_.empty() && readPending_.empty() && writePending_.empty() &&
         addrUnit_.txn == nullptr && readUnit_.txn == nullptr &&
         writeUnit_.txn == nullptr;
}

void GlBus::retire(Tl1Request& req, BusStatus result) {
  req.result = result;
  req.stage = Tl1Stage::Finished;
  req.finishCycle = clock_.cycle();
  --outstanding(req.kind);
  switch (req.kind) {
    case Kind::InstrFetch: ++stats_.instrTransactions; break;
    case Kind::Read: ++stats_.readTransactions; break;
    case Kind::Write: ++stats_.writeTransactions; break;
  }
  if (result == BusStatus::Error) {
    if (req.kind == Kind::Write) {
      ++stats_.writeBusErrors;
    } else {
      ++stats_.readBusErrors;
    }
  }
}

// ---------------------------------------------------------------------------
// Wire-level cycle machine
// ---------------------------------------------------------------------------

void GlBus::process() {
  ++stats_.cycles;
  SignalFrame next = frame_;
  // Handshake strobes return to their inactive level every cycle; the
  // address/data buses, qualifiers and select lines hold their value.
  next.set(SignalId::EB_AValid, 0);
  next.set(SignalId::EB_ARdy, 0);
  next.set(SignalId::EB_RdVal, 0);
  next.set(SignalId::EB_RBErr, 0);
  next.set(SignalId::EB_WDRdy, 0);
  next.set(SignalId::EB_WBErr, 0);
  next.set(SignalId::EB_Last, 0);

  GlitchCounts glitches{};
  const bool busy = !idle();
  stepAddressUnit(next, glitches);
  stepReadUnit(next);
  stepWriteUnit(next);
  if (busy) ++stats_.busyCycles;

  const CycleEnergy e = energyModel_.cycleEnergy(frame_, next, glitches);
  energy_.add(e, frame_, next);
  for (FrameListener* l : listeners_) {
    l->onFrame(clock_.cycle(), frame_, next, glitches, e);
  }
  frame_ = next;
}

void GlBus::driveAddress(SignalFrame& next, GlitchCounts& glitches,
                         const Tl1Request& req) {
  const std::uint64_t oldAddr = next.get(SignalId::EB_A);
  if (oldAddr != (req.address & bus::kAddressMask)) {
    // Combinational hazards while the decoder and the address mux settle.
    const unsigned flipped =
        bus::hammingDistance(SignalId::EB_A, oldAddr, req.address);
    glitches[static_cast<std::size_t>(SignalId::EB_Sel)] +=
        hazards_.selectPerAddrBit * flipped;
    glitches[static_cast<std::size_t>(SignalId::EB_A)] +=
        hazards_.addrMuxPerAddrBit * flipped;
  }
  next.set(SignalId::EB_A, req.address);
  next.set(SignalId::EB_Instr, req.kind == Kind::InstrFetch ? 1 : 0);
  next.set(SignalId::EB_Write, req.kind == Kind::Write ? 1 : 0);
  next.set(SignalId::EB_Burst, req.burst() ? 1 : 0);
  next.set(SignalId::EB_BE, bus::byteEnables(req.size, req.address));
  next.set(SignalId::EB_AValid, 1);
  next.set(SignalId::EB_Sel, bus::AddressDecoder::selectMask(req.slave));
}

void GlBus::stepAddressUnit(SignalFrame& next, GlitchCounts& glitches) {
  if (addrUnit_.txn == nullptr) {
    if (accepted_.empty()) return;
    Tl1Request& req = *accepted_.front();
    accepted_.pop_front();
    addrUnit_.txn = &req;
    req.stage = Tl1Stage::Address;
    req.slave = decoder_.decode(req.address);
    bool error = req.slave < 0;
    if (!error) {
      const bus::SlaveControl& c = decoder_.control(req.slave);
      error = !c.allows(req.kind) ||
              (req.burst() && !c.contains(req.address + 4u * req.beats - 1));
      addrUnit_.count = error ? 0 : c.addrWait;
    } else {
      addrUnit_.count = 0;
    }
    if (error) {
      driveAddress(next, glitches, req);
      next.set(SignalId::EB_Sel, 0);
      next.set(req.kind == Kind::Write ? SignalId::EB_WBErr
                                       : SignalId::EB_RBErr,
               1);
      next.set(SignalId::EB_Last, 1);  // The error terminates the burst.
      ++stats_.addrCycles;
      retire(req, BusStatus::Error);
      addrUnit_.txn = nullptr;
      return;
    }
  }

  Tl1Request& req = *addrUnit_.txn;
  ++stats_.addrCycles;
  driveAddress(next, glitches, req);
  if (addrUnit_.count > 0) {
    --addrUnit_.count;
    return;
  }
  next.set(SignalId::EB_ARdy, 1);
  req.stage = Tl1Stage::DataQueued;
  const bus::SlaveControl& c = decoder_.control(req.slave);
  if (req.kind == Kind::Write) {
    req.waitCount = c.writeWait;
    writePending_.push_back(&req);
  } else {
    req.waitCount = c.readWait;
    readPending_.push_back(&req);
  }
  addrUnit_.txn = nullptr;
}

void GlBus::stepReadUnit(SignalFrame& next) {
  if (readUnit_.txn == nullptr) {
    if (readPending_.empty()) return;
    readUnit_.txn = readPending_.front();
    readPending_.pop_front();
    readUnit_.txn->stage = Tl1Stage::Data;
    readUnit_.count = readUnit_.txn->waitCount;
    readUnit_.beat = 0;
  }
  Tl1Request& req = *readUnit_.txn;
  if (readUnit_.count > 0) {
    --readUnit_.count;
    return;
  }
  const Address beatAddr = req.address + 4u * readUnit_.beat;
  Word data = 0;
  const BusStatus s =
      decoder_.slave(req.slave).readBeat(beatAddr, req.size, data);
  if (s == BusStatus::Wait) return;
  if (s == BusStatus::Error) {
    next.set(SignalId::EB_RBErr, 1);
    next.set(SignalId::EB_Last, 1);
    ++stats_.readBeats;
    retire(req, BusStatus::Error);
    readUnit_.txn = nullptr;
    return;
  }
  req.data[readUnit_.beat] = data;
  next.set(SignalId::EB_RData, data);
  next.set(SignalId::EB_RdVal, 1);
  ++stats_.readBeats;
  stats_.bytesRead += req.burst() ? 4 : static_cast<unsigned>(req.size);
  ++readUnit_.beat;
  req.beatsDone = static_cast<std::uint8_t>(readUnit_.beat);
  if (readUnit_.beat == req.beats) {
    next.set(SignalId::EB_Last, 1);
    retire(req, BusStatus::Ok);
    readUnit_.txn = nullptr;
  } else {
    readUnit_.count = decoder_.control(req.slave).burstBeatWait;
  }
}

void GlBus::stepWriteUnit(SignalFrame& next) {
  if (writeUnit_.txn == nullptr) {
    if (writePending_.empty()) return;
    writeUnit_.txn = writePending_.front();
    writePending_.pop_front();
    writeUnit_.txn->stage = Tl1Stage::Data;
    writeUnit_.count = writeUnit_.txn->waitCount;
    writeUnit_.beat = 0;
  }
  Tl1Request& req = *writeUnit_.txn;
  if (writeUnit_.count > 0) {
    --writeUnit_.count;
    return;
  }
  const Address beatAddr = req.address + 4u * writeUnit_.beat;
  const Word data = req.data[writeUnit_.beat];
  const BusStatus s = decoder_.slave(req.slave).writeBeat(
      beatAddr, req.size, bus::byteEnables(req.size, beatAddr), data);
  if (s == BusStatus::Wait) return;
  if (s == BusStatus::Error) {
    next.set(SignalId::EB_WBErr, 1);
    next.set(SignalId::EB_Last, 1);
    ++stats_.writeBeats;
    retire(req, BusStatus::Error);
    writeUnit_.txn = nullptr;
    return;
  }
  next.set(SignalId::EB_WData, data);
  next.set(SignalId::EB_WDRdy, 1);
  ++stats_.writeBeats;
  stats_.bytesWritten += req.burst() ? 4 : static_cast<unsigned>(req.size);
  ++writeUnit_.beat;
  req.beatsDone = static_cast<std::uint8_t>(writeUnit_.beat);
  if (writeUnit_.beat == req.beats) {
    next.set(SignalId::EB_Last, 1);
    retire(req, BusStatus::Ok);
    writeUnit_.txn = nullptr;
  } else {
    writeUnit_.count = decoder_.control(req.slave).burstBeatWait;
  }
}

} // namespace sct::ref
