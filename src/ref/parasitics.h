// Wire-level parasitic database.
//
// The paper's reference numbers come from Diesel, a gate-level power
// estimator that uses layout-extracted parasitic capacitances and
// resistances for every wire plus macro-cell characterization. We have
// no Philips layout database, so this module synthesizes a plausible
// one: every wire of the EC interface gets a self capacitance, a
// coupling capacitance to its bundle neighbour, a series resistance and
// a slope class, drawn deterministically from per-bundle ranges that
// reflect geometry (long, heavily loaded address/data buses; short
// control strobes; medium select lines). The substitution preserves
// what the experiments need: a transition-resolved, wire-resolved
// energy reference that transaction-level estimation can be compared
// against (DESIGN.md, Section 2).
#ifndef SCT_REF_PARASITICS_H
#define SCT_REF_PARASITICS_H

#include <array>
#include <cstdint>
#include <vector>

#include "bus/ec_signals.h"

namespace sct::ref {

/// Signal slope classes; slower slopes burn more short-circuit current.
enum class SlopeClass : std::uint8_t { Fast = 0, Medium = 1, Slow = 2 };

struct WireParasitics {
  double cSelf_fF = 0.0;    ///< Wire-to-ground capacitance.
  double cCouple_fF = 0.0;  ///< Coupling capacitance to the next bit.
  double r_kOhm = 0.0;      ///< Series resistance (drives the slope).
  SlopeClass slope = SlopeClass::Fast;
};

/// Per-bundle geometry ranges used to synthesize wire parasitics.
struct BundleGeometry {
  double cSelfMin_fF;
  double cSelfMax_fF;
  double cCoupleMin_fF;
  double cCoupleMax_fF;
  double rMin_kOhm;
  double rMax_kOhm;
};

class ParasiticDb {
 public:
  /// Deterministically synthesize a database. The same seed always
  /// produces the same wires, so characterization and estimation agree
  /// across runs.
  static ParasiticDb makeDefault(std::uint64_t seed = 0x5C7CAFD);

  const WireParasitics& wire(bus::SignalId id, unsigned bit) const;

  /// Sum of self capacitances of a bundle (fF).
  double bundleCSelf_fF(bus::SignalId id) const;

  /// Total number of wires (all bundles).
  unsigned wireCount() const { return static_cast<unsigned>(wires_.size()); }

 private:
  ParasiticDb() = default;

  std::array<std::size_t, bus::kSignalCount> bundleOffset_{};
  std::vector<WireParasitics> wires_;
};

} // namespace sct::ref

#endif // SCT_REF_PARASITICS_H
