#include "ref/parasitics.h"

#include <stdexcept>

#include "sim/random.h"

namespace sct::ref {

namespace {

using bus::SignalId;

// Geometry classes. Address and data buses run across the bus-interface
// region (long, parallel, strongly coupled); handshake strobes are short
// point-to-point nets; select lines fan out from the decoder.
constexpr BundleGeometry kLongBus{180.0, 340.0, 45.0, 95.0, 0.8, 2.2};
constexpr BundleGeometry kControl{55.0, 120.0, 8.0, 22.0, 0.3, 0.9};
constexpr BundleGeometry kSelect{90.0, 180.0, 15.0, 40.0, 0.5, 1.4};

const BundleGeometry& geometryFor(SignalId id) {
  switch (id) {
    case SignalId::EB_A:
    case SignalId::EB_RData:
    case SignalId::EB_WData:
      return kLongBus;
    case SignalId::EB_Sel:
      return kSelect;
    default:
      return kControl;
  }
}

SlopeClass slopeFromR(double r_kOhm) {
  if (r_kOhm < 0.7) return SlopeClass::Fast;
  if (r_kOhm < 1.5) return SlopeClass::Medium;
  return SlopeClass::Slow;
}

double uniform(sim::Xoshiro256& rng, double lo, double hi) {
  // 2^53 grid is far finer than any physical extraction tolerance.
  const double u = static_cast<double>(rng.next() >> 11) * 0x1p-53;
  return lo + u * (hi - lo);
}

} // namespace

ParasiticDb ParasiticDb::makeDefault(std::uint64_t seed) {
  ParasiticDb db;
  sim::Xoshiro256 rng(seed);
  for (const auto& info : bus::kSignalTable) {
    db.bundleOffset_[static_cast<std::size_t>(info.id)] = db.wires_.size();
    const BundleGeometry& g = geometryFor(info.id);
    for (unsigned bit = 0; bit < info.width; ++bit) {
      WireParasitics w;
      w.cSelf_fF = uniform(rng, g.cSelfMin_fF, g.cSelfMax_fF);
      // The last bit of a bundle has no upper neighbour to couple to.
      w.cCouple_fF = (bit + 1 < info.width)
                         ? uniform(rng, g.cCoupleMin_fF, g.cCoupleMax_fF)
                         : 0.0;
      w.r_kOhm = uniform(rng, g.rMin_kOhm, g.rMax_kOhm);
      w.slope = slopeFromR(w.r_kOhm);
      db.wires_.push_back(w);
    }
  }
  return db;
}

const WireParasitics& ParasiticDb::wire(bus::SignalId id, unsigned bit) const {
  const auto& info = bus::signalInfo(id);
  if (bit >= info.width) {
    throw std::out_of_range("ParasiticDb::wire: bit beyond bundle width");
  }
  return wires_[bundleOffset_[static_cast<std::size_t>(id)] + bit];
}

double ParasiticDb::bundleCSelf_fF(bus::SignalId id) const {
  const auto& info = bus::signalInfo(id);
  double sum = 0.0;
  for (unsigned bit = 0; bit < info.width; ++bit) {
    sum += wire(id, bit).cSelf_fF;
  }
  return sum;
}

} // namespace sct::ref
