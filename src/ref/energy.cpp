#include "ref/energy.h"

namespace sct::ref {

using bus::SignalFrame;
using bus::SignalId;
using bus::kSignalCount;
using bus::kSignalTable;

void EnergyAccumulator::add(const CycleEnergy& e, const SignalFrame& prev,
                            const SignalFrame& next) {
  total_fJ += e.total_fJ;
  baseline_fJ += e.baseline_fJ;
  ++cycles;
  for (std::size_t i = 0; i < kSignalCount; ++i) {
    perSignal_fJ[i] += e.perSignal_fJ[i];
    const auto id = static_cast<SignalId>(i);
    const std::uint64_t p = prev.get(id);
    const std::uint64_t n = next.get(id);
    transitions[i] += bus::hammingDistance(id, p, n);
    risingTransitions[i] += bus::hammingDistance(id, 0, ~p & n);
    fallingTransitions[i] += bus::hammingDistance(id, 0, p & ~n);
  }
}

TransitionEnergyModel::TransitionEnergyModel(const ParasiticDb& db,
                                             const ProcessParams& params)
    : db_(db), params_(params) {
  // Precompute each bundle's mean switching energy for the glitch model.
  for (const auto& info : kSignalTable) {
    const std::size_t i = static_cast<std::size_t>(info.id);
    const double c = db_.bundleCSelf_fF(info.id);
    meanSwitch_fJ_[i] = halfCV2(c / info.width);
  }
}

CycleEnergy TransitionEnergyModel::cycleEnergy(
    const SignalFrame& prev, const SignalFrame& next,
    const GlitchCounts& glitches) const {
  CycleEnergy out;
  out.baseline_fJ = params_.baselinePerCycle_fJ;
  out.total_fJ = out.baseline_fJ;
  for (const auto& info : kSignalTable) {
    const std::size_t idx = static_cast<std::size_t>(info.id);
    const std::uint64_t p = prev.get(info.id);
    const std::uint64_t n = next.get(info.id);
    const std::uint64_t toggled = p ^ n;
    double e = 0.0;

    if (toggled != 0) {
      for (unsigned bit = 0; bit < info.width; ++bit) {
        const std::uint64_t mask = std::uint64_t{1} << bit;
        if ((toggled & mask) == 0) continue;
        const WireParasitics& w = db_.wire(info.id, bit);
        const bool rising = (n & mask) != 0;
        const double base = halfCV2(w.cSelf_fF);
        const double dir = rising ? params_.riseFactor : params_.fallFactor;
        const double sc =
            params_.shortCircuitFactor[static_cast<std::size_t>(w.slope)];
        e += base * (dir + sc);
      }
      // Coupling between adjacent bits of the bundle.
      for (unsigned bit = 0; bit + 1 < info.width; ++bit) {
        const std::uint64_t lo = std::uint64_t{1} << bit;
        const std::uint64_t hi = lo << 1;
        const bool tLo = (toggled & lo) != 0;
        const bool tHi = (toggled & hi) != 0;
        if (!tLo && !tHi) continue;
        const WireParasitics& w = db_.wire(info.id, bit);
        const double quantum = halfCV2(w.cCouple_fF);
        double factor;
        if (tLo && tHi) {
          const bool riseLo = (n & lo) != 0;
          const bool riseHi = (n & hi) != 0;
          factor = (riseLo == riseHi) ? params_.coupleSame
                                      : params_.coupleOpposite;
        } else {
          factor = params_.coupleSingle;
        }
        e += quantum * factor;
      }
    }
    // Hazard energy from combinational logic feeding this bundle.
    if (glitches[idx] > 0.0) {
      e += glitches[idx] * meanSwitch_fJ_[idx] * params_.glitchFactor;
    }
    out.perSignal_fJ[idx] = e;
    out.total_fJ += e;
  }
  return out;
}

} // namespace sct::ref
