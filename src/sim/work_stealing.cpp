#include "sim/work_stealing.h"

#include "sim/parallel_runner.h"

namespace sct::sim {

namespace {
/// Worker identity for currentWorker(): set once per worker thread.
thread_local const WorkStealingPool* tlsPool = nullptr;
thread_local unsigned tlsWorker = WorkStealingPool::kNotAWorker;
} // namespace

WorkStealingPool::WorkStealingPool(unsigned threads) {
  if (threads == 0) threads = ParallelRunner::defaultThreadCount();
  deques_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  wait();
  {
    std::lock_guard<std::mutex> lock(poolMutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void WorkStealingPool::submit(Task task) {
  const unsigned shard = static_cast<unsigned>(
      nextShard_.fetch_add(1, std::memory_order_relaxed) % deques_.size());
  submitTo(shard, std::move(task));
}

void WorkStealingPool::submitTo(unsigned worker, Task task) {
  WorkerDeque& d = *deques_[worker % deques_.size()];
  {
    std::lock_guard<std::mutex> lock(d.m);
    d.dq.push_back(std::move(task));
    d.size.store(d.dq.size(), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(poolMutex_);
    ++inFlight_;
  }
  taskReady_.notify_all();
}

void WorkStealingPool::wait() {
  std::unique_lock<std::mutex> lock(poolMutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

std::size_t WorkStealingPool::cancelPending() {
  std::size_t dropped = 0;
  for (auto& dp : deques_) {
    std::lock_guard<std::mutex> lock(dp->m);
    dropped += dp->dq.size();
    dp->dq.clear();
    dp->size.store(0, std::memory_order_relaxed);
  }
  if (dropped != 0) {
    std::lock_guard<std::mutex> lock(poolMutex_);
    inFlight_ -= dropped;
    if (inFlight_ == 0) allDone_.notify_all();
  }
  return dropped;
}

unsigned WorkStealingPool::currentWorker() const {
  return tlsPool == this ? tlsWorker : kNotAWorker;
}

WorkStealingPool::Task WorkStealingPool::popOwn(unsigned self) {
  WorkerDeque& d = *deques_[self];
  std::lock_guard<std::mutex> lock(d.m);
  if (d.dq.empty()) return nullptr;
  Task t = std::move(d.dq.front());
  d.dq.pop_front();
  d.size.store(d.dq.size(), std::memory_order_relaxed);
  return t;
}

WorkStealingPool::Task WorkStealingPool::stealHalf(unsigned self) {
  // Pick the richest victim with unlocked size reads (stale is fine —
  // a wrong pick just steals less), then take the back half under the
  // victim's lock. Back half: the owner keeps draining its front, so
  // owner and thief touch opposite ends even while racing.
  const std::size_t n = deques_.size();
  unsigned victim = kNotAWorker;
  std::size_t best = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (i == self) continue;
    const std::size_t size = deques_[i]->size.load(std::memory_order_relaxed);
    if (size > best) {
      best = size;
      victim = i;
    }
  }
  if (victim == kNotAWorker) return nullptr;

  WorkerDeque& v = *deques_[victim];
  std::deque<Task> loot;
  {
    std::lock_guard<std::mutex> lock(v.m);
    const std::size_t avail = v.dq.size();
    if (avail == 0) return nullptr;
    const std::size_t take = (avail + 1) / 2;
    for (std::size_t i = 0; i < take; ++i) {
      loot.push_front(std::move(v.dq.back()));
      v.dq.pop_back();
    }
    v.size.store(v.dq.size(), std::memory_order_relaxed);
  }
  steals_.fetch_add(1, std::memory_order_relaxed);
  stolenTasks_.fetch_add(loot.size(), std::memory_order_relaxed);

  // First stolen task runs immediately; the rest land on our own deque.
  Task t = std::move(loot.front());
  loot.pop_front();
  if (!loot.empty()) {
    WorkerDeque& d = *deques_[self];
    std::lock_guard<std::mutex> lock(d.m);
    for (Task& task : loot) d.dq.push_back(std::move(task));
    d.size.store(d.dq.size(), std::memory_order_relaxed);
  }
  return t;
}

void WorkStealingPool::workerLoop(unsigned self) {
  tlsPool = this;
  tlsWorker = self;
  for (;;) {
    Task task = popOwn(self);
    if (!task) task = stealHalf(self);
    if (task) {
      task();
      std::lock_guard<std::mutex> lock(poolMutex_);
      --inFlight_;
      if (inFlight_ == 0) allDone_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(poolMutex_);
    if (shutdown_) return;
    if (inFlight_ == 0) {
      allDone_.notify_all();
    }
    taskReady_.wait(lock, [this] {
      if (shutdown_) return true;
      for (const auto& d : deques_) {
        if (d->size.load(std::memory_order_relaxed) != 0) return true;
      }
      return false;
    });
  }
}

void WorkStealingPool::runIndexed(
    std::size_t count, unsigned threads,
    const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = ParallelRunner::defaultThreadCount();
  if (threads == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  WorkStealingPool pool(threads);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submitTo(static_cast<unsigned>(i % threads), [&fn, i] { fn(i); });
  }
  pool.wait();
}

} // namespace sct::sim
