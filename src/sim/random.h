// Deterministic pseudo-random source for workload generation.
//
// Workload generators, the true-RNG peripheral model and the
// property-based tests all need reproducible randomness that is stable
// across standard libraries (std:: distributions are not). This is
// xoshiro256**, seeded with splitmix64.
#ifndef SCT_SIM_RANDOM_H
#define SCT_SIM_RANDOM_H

#include <cstdint>

#include "ckpt/state_io.h"
#include "sim/rng.h"

namespace sct::sim {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    // SplitMix64 produces the exact stream the historical inline loop
    // did, so every seeded Xoshiro sequence in the repo (incl. the
    // Trng peripheral's, which golden checkpoints pin) is unchanged.
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be non-zero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli draw with probability numer/denom.
  bool chance(std::uint64_t numer, std::uint64_t denom) {
    return below(denom) < numer;
  }

  std::uint32_t next32() { return static_cast<std::uint32_t>(next() >> 32); }

  /// -- Checkpoint (see ckpt/checkpoint.h): the raw 256-bit generator
  /// state, so a restored stream continues draw-for-draw.
  void saveState(ckpt::StateWriter& w) const {
    for (const std::uint64_t s : state_) w.u64(s);
  }
  void loadState(ckpt::StateReader& r) {
    for (std::uint64_t& s : state_) s = r.u64();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

} // namespace sct::sim

#endif // SCT_SIM_RANDOM_H
