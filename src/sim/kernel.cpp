#include "sim/kernel.h"

#include <stdexcept>
#include <utility>

namespace sct::sim {

void Kernel::scheduleAt(Time when, Callback fn, int priority) {
  if (when < now_) {
    throw std::invalid_argument("Kernel::scheduleAt: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Kernel::scheduleAt: empty callback");
  }
  queue_.push(Event{when, priority, seq_++, std::move(fn)});
}

Kernel::PeriodicId Kernel::addPeriodic(PeriodicProcess& proc) {
  for (std::size_t i = 0; i < periodics_.size(); ++i) {
    if (periodics_[i].proc == nullptr) {
      periodics_[i] = Periodic{&proc};
      return i;
    }
  }
  periodics_.push_back(Periodic{&proc});
  return periodics_.size() - 1;
}

void Kernel::removePeriodic(PeriodicId id) {
  disarmPeriodic(id);
  periodics_[id].proc = nullptr;
}

void Kernel::armQueued(PeriodicId id, Periodic& p) {
  // Reference path: represent the activation as an ordinary queue
  // event carrying the already-allocated sequence number. The event
  // re-checks the arm state at dispatch so disarm/re-arm behave
  // exactly like the fast path.
  const std::uint64_t seq = p.seq;
  queue_.push(Event{p.when, p.priority, seq,
                    [this, id, seq] { fireQueuedActivation(id, seq); }});
}

void Kernel::disarmPeriodic(PeriodicId id) {
  Periodic& p = periodics_[id];
  if (p.armed) {
    p.armed = false;
    --armedCount_;
    // In event-queue-only mode the wrapper event stays queued; it
    // no-ops at dispatch because the (armed, seq) check fails.
  }
}

std::size_t Kernel::earliestPeriodic() const {
  std::size_t best = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < periodics_.size(); ++i) {
    const Periodic& p = periodics_[i];
    if (!p.armed) continue;
    if (best == static_cast<std::size_t>(-1)) {
      best = i;
      continue;
    }
    const Periodic& b = periodics_[best];
    if (p.when != b.when ? p.when < b.when
                         : (p.priority != b.priority ? p.priority < b.priority
                                                     : p.seq < b.seq)) {
      best = i;
    }
  }
  return best;
}

void Kernel::firePeriodic(std::size_t idx) {
  Periodic& p = periodics_[idx];
  now_ = p.when;
  p.armed = false;
  --armedCount_;
  ++dispatched_;
  p.proc->fire();
}

void Kernel::fireQueuedActivation(PeriodicId id, std::uint64_t seq) {
  Periodic& p = periodics_[id];
  // Stale wrapper after disarm/re-arm/removal: ignore.
  if (p.proc == nullptr || !p.armed || p.seq != seq) return;
  p.armed = false;
  --armedCount_;
  p.proc->fire();
}

bool Kernel::dispatchOne() {
  if (!eventQueueOnly_ && armedCount_ != 0) {
    const std::size_t idx = earliestPeriodic();
    if (queue_.empty() || activationBefore(periodics_[idx], queue_.top())) {
      firePeriodic(idx);
      return true;
    }
  }
  if (queue_.empty()) return false;
  // Move the callback out before popping so that callbacks may schedule
  // new events (which reallocates the underlying heap) safely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++dispatched_;
  ev.fn();
  return true;
}

bool Kernel::dispatchOneUntil(Time t) {
  if (!eventQueueOnly_ && armedCount_ != 0) {
    const std::size_t idx = earliestPeriodic();
    if (periodics_[idx].when <= t &&
        (queue_.empty() || activationBefore(periodics_[idx], queue_.top()))) {
      firePeriodic(idx);
      return true;
    }
  }
  if (queue_.empty() || queue_.top().when > t) return false;
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++dispatched_;
  ev.fn();
  return true;
}

std::uint64_t Kernel::run() {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (!stopRequested_ && dispatchOne()) ++n;
  return n;
}

std::uint64_t Kernel::runUntil(Time t) {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (!stopRequested_ && dispatchOneUntil(t)) ++n;
  if (!stopRequested_ && now_ < t) now_ = t;
  return n;
}

std::uint64_t Kernel::step(std::uint64_t maxEvents) {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (n < maxEvents && !stopRequested_ && dispatchOne()) ++n;
  return n;
}

void Kernel::reset() {
  queue_ = {};
  for (Periodic& p : periodics_) p.armed = false;
  armedCount_ = 0;
  now_ = 0;
  seq_ = 0;
  dispatched_ = 0;
  stopRequested_ = false;
}

} // namespace sct::sim
