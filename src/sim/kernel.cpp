#include "sim/kernel.h"

#include <stdexcept>
#include <utility>

namespace sct::sim {

void Kernel::scheduleAt(Time when, Callback fn, int priority) {
  if (when < now_) {
    throw std::invalid_argument("Kernel::scheduleAt: time is in the past");
  }
  if (!fn) {
    throw std::invalid_argument("Kernel::scheduleAt: empty callback");
  }
  queue_.push(Event{when, priority, seq_++, std::move(fn)});
}

bool Kernel::dispatchOne() {
  if (queue_.empty()) return false;
  // Move the callback out before popping so that callbacks may schedule
  // new events (which reallocates the underlying heap) safely.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++dispatched_;
  ev.fn();
  return true;
}

std::uint64_t Kernel::run() {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (!stopRequested_ && dispatchOne()) ++n;
  return n;
}

std::uint64_t Kernel::runUntil(Time t) {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (!stopRequested_ && !queue_.empty() && queue_.top().when <= t) {
    dispatchOne();
    ++n;
  }
  if (!stopRequested_ && now_ < t) now_ = t;
  return n;
}

std::uint64_t Kernel::step(std::uint64_t maxEvents) {
  stopRequested_ = false;
  std::uint64_t n = 0;
  while (n < maxEvents && !stopRequested_ && dispatchOne()) ++n;
  return n;
}

void Kernel::reset() {
  queue_ = {};
  now_ = 0;
  seq_ = 0;
  dispatched_ = 0;
  stopRequested_ = false;
}

} // namespace sct::sim
