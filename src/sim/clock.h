// Two-phase system clock.
//
// The paper's SystemC models hang their processes off the two edges of
// the system clock: bus masters and slaves evaluate on the *rising*
// edge, the bus process of the TL1/TL2 models is sensitive to the
// *falling* edge (Figures 2 and 4). The Clock reproduces that contract:
// per cycle it first dispatches all rising-edge handlers, then all
// falling-edge handlers, each group ordered by an explicit priority and
// otherwise by registration order.
//
// The clock is a kernel PeriodicProcess: each edge is one armed
// activation dispatched from the kernel's inline fast path, so a
// running clock costs no heap allocation and no priority-queue traffic.
// Aperiodic events scheduled through Kernel::schedule interleave with
// the edges in exactly the order the pure event-queue design produced
// (the activation's tie-break sequence number is allocated when the
// previous edge re-arms, just as the old self-scheduling callback was).
//
// Event-driven models additionally *park* their handlers
// (parkHandler()): a parked handler stays registered but is skipped
// until its wake cycle. When every handler is parked beyond the next
// cycle and the clock's own activation is the kernel's sole dispatch
// candidate, runCycles() warps over the dead cycles in O(1) — cycle
// numbering and edge timestamps of every cycle that actually dispatches
// a handler are unchanged, so parked/warped runs are observably
// identical to fully clocked ones.
#ifndef SCT_SIM_CLOCK_H
#define SCT_SIM_CLOCK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/stats.h"
#include "obs/trace_json.h"
#include "sim/kernel.h"
#include "sim/time.h"

namespace sct::sim {

/// Edge selector for handler registration.
enum class Edge : std::uint8_t { Rising, Falling };

/// A clock generator bound to a kernel. The clock arms one periodic
/// activation per edge; it only keeps the activation chain alive while
/// at least one handler is registered and the cycle limit is not
/// reached, so Kernel::run() terminates once every model has finished.
class Clock final : private PeriodicProcess {
 public:
  using Callback = std::function<void()>;
  /// Raw-callback form for per-cycle hot handlers: one indirect call,
  /// no std::function invoker layer. Same registration semantics as
  /// Callback otherwise.
  using RawFn = void (*)(void*);
  using HandlerId = std::size_t;

  /// `period` must be an even, non-zero number of picoseconds so both
  /// edges land on integral timestamps.
  Clock(Kernel& kernel, std::string name, Time period);
  ~Clock() override;

  const std::string& name() const { return name_; }
  Time period() const { return period_; }
  Kernel& kernel() { return kernel_; }

  /// Completed cycles, i.e. how many rising edges have fired.
  std::uint64_t cycle() const { return cycle_; }

  /// Register an edge handler. Handlers run every cycle until removed.
  /// Lower `priority` runs first within the edge.
  HandlerId onEdge(Edge edge, Callback cb, int priority = 0);
  HandlerId onRising(Callback cb, int priority = 0) {
    return onEdge(Edge::Rising, std::move(cb), priority);
  }
  HandlerId onFalling(Callback cb, int priority = 0) {
    return onEdge(Edge::Falling, std::move(cb), priority);
  }

  /// Register a raw edge handler (`fn(obj)` per edge). Identical
  /// ordering/park/removal semantics to the std::function form; the
  /// models driven every cycle (bus process, replay masters) register
  /// this way so dispatch costs a single indirect call.
  HandlerId onEdgeRaw(Edge edge, RawFn fn, void* obj, int priority = 0);
  HandlerId onRisingRaw(RawFn fn, void* obj, int priority = 0) {
    return onEdgeRaw(Edge::Rising, fn, obj, priority);
  }
  HandlerId onFallingRaw(RawFn fn, void* obj, int priority = 0) {
    return onEdgeRaw(Edge::Falling, fn, obj, priority);
  }

  /// Remove a handler. Safe to call from inside a handler; the removal
  /// takes effect from the next edge.
  void removeHandler(HandlerId id);

  /// Wake cycle for parkHandler() meaning "never" (until re-parked).
  static constexpr std::uint64_t kNeverWake =
      ~static_cast<std::uint64_t>(0);

  /// Park `id` until `wakeCycle`: the handler stays registered (the
  /// clock keeps running) but is skipped on every edge of cycles before
  /// `wakeCycle`. Parking at a cycle <= the current one (re)activates
  /// the handler immediately — parkHandler doubles as the wake call —
  /// and takes effect for edges not yet dispatched this cycle. Safe to
  /// call from inside any handler.
  void parkHandler(HandlerId id, std::uint64_t wakeCycle);

  /// Run the bound kernel for exactly `n` clock cycles (both edges).
  /// Cycles in which every handler is parked are warped over whenever
  /// the clock is the kernel's only pending work; a warp never skips a
  /// cycle that would dispatch a handler, and the final cycle of the
  /// run always dispatches so kernel time lands where a fully clocked
  /// run would. Returns early after completing the cycle in which
  /// requestBreak() was called.
  void runCycles(std::uint64_t n);

  /// Ask the innermost active runCycles() to return once the current
  /// cycle completes (falling edge done). No-op outside runCycles();
  /// the flag is cleared when runCycles() is entered.
  void requestBreak() { breakRequested_ = true; }

  /// Stop generating edges after the current cycle completes.
  void halt() { halted_ = true; }
  bool halted() const { return halted_; }

  /// Restart edge generation after halt(); the first rising edge fires
  /// one full period after the current kernel time.
  void resume();

  /// True between a rising edge and the end of its falling dispatch,
  /// i.e. while cycle() refers to a cycle whose edges are still being
  /// produced.
  bool midCycle() const { return inHighPhase_; }

  /// True while the falling-edge handlers of the current cycle are
  /// being dispatched.
  bool inFallingDispatch() const { return inFallingDispatch_; }

  /// Resolve observability handles ("<name>.warps", "<name>.warp_cycles",
  /// "<name>.parks") in `reg` and optionally mirror warp/park events
  /// into `rec`. Until called, every hook is one null-check; compiled
  /// out entirely under SCT_OBS=OFF.
  void attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec = nullptr);

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// Saves the cycle counter, run-control flags, the armed edge
  /// activation (exact kernel triple) and every handler's park wake
  /// cycle, keyed by HandlerId. Restoring requires an identically
  /// constructed clock (same handlers registered in the same order) and
  /// must happen *after* the owning Kernel's section so the activation
  /// can be re-armed against the restored scheduler. Only legal between
  /// cycles (not mid-dispatch).
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w) const;
  void loadState(ckpt::StateReader& r);

 private:
  struct Handler {
    HandlerId id;
    int priority;
    std::uint64_t wake = 0;  ///< First cycle the handler runs again.
    /// Exactly one of (raw, obj) / cb is active: raw != nullptr wins.
    RawFn raw = nullptr;
    void* obj = nullptr;
    Callback cb;
  };

  // PeriodicProcess: one activation per edge.
  void fire() override;

  /// Shared tail of onEdge/onEdgeRaw: assign the id, insert sorted by
  /// priority, kick the edge chain if needed.
  HandlerId insertHandler(Edge edge, Handler&& h);

  void armNextEdge(Time when, bool rising);
  void fireRising();
  void fireFalling();
  void dispatch(std::vector<Handler>& handlers);
  bool anyHandlers() const;
  bool flaggedForRemoval(HandlerId id) const;
  /// Earliest wake cycle over all handlers (0 when any is unparked).
  /// Cached: the inline run loop probes this every cycle, and a
  /// simulation whose handlers never park must not pay a handler scan
  /// per cycle for a warp that can never trigger.
  std::uint64_t minWakeCycle() const;
  /// Jump cycle_/the armed activation forward so the next dispatched
  /// rising edge belongs to cycle min(minWakeCycle(), target).
  void maybeWarp(std::uint64_t target);
  /// Fused run loop: with the clock's activation already claimed and
  /// the kernel otherwise idle, produce whole cycles inline — rising
  /// dispatch, falling dispatch, dead-cycle warp — without arming an
  /// activation per edge. Bails back to the generic per-edge path (by
  /// arming the next edge exactly where fireRising/fireFalling would)
  /// the moment a handler schedules kernel work, halts the clock, or
  /// the cycle budget is consumed.
  void runInline(std::uint64_t target);
  /// Record one dead-cycle warp of `skip` cycles starting after
  /// `fromCycle` (only called with obs attached).
  SCT_OBS_COLD void noteWarp(std::uint64_t fromCycle, std::uint64_t skip);
  /// Record a park/wake transition for `id` (only called with obs
  /// attached).
  SCT_OBS_COLD void notePark(HandlerId id, std::uint64_t wakeCycle);

  Kernel& kernel_;
  std::string name_;
  Time period_;
  Kernel::PeriodicId periodicId_;
  std::uint64_t cycle_ = 0;
  HandlerId nextId_ = 1;
  std::vector<Handler> rising_;
  std::vector<Handler> falling_;
  std::vector<HandlerId> pendingRemoval_;  ///< Kept sorted.
  /// minWakeCycle() memo, invalidated whenever a wake field or the
  /// handler set changes (parkHandler, registration, erasure).
  mutable std::uint64_t minWakeCache_ = 0;
  mutable bool minWakeDirty_ = true;
  /// Compact id -> handler-slot index so parkHandler — called once per
  /// phase boundary by event-driven modules — is a binary search over
  /// a dozen bytes per entry instead of a scan over the fat Handler
  /// structs. Rebuilt lazily after any registration or erasure.
  struct ParkSlot {
    HandlerId id;
    bool falling;
    std::uint32_t idx;
  };
  mutable std::vector<ParkSlot> parkIndex_;
  mutable bool parkIndexDirty_ = true;
  void rebuildParkIndex() const;
  bool scheduled_ = false;
  bool nextEdgeRising_ = true;
  bool halted_ = false;
  bool inHighPhase_ = false;  ///< Between a rising edge and its falling edge.
  bool inFallingDispatch_ = false;
  bool breakRequested_ = false;
  // Observability handles, resolved once by attachObs (null = detached).
  obs::Counter* obsWarps_ = nullptr;
  obs::Histogram* obsWarpLen_ = nullptr;
  obs::Counter* obsParks_ = nullptr;
  obs::TraceRecorder* obsRec_ = nullptr;
};

} // namespace sct::sim

#endif // SCT_SIM_CLOCK_H
