// Two-phase system clock.
//
// The paper's SystemC models hang their processes off the two edges of
// the system clock: bus masters and slaves evaluate on the *rising*
// edge, the bus process of the TL1/TL2 models is sensitive to the
// *falling* edge (Figures 2 and 4). The Clock reproduces that contract:
// per cycle it first dispatches all rising-edge handlers, then all
// falling-edge handlers, each group ordered by an explicit priority and
// otherwise by registration order.
//
// The clock is a kernel PeriodicProcess: each edge is one armed
// activation dispatched from the kernel's inline fast path, so a
// running clock costs no heap allocation and no priority-queue traffic.
// Aperiodic events scheduled through Kernel::schedule interleave with
// the edges in exactly the order the pure event-queue design produced
// (the activation's tie-break sequence number is allocated when the
// previous edge re-arms, just as the old self-scheduling callback was).
#ifndef SCT_SIM_CLOCK_H
#define SCT_SIM_CLOCK_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/time.h"

namespace sct::sim {

/// Edge selector for handler registration.
enum class Edge : std::uint8_t { Rising, Falling };

/// A clock generator bound to a kernel. The clock arms one periodic
/// activation per edge; it only keeps the activation chain alive while
/// at least one handler is registered and the cycle limit is not
/// reached, so Kernel::run() terminates once every model has finished.
class Clock final : private PeriodicProcess {
 public:
  using Callback = std::function<void()>;
  using HandlerId = std::size_t;

  /// `period` must be an even, non-zero number of picoseconds so both
  /// edges land on integral timestamps.
  Clock(Kernel& kernel, std::string name, Time period);
  ~Clock() override;

  const std::string& name() const { return name_; }
  Time period() const { return period_; }
  Kernel& kernel() { return kernel_; }

  /// Completed cycles, i.e. how many rising edges have fired.
  std::uint64_t cycle() const { return cycle_; }

  /// Register an edge handler. Handlers run every cycle until removed.
  /// Lower `priority` runs first within the edge.
  HandlerId onEdge(Edge edge, Callback cb, int priority = 0);
  HandlerId onRising(Callback cb, int priority = 0) {
    return onEdge(Edge::Rising, std::move(cb), priority);
  }
  HandlerId onFalling(Callback cb, int priority = 0) {
    return onEdge(Edge::Falling, std::move(cb), priority);
  }

  /// Remove a handler. Safe to call from inside a handler; the removal
  /// takes effect from the next edge.
  void removeHandler(HandlerId id);

  /// Run the bound kernel for exactly `n` clock cycles (both edges).
  void runCycles(std::uint64_t n);

  /// Stop generating edges after the current cycle completes.
  void halt() { halted_ = true; }
  bool halted() const { return halted_; }

  /// Restart edge generation after halt(); the first rising edge fires
  /// one full period after the current kernel time.
  void resume();

 private:
  struct Handler {
    HandlerId id;
    int priority;
    Callback cb;
  };

  // PeriodicProcess: one activation per edge.
  void fire() override;

  void armNextEdge(Time when, bool rising);
  void fireRising();
  void fireFalling();
  void dispatch(std::vector<Handler>& handlers);
  bool anyHandlers() const;
  bool flaggedForRemoval(HandlerId id) const;

  Kernel& kernel_;
  std::string name_;
  Time period_;
  Kernel::PeriodicId periodicId_;
  std::uint64_t cycle_ = 0;
  HandlerId nextId_ = 1;
  std::vector<Handler> rising_;
  std::vector<Handler> falling_;
  std::vector<HandlerId> pendingRemoval_;  ///< Kept sorted.
  bool scheduled_ = false;
  bool nextEdgeRising_ = true;
  bool halted_ = false;
  bool inHighPhase_ = false;  ///< Between a rising edge and its falling edge.
};

} // namespace sct::sim

#endif // SCT_SIM_CLOCK_H
