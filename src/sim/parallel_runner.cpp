#include "sim/parallel_runner.h"

#include <cstdlib>
#include <string>

namespace sct::sim {

ParallelRunner::ParallelRunner(unsigned threads) {
  if (threads == 0) threads = defaultThreadCount();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  wait();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ParallelRunner::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ParallelRunner::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ParallelRunner::workerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --inFlight_;
      if (inFlight_ == 0) allDone_.notify_all();
    }
  }
}

unsigned ParallelRunner::defaultThreadCount() {
  if (const char* env = std::getenv("SCT_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ParallelRunner::runIndexed(std::size_t count, unsigned threads,
                                const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = defaultThreadCount();
  if (threads == 1 || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ParallelRunner pool(threads);
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait();
}

} // namespace sct::sim
