// Named simulation component base.
//
// Mirrors (a small part of) sc_module: every model in the framework is
// a Module that knows its hierarchical name and the kernel it runs on.
// Processes are plain callbacks registered with a Clock; there is no
// implicit elaboration phase.
#ifndef SCT_SIM_MODULE_H
#define SCT_SIM_MODULE_H

#include <string>
#include <utility>

#include "sim/kernel.h"

namespace sct::sim {

class Module {
 public:
  Module(Kernel& kernel, std::string name)
      : kernel_(kernel), name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  Kernel& kernel() { return kernel_; }
  const Kernel& kernel() const { return kernel_; }
  Time now() const { return kernel_.now(); }

 private:
  Kernel& kernel_;
  std::string name_;
};

} // namespace sct::sim

#endif // SCT_SIM_MODULE_H
