#include "sim/clock.h"

#include <algorithm>
#include <stdexcept>

namespace sct::sim {

Clock::Clock(Kernel& kernel, std::string name, Time period)
    : kernel_(kernel), name_(std::move(name)), period_(period) {
  if (period_ == 0 || period_ % 2 != 0) {
    throw std::invalid_argument("Clock: period must be non-zero and even");
  }
  periodicId_ = kernel_.addPeriodic(*this);
}

Clock::~Clock() { kernel_.removePeriodic(periodicId_); }

Clock::HandlerId Clock::onEdge(Edge edge, Callback cb, int priority) {
  if (!cb) throw std::invalid_argument("Clock::onEdge: empty callback");
  HandlerId id = nextId_++;
  auto& vec = (edge == Edge::Rising) ? rising_ : falling_;
  // Keep handlers sorted by priority; equal priorities keep
  // registration order (stable insert at upper bound).
  auto pos = std::upper_bound(
      vec.begin(), vec.end(), priority,
      [](int p, const Handler& h) { return p < h.priority; });
  vec.insert(pos, Handler{id, priority, std::move(cb)});
  if (!scheduled_ && !halted_) {
    armNextEdge(kernel_.now() + period_, /*rising=*/true);
  }
  return id;
}

void Clock::removeHandler(HandlerId id) {
  auto pos = std::lower_bound(pendingRemoval_.begin(), pendingRemoval_.end(),
                              id);
  if (pos == pendingRemoval_.end() || *pos != id) {
    pendingRemoval_.insert(pos, id);
  }
}

bool Clock::flaggedForRemoval(HandlerId id) const {
  return std::binary_search(pendingRemoval_.begin(), pendingRemoval_.end(),
                            id);
}

bool Clock::anyHandlers() const {
  return !rising_.empty() || !falling_.empty();
}

void Clock::armNextEdge(Time when, bool rising) {
  scheduled_ = true;
  nextEdgeRising_ = rising;
  kernel_.armPeriodic(periodicId_, when);
}

void Clock::fire() {
  scheduled_ = false;
  if (nextEdgeRising_) {
    fireRising();
  } else {
    fireFalling();
  }
}

void Clock::fireRising() {
  if (!pendingRemoval_.empty()) {
    auto gone = [this](const Handler& h) { return flaggedForRemoval(h.id); };
    rising_.erase(std::remove_if(rising_.begin(), rising_.end(), gone),
                  rising_.end());
    falling_.erase(std::remove_if(falling_.begin(), falling_.end(), gone),
                   falling_.end());
    pendingRemoval_.clear();
  }
  if (halted_ || !anyHandlers()) return;
  ++cycle_;
  inHighPhase_ = true;
  dispatch(rising_);
  armNextEdge(kernel_.now() + period_ / 2, /*rising=*/false);
}

void Clock::fireFalling() {
  dispatch(falling_);
  inHighPhase_ = false;
  if (!halted_) armNextEdge(kernel_.now() + period_ / 2, /*rising=*/true);
}

void Clock::dispatch(std::vector<Handler>& handlers) {
  // Iterate by index: handlers may register further handlers (growing
  // the vector) during dispatch; newly added handlers first run on the
  // next edge because insertion keeps them past the current index only
  // if their priority sorts later — to keep semantics simple we snapshot
  // the size and skip handlers flagged for removal. A handler call may
  // flag removals, so the per-handler check re-arms as soon as
  // pendingRemoval_ becomes non-empty.
  const std::size_t n = handlers.size();
  for (std::size_t i = 0; i < n && i < handlers.size(); ++i) {
    if (pendingRemoval_.empty()) {
      handlers[i].cb();
      continue;
    }
    const Handler& h = handlers[i];
    if (flaggedForRemoval(h.id)) continue;
    h.cb();
  }
}

void Clock::runCycles(std::uint64_t n) {
  const std::uint64_t target = cycle_ + n;
  while ((cycle_ < target || inHighPhase_) && !halted_ && anyHandlers()) {
    // Self-drive: when this clock's own activation is the only thing
    // the kernel could dispatch, claim it and fire the edge directly —
    // same time advance, same bookkeeping, minus the generic dispatch
    // machinery. Anything else pending (queued events, other clocks)
    // falls back to ordinary single-step dispatch.
    if (scheduled_ && kernel_.claimSoleActivation(periodicId_)) {
      fire();
      continue;
    }
    if (kernel_.step(1) == 0) break;
  }
}

void Clock::resume() {
  halted_ = false;
  if (!scheduled_ && anyHandlers()) {
    armNextEdge(kernel_.now() + period_, /*rising=*/true);
  }
}

} // namespace sct::sim
