#include "sim/clock.h"

#include <algorithm>
#include <stdexcept>

namespace sct::sim {

Clock::Clock(Kernel& kernel, std::string name, Time period)
    : kernel_(kernel), name_(std::move(name)), period_(period) {
  if (period_ == 0 || period_ % 2 != 0) {
    throw std::invalid_argument("Clock: period must be non-zero and even");
  }
  periodicId_ = kernel_.addPeriodic(*this);
}

Clock::~Clock() { kernel_.removePeriodic(periodicId_); }

Clock::HandlerId Clock::onEdge(Edge edge, Callback cb, int priority) {
  if (!cb) throw std::invalid_argument("Clock::onEdge: empty callback");
  return insertHandler(edge,
                       Handler{/*id=*/0, priority, /*wake=*/0,
                               /*raw=*/nullptr, /*obj=*/nullptr,
                               std::move(cb)});
}

Clock::HandlerId Clock::onEdgeRaw(Edge edge, RawFn fn, void* obj,
                                  int priority) {
  if (fn == nullptr) {
    throw std::invalid_argument("Clock::onEdgeRaw: null callback");
  }
  return insertHandler(
      edge, Handler{/*id=*/0, priority, /*wake=*/0, fn, obj, Callback{}});
}

Clock::HandlerId Clock::insertHandler(Edge edge, Handler&& h) {
  const HandlerId id = nextId_++;
  h.id = id;
  auto& vec = (edge == Edge::Rising) ? rising_ : falling_;
  // Keep handlers sorted by priority; equal priorities keep
  // registration order (stable insert at upper bound).
  auto pos = std::upper_bound(
      vec.begin(), vec.end(), h.priority,
      [](int p, const Handler& hh) { return p < hh.priority; });
  vec.insert(pos, std::move(h));
  minWakeDirty_ = true;
  parkIndexDirty_ = true;
  if (!scheduled_ && !halted_) {
    armNextEdge(kernel_.now() + period_, /*rising=*/true);
  }
  return id;
}

void Clock::removeHandler(HandlerId id) {
  auto pos = std::lower_bound(pendingRemoval_.begin(), pendingRemoval_.end(),
                              id);
  if (pos == pendingRemoval_.end() || *pos != id) {
    pendingRemoval_.insert(pos, id);
  }
}

void Clock::rebuildParkIndex() const {
  parkIndex_.clear();
  for (std::size_t i = 0; i < rising_.size(); ++i) {
    parkIndex_.push_back({rising_[i].id, false, static_cast<std::uint32_t>(i)});
  }
  for (std::size_t i = 0; i < falling_.size(); ++i) {
    parkIndex_.push_back({falling_[i].id, true, static_cast<std::uint32_t>(i)});
  }
  std::sort(parkIndex_.begin(), parkIndex_.end(),
            [](const ParkSlot& a, const ParkSlot& b) { return a.id < b.id; });
  parkIndexDirty_ = false;
}

void Clock::parkHandler(HandlerId id, std::uint64_t wakeCycle) {
  if (parkIndexDirty_) rebuildParkIndex();
  auto it = std::lower_bound(
      parkIndex_.begin(), parkIndex_.end(), id,
      [](const ParkSlot& s, HandlerId v) { return s.id < v; });
  if (it == parkIndex_.end() || it->id != id) return;
  Handler& h = it->falling ? falling_[it->idx] : rising_[it->idx];
  if (h.wake == wakeCycle) return;
  h.wake = wakeCycle;
  minWakeDirty_ = true;
  if constexpr (obs::kEnabled) {
    if (obsParks_ != nullptr) notePark(id, wakeCycle);
  }
}

void Clock::notePark(HandlerId id, std::uint64_t wakeCycle) {
  const bool parking = wakeCycle > cycle_;
  if (parking) obsParks_->add();
  if (obsRec_ != nullptr) {
    obsRec_->instant("clock", parking ? "park" : "wake", cycle_,
                     obs::Track::Clock, obs::TraceArg{"handler", id},
                     obs::TraceArg{"wake_cycle", wakeCycle});
  }
}

bool Clock::flaggedForRemoval(HandlerId id) const {
  return std::binary_search(pendingRemoval_.begin(), pendingRemoval_.end(),
                            id);
}

bool Clock::anyHandlers() const {
  return !rising_.empty() || !falling_.empty();
}

void Clock::armNextEdge(Time when, bool rising) {
  scheduled_ = true;
  nextEdgeRising_ = rising;
  kernel_.armPeriodic(periodicId_, when);
}

void Clock::fire() {
  scheduled_ = false;
  if (nextEdgeRising_) {
    fireRising();
  } else {
    fireFalling();
  }
}

void Clock::fireRising() {
  if (!pendingRemoval_.empty()) {
    auto gone = [this](const Handler& h) { return flaggedForRemoval(h.id); };
    rising_.erase(std::remove_if(rising_.begin(), rising_.end(), gone),
                  rising_.end());
    falling_.erase(std::remove_if(falling_.begin(), falling_.end(), gone),
                   falling_.end());
    pendingRemoval_.clear();
    minWakeDirty_ = true;
    parkIndexDirty_ = true;
  }
  if (halted_ || !anyHandlers()) return;
  ++cycle_;
  inHighPhase_ = true;
  dispatch(rising_);
  armNextEdge(kernel_.now() + period_ / 2, /*rising=*/false);
}

void Clock::fireFalling() {
  inFallingDispatch_ = true;
  dispatch(falling_);
  inFallingDispatch_ = false;
  inHighPhase_ = false;
  if (!halted_) armNextEdge(kernel_.now() + period_ / 2, /*rising=*/true);
}

void Clock::dispatch(std::vector<Handler>& handlers) {
  // Iterate by index: handlers may register further handlers (growing
  // the vector) during dispatch; newly added handlers first run on the
  // next edge because insertion keeps them past the current index only
  // if their priority sorts later — to keep semantics simple we snapshot
  // the size and skip handlers flagged for removal. A handler call may
  // flag removals, so the per-handler check re-arms as soon as
  // pendingRemoval_ becomes non-empty. The wake gate is read at call
  // time: an earlier handler waking a later one takes effect on the
  // same edge, matching the order an unparked run would produce.
  const std::size_t n = handlers.size();
  for (std::size_t i = 0; i < n && i < handlers.size(); ++i) {
    if (handlers[i].wake > cycle_) continue;
    if (!pendingRemoval_.empty() && flaggedForRemoval(handlers[i].id)) {
      continue;
    }
    if (handlers[i].raw != nullptr) {
      handlers[i].raw(handlers[i].obj);
    } else {
      handlers[i].cb();
    }
  }
}

std::uint64_t Clock::minWakeCycle() const {
  if (!minWakeDirty_) return minWakeCache_;
  std::uint64_t m = kNeverWake;
  for (const Handler& h : rising_) m = std::min(m, h.wake);
  for (const Handler& h : falling_) m = std::min(m, h.wake);
  minWakeCache_ = m;
  minWakeDirty_ = false;
  return m;
}

void Clock::maybeWarp(std::uint64_t target) {
  // Flagged-but-unerased handlers still count as present (erasure
  // happens on the next dispatched rising edge, and may stop the
  // clock); never warp over that edge.
  if (!pendingRemoval_.empty()) return;
  const std::uint64_t stop = std::min(minWakeCycle(), target);
  if (stop <= cycle_ + 1) return;  // Next rising edge must dispatch anyway.
  // Land so that the next fired rising edge is cycle `stop`: every
  // skipped cycle would have dispatched nothing, and the stop cycle
  // (parked-handler wake or end of run) still produces real edges with
  // the exact timestamps a fully clocked run would give them.
  const std::uint64_t skip = stop - cycle_ - 1;
  if constexpr (obs::kEnabled) {
    if (obsWarps_ != nullptr) noteWarp(cycle_, skip);
  }
  cycle_ += skip;
  kernel_.postponeArmed(periodicId_, skip * period_);
}

void Clock::runCycles(std::uint64_t n) {
  breakRequested_ = false;
  const std::uint64_t target = cycle_ + n;
  while ((cycle_ < target || inHighPhase_) && !halted_ && anyHandlers()) {
    // Self-drive: when this clock's own activation is the only thing
    // the kernel could dispatch, claim it and run whole cycles inline —
    // same time advance, same bookkeeping, minus the per-edge kernel
    // round trips. Anything else pending (queued events, other clocks)
    // falls back to ordinary single-step dispatch. Before claiming a
    // rising edge, warp over cycles in which every handler is parked.
    if (scheduled_ && kernel_.soleArmedActivation(periodicId_)) {
      if (nextEdgeRising_ && !inHighPhase_) {
        maybeWarp(target);
        kernel_.claimSoleActivation(periodicId_);
        scheduled_ = false;
        runInline(target);
      } else {
        kernel_.claimSoleActivation(periodicId_);
        fire();
      }
    } else if (kernel_.step(1) == 0) {
      break;
    }
    if (breakRequested_ && !inHighPhase_) break;
  }
}

void Clock::runInline(std::uint64_t target) {
  // Precondition: the rising activation was just claimed (kernel time
  // sits on the rising edge of cycle_ + 1, nothing pending in the
  // kernel). Each iteration produces one full cycle. All bail-outs
  // re-create exactly the state the per-edge path would be in at the
  // same point, so the two paths interleave freely.
  Time rise = kernel_.now();
  std::uint64_t edges = 0;
  for (;;) {
    // Rising edge (mirrors fireRising).
    if (!pendingRemoval_.empty()) {
      auto gone = [this](const Handler& h) { return flaggedForRemoval(h.id); };
      rising_.erase(std::remove_if(rising_.begin(), rising_.end(), gone),
                    rising_.end());
      falling_.erase(std::remove_if(falling_.begin(), falling_.end(), gone),
                     falling_.end());
      pendingRemoval_.clear();
      minWakeDirty_ = true;
      parkIndexDirty_ = true;
      if (!anyHandlers()) {
        kernel_.noteInlineDispatches(edges);
        return;  // Clock stops: no arm, like fireRising.
      }
    }
    ++cycle_;
    inHighPhase_ = true;
    dispatch(rising_);
    ++edges;
    if (halted_ || !kernel_.idleForInline()) {
      kernel_.noteInlineDispatches(edges);
      armNextEdge(rise + period_ / 2, /*rising=*/false);
      return;
    }
    // Falling edge (mirrors fireFalling).
    kernel_.advanceInline(rise + period_ / 2);
    inFallingDispatch_ = true;
    dispatch(falling_);
    inFallingDispatch_ = false;
    inHighPhase_ = false;
    ++edges;
    if (halted_) {
      kernel_.noteInlineDispatches(edges);
      return;  // Halted: no re-arm, like fireFalling.
    }
    if (!kernel_.idleForInline() || breakRequested_ || cycle_ >= target) {
      kernel_.noteInlineDispatches(edges);
      armNextEdge(rise + period_, /*rising=*/true);
      return;
    }
    // Next cycle; warp over fully parked cycles (mirrors maybeWarp,
    // with no armed activation to postpone — just jump the timestamp).
    rise += period_;
    if (pendingRemoval_.empty()) {
      const std::uint64_t stop = std::min(minWakeCycle(), target);
      if (stop > cycle_ + 1) {
        const std::uint64_t skip = stop - cycle_ - 1;
        if constexpr (obs::kEnabled) {
          if (obsWarps_ != nullptr) noteWarp(cycle_, skip);
        }
        cycle_ += skip;
        rise += skip * period_;
      }
    }
    kernel_.advanceInline(rise);
  }
}

void Clock::attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec) {
  if constexpr (obs::kEnabled) {
    obsWarps_ = &reg.counter(name_ + ".warps");
    obsWarpLen_ =
        &reg.histogram(name_ + ".warp_cycles", {1, 2, 4, 8, 16, 64, 256});
    obsParks_ = &reg.counter(name_ + ".parks");
    obsRec_ = rec;
  } else {
    (void)reg;
    (void)rec;
  }
}

void Clock::noteWarp(std::uint64_t fromCycle, std::uint64_t skip) {
  obsWarps_->add();
  obsWarpLen_->record(skip);
  if (obsRec_ != nullptr) {
    obsRec_->instant("clock", "warp", fromCycle, obs::Track::Clock,
                     obs::TraceArg{"cycles", skip});
  }
}

void Clock::resume() {
  halted_ = false;
  if (!scheduled_ && anyHandlers()) {
    armNextEdge(kernel_.now() + period_, /*rising=*/true);
  }
}

void Clock::saveState(ckpt::StateWriter& w) const {
  if (inHighPhase_ || inFallingDispatch_ || !pendingRemoval_.empty()) {
    throw ckpt::CheckpointError(
        "Clock::saveState: '" + name_ +
        "' is mid-cycle or has pending handler removals — checkpoints "
        "are only legal between cycles");
  }
  w.u64(cycle_);
  w.b(halted_);
  w.b(scheduled_);
  w.b(nextEdgeRising_);
  if (scheduled_) {
    const Kernel::ActivationState a = kernel_.activationState(periodicId_);
    if (!a.armed) {
      throw ckpt::CheckpointError("Clock::saveState: '" + name_ +
                                  "' is scheduled but not armed");
    }
    w.u64(static_cast<std::uint64_t>(a.when));
    w.i64(a.priority);
    w.u64(a.seq);
  }
  w.u64(static_cast<std::uint64_t>(nextId_));
  const auto writeHandlers = [&w](const std::vector<Handler>& v) {
    w.u32(static_cast<std::uint32_t>(v.size()));
    for (const Handler& h : v) {
      w.u64(static_cast<std::uint64_t>(h.id));
      w.u64(h.wake);
    }
  };
  writeHandlers(rising_);
  writeHandlers(falling_);
}

void Clock::loadState(ckpt::StateReader& r) {
  if (inHighPhase_ || inFallingDispatch_ || !pendingRemoval_.empty()) {
    throw ckpt::CheckpointError("Clock::loadState: '" + name_ +
                                "' is not at a cycle boundary");
  }
  cycle_ = r.u64();
  halted_ = r.b();
  scheduled_ = r.b();
  nextEdgeRising_ = r.b();
  if (scheduled_) {
    const Time when = static_cast<Time>(r.u64());
    const int priority = static_cast<int>(r.i64());
    const std::uint64_t seq = r.u64();
    kernel_.restoreActivation(periodicId_, when, priority, seq);
  }
  const auto nextId = static_cast<HandlerId>(r.u64());
  if (nextId != nextId_) {
    throw ckpt::CheckpointError(
        "Clock::loadState: '" + name_ +
        "' handler registration differs from the saved system");
  }
  const auto readHandlers = [this, &r](std::vector<Handler>& v) {
    const std::uint32_t n = r.u32();
    if (n != v.size()) {
      throw ckpt::CheckpointError(
          "Clock::loadState: '" + name_ +
          "' handler count differs from the saved system");
    }
    for (Handler& h : v) {
      const auto id = static_cast<HandlerId>(r.u64());
      if (id != h.id) {
        throw ckpt::CheckpointError(
            "Clock::loadState: '" + name_ +
            "' handler order differs from the saved system");
      }
      h.wake = r.u64();
    }
  };
  readHandlers(rising_);
  readHandlers(falling_);
  minWakeDirty_ = true;
  parkIndexDirty_ = true;
  breakRequested_ = false;
}

} // namespace sct::sim
