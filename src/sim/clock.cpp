#include "sim/clock.h"

#include <algorithm>
#include <stdexcept>

namespace sct::sim {

Clock::Clock(Kernel& kernel, std::string name, Time period)
    : kernel_(kernel), name_(std::move(name)), period_(period) {
  if (period_ == 0 || period_ % 2 != 0) {
    throw std::invalid_argument("Clock: period must be non-zero and even");
  }
}

Clock::HandlerId Clock::onEdge(Edge edge, Callback cb, int priority) {
  if (!cb) throw std::invalid_argument("Clock::onEdge: empty callback");
  HandlerId id = nextId_++;
  auto& vec = (edge == Edge::Rising) ? rising_ : falling_;
  // Keep handlers sorted by priority; equal priorities keep
  // registration order (stable insert at upper bound).
  auto pos = std::upper_bound(
      vec.begin(), vec.end(), priority,
      [](int p, const Handler& h) { return p < h.priority; });
  vec.insert(pos, Handler{id, priority, std::move(cb)});
  if (!scheduled_ && !halted_) {
    scheduleNextRising(kernel_.now() + period_);
  }
  return id;
}

void Clock::removeHandler(HandlerId id) { pendingRemoval_.push_back(id); }

bool Clock::anyHandlers() const {
  return !rising_.empty() || !falling_.empty();
}

void Clock::scheduleNextRising(Time when) {
  scheduled_ = true;
  kernel_.scheduleAt(when, [this] { fireRising(); });
}

void Clock::fireRising() {
  scheduled_ = false;
  if (!pendingRemoval_.empty()) {
    auto gone = [this](const Handler& h) {
      return std::find(pendingRemoval_.begin(), pendingRemoval_.end(),
                       h.id) != pendingRemoval_.end();
    };
    rising_.erase(std::remove_if(rising_.begin(), rising_.end(), gone),
                  rising_.end());
    falling_.erase(std::remove_if(falling_.begin(), falling_.end(), gone),
                   falling_.end());
    pendingRemoval_.clear();
  }
  if (halted_ || !anyHandlers()) return;
  ++cycle_;
  inHighPhase_ = true;
  dispatch(rising_);
  kernel_.scheduleAt(kernel_.now() + period_ / 2, [this] { fireFalling(); });
}

void Clock::fireFalling() {
  dispatch(falling_);
  inHighPhase_ = false;
  if (!halted_) scheduleNextRising(kernel_.now() + period_ / 2);
}

void Clock::dispatch(std::vector<Handler>& handlers) {
  // Iterate by index: handlers may register further handlers (growing
  // the vector) during dispatch; newly added handlers first run on the
  // next edge because insertion keeps them past the current index only
  // if their priority sorts later — to keep semantics simple we snapshot
  // the size and skip handlers flagged for removal.
  const std::size_t n = handlers.size();
  for (std::size_t i = 0; i < n && i < handlers.size(); ++i) {
    const Handler& h = handlers[i];
    if (!pendingRemoval_.empty() &&
        std::find(pendingRemoval_.begin(), pendingRemoval_.end(), h.id) !=
            pendingRemoval_.end()) {
      continue;
    }
    h.cb();
  }
}

void Clock::runCycles(std::uint64_t n) {
  const std::uint64_t target = cycle_ + n;
  while ((cycle_ < target || inHighPhase_) && !halted_ && anyHandlers()) {
    if (kernel_.step(1) == 0) break;
  }
}

void Clock::resume() {
  halted_ = false;
  if (!scheduled_ && anyHandlers()) {
    scheduleNextRising(kernel_.now() + period_);
  }
}

} // namespace sct::sim
