// Work-stealing task pool for serving-style workloads.
//
// ParallelRunner feeds every worker from one shared deque, which is
// the right shape for a fixed sweep submitted up front: the queue is
// filled once and the single mutex is uncontended compared to the
// seconds-long simulation tasks behind it. A serving loop is different
// — jobs arrive continuously, task costs vary by orders of magnitude
// (a wrong-PIN session is ~10x cheaper than a full authentication),
// and the dispatcher must keep accepting while workers run. This pool
// gives every worker its own deque: submissions are sharded
// round-robin (or pinned with submitTo), a worker drains its own deque
// FIFO, and a worker that runs dry steals the BACK HALF of the richest
// victim's deque in one lock acquisition ("steal half", the batching
// that makes stealing pay — one steal rebalances an imbalanced batch
// instead of bouncing single tasks between locks).
//
// Determinism contract: the pool schedules *independent* tasks, same
// as ParallelRunner — tasks write results into caller-owned slots (or
// emit self-contained records) and must not touch shared mutable
// state. Scheduling order is non-deterministic; results keyed by task
// identity are not. The serve session tests pin this down end to end
// (threads=1 vs threads=N produce bit-identical per-session results).
#ifndef SCT_SIM_WORK_STEALING_H
#define SCT_SIM_WORK_STEALING_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sct::sim {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` picks ParallelRunner::defaultThreadCount(). Workers
  /// start immediately and idle until tasks arrive.
  explicit WorkStealingPool(unsigned threads = 0);

  /// Joins after finishing every non-cancelled task (implicit wait()).
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task on the next deque round-robin.
  void submit(Task task);

  /// Enqueue a task on a specific worker's deque (it may still be
  /// stolen by an idle peer — pinning is a placement hint, not an
  /// affinity guarantee).
  void submitTo(unsigned worker, Task task);

  /// Block until every submitted task has finished or been cancelled.
  void wait();

  /// Drop every task that has not started yet and return how many were
  /// dropped. Tasks already executing finish normally — this is the
  /// drain step of a graceful shutdown: cancelPending(), then wait().
  std::size_t cancelPending();

  /// Index of the worker running the calling thread, or kNotAWorker
  /// when called from outside the pool (e.g. the submitting thread).
  static constexpr unsigned kNotAWorker = ~0u;
  unsigned currentWorker() const;

  /// -- Scheduler diagnostics (monotonic, racy-read safe) --------------
  /// Number of successful steal operations and total tasks migrated by
  /// them. steals() == 0 on a threads=1 pool by construction.
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }
  std::uint64_t stolenTasks() const {
    return stolenTasks_.load(std::memory_order_relaxed);
  }

  /// Run fn(0)..fn(count-1) over `threads` work-stealing workers and
  /// wait. With threads == 1 (or count <= 1) the calls happen inline on
  /// the caller's thread in index order — the reference sequential
  /// behaviour, same contract as ParallelRunner::runIndexed. Indices
  /// are pre-sharded round-robin across the worker deques; imbalance is
  /// repaired by stealing instead of a shared queue.
  static void runIndexed(std::size_t count, unsigned threads,
                         const std::function<void(std::size_t)>& fn);

 private:
  struct WorkerDeque {
    std::mutex m;
    std::deque<Task> dq;
    /// Mirror of dq.size(), readable without m for victim selection and
    /// the idle-wait predicate (stale values only make a steal pick a
    /// poorer victim or cost one spurious wakeup — never a lost task).
    std::atomic<std::size_t> size{0};
  };

  void workerLoop(unsigned self);
  /// Pop from the worker's own deque front; nullptr when empty.
  Task popOwn(unsigned self);
  /// Steal the back half of the richest victim's deque into `self`'s
  /// deque and return one task to run; nullptr when nothing to steal.
  Task stealHalf(unsigned self);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;
  std::mutex poolMutex_;  ///< Guards inFlight_ and shutdown_.
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;  ///< Queued + currently executing.
  bool shutdown_ = false;
  std::atomic<std::uint64_t> nextShard_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolenTasks_{0};
};

} // namespace sct::sim

#endif // SCT_SIM_WORK_STEALING_H
