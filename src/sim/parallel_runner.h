// Thread-pool harness for independent simulations.
//
// The kernel is single-threaded by design (one Kernel per simulation,
// no locks on the hot path). Design-space exploration, ablations and
// characterization sweeps, however, run many *independent* simulations
// — one per interface configuration, wait-state setting or supply
// voltage — and those scale with cores trivially: each worker task
// constructs its own Kernel/Clock/bus/models, runs to completion and
// writes its result into a caller-owned slot keyed by task index, so
// the collected output is deterministic and identical to a sequential
// sweep regardless of scheduling.
//
// Sharing rules (enforced by convention, documented per type):
//  * read-only inputs — trace::BusTrace, power::SignalEnergyTable,
//    jcvm::JcProgram — may be shared across workers by const
//    reference; they are plain data with no hidden mutable state.
//  * anything attached to a Kernel must be created and destroyed
//    inside one task.
//
// This runner keeps ONE shared FIFO — right for uniform sweeps, where
// every worker drains the same queue. Workloads with per-worker
// affinity (the serve daemon's card pool: each worker owns a live
// platform instance and tasks should stick to it unless a peer runs
// dry) use sim::WorkStealingPool (work_stealing.h), which extends this
// design with per-worker deques and steal-half rebalancing.
#ifndef SCT_SIM_PARALLEL_RUNNER_H
#define SCT_SIM_PARALLEL_RUNNER_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sct::sim {

class ParallelRunner {
 public:
  using Task = std::function<void()>;

  /// `threads == 0` picks defaultThreadCount(). A runner with one
  /// thread still uses a worker (same code path, easier to reason
  /// about); use runIndexed() with threads == 1 to force a strictly
  /// sequential in-caller sweep.
  explicit ParallelRunner(unsigned threads = 0);
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  unsigned threadCount() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task. Tasks must not touch shared mutable state (see
  /// file comment). Exceptions escaping a task terminate (simulations
  /// signal errors through their result slots instead).
  void submit(Task task);

  /// Block until every submitted task has finished.
  void wait();

  /// Hardware concurrency, overridable with the SCT_THREADS
  /// environment variable (useful to pin benches to one core or to
  /// oversubscribe deliberately). At least 1.
  static unsigned defaultThreadCount();

  /// Run fn(0) .. fn(count-1) on a pool of `threads` workers and wait.
  /// With threads == 1 the calls happen inline on the caller's thread
  /// in index order — the reference sequential behaviour.
  static void runIndexed(std::size_t count, unsigned threads,
                         const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;  ///< Queued + currently executing.
  bool shutdown_ = false;
};

} // namespace sct::sim

#endif // SCT_SIM_PARALLEL_RUNNER_H
