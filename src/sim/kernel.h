// Minimal discrete-event simulation kernel.
//
// This stands in for the SystemC 2.0 kernel used by the paper. The bus
// models only require: (a) timestamp-ordered event dispatch, (b) stable
// ordering of simultaneous events (insertion order, with an explicit
// integer priority to realise the paper's "masters and slaves are
// triggered at the rising edge, the bus process is sensitive to the
// falling edge" discipline), and (c) run control (run-to-exhaustion,
// run-until-time, cooperative stop).
//
// Two dispatch sources feed the scheduler:
//  * the general event queue — one-shot callbacks, arbitrary times;
//  * periodic processes — long-lived clocked processes (sim::Clock)
//    that re-arm themselves every activation. An armed activation is
//    a plain (when, priority, seq) triple held inline in the kernel,
//    so driving a clock costs no heap allocation and no priority-queue
//    traffic on the hot path. The sequence number is allocated from
//    the same counter as queue events at arm time, which makes the
//    interleaving of periodic activations with ordinary events
//    bit-identical to scheduling a fresh callback at the same instant.
#ifndef SCT_SIM_KERNEL_H
#define SCT_SIM_KERNEL_H

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/state_io.h"
#include "obs/stats.h"
#include "sim/time.h"

namespace sct::sim {

/// A clocked process driven by the kernel's periodic fast path.
/// fire() runs the due activation; the activation is consumed before
/// the call, so fire() must re-arm (or leave the process disarmed to
/// let the simulation drain).
class PeriodicProcess {
 public:
  virtual ~PeriodicProcess() = default;
  virtual void fire() = 0;
};

/// Discrete-event scheduler. Not thread-safe; one kernel per simulation.
class Kernel {
 public:
  using Callback = std::function<void()>;
  using PeriodicId = std::size_t;

  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulation time. Valid inside and outside callbacks.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` picoseconds from now. `priority`
  /// breaks ties at equal timestamps: lower priorities run first;
  /// equal priorities run in insertion order.
  void schedule(Time delay, Callback fn, int priority = 0) {
    scheduleAt(now_ + delay, std::move(fn), priority);
  }

  /// Schedule `fn` at an absolute time, which must not be in the past.
  void scheduleAt(Time when, Callback fn, int priority = 0);

  /// Register a periodic process. The slot stays valid until
  /// removePeriodic(); registration does not arm an activation.
  PeriodicId addPeriodic(PeriodicProcess& proc);

  /// Unregister; a pending activation is cancelled.
  void removePeriodic(PeriodicId id);

  /// Arm (or re-arm) the process' next activation. Allocates the
  /// activation's tie-break sequence number immediately, exactly as if
  /// a callback had been scheduled at this instant, so dispatch order
  /// against ordinary events is unchanged from the pure-queue design.
  /// Inline: a running clock calls this once per edge.
  void armPeriodic(PeriodicId id, Time when, int priority = 0) {
    if (when < now_) {
      throw std::invalid_argument("Kernel::armPeriodic: time is in the past");
    }
    Periodic& p = periodics_[id];
    if (p.proc == nullptr) {
      throw std::logic_error("Kernel::armPeriodic: process was removed");
    }
    p.when = when;
    p.priority = priority;
    p.seq = seq_++;  // Same counter as queue events: exact tie order.
    if (!p.armed) ++armedCount_;
    p.armed = true;
    if (eventQueueOnly_) armQueued(id, p);
  }

  /// Cancel the pending activation (no-op when disarmed).
  void disarmPeriodic(PeriodicId id);

  /// Fast-path handshake for self-driving clocked processes: when the
  /// armed activation of `id` is the *only* dispatch candidate (no
  /// queued event, no other armed periodic, fast path enabled), consume
  /// it — advance now() to its armed time, exactly as dispatching it
  /// would — and return true; the caller then runs the process body
  /// itself. Returns false (no state change) whenever ordinary dispatch
  /// could interleave anything else; the caller must fall back to
  /// step()/run() in that case.
  bool claimSoleActivation(PeriodicId id) {
    if (eventQueueOnly_ || armedCount_ != 1 || !queue_.empty()) return false;
    Periodic& p = periodics_[id];
    if (!p.armed) return false;
    now_ = p.when;
    p.armed = false;
    --armedCount_;
    ++dispatched_;
    return true;
  }

  bool periodicArmed(PeriodicId id) const {
    return periodics_[id].armed;
  }

  /// Read-only view of an activation slot, for checkpointing: the
  /// owning process saves the exact (when, priority, seq) triple and
  /// replays it through restoreActivation() on load.
  struct ActivationState {
    Time when;
    int priority;
    std::uint64_t seq;
    bool armed;
  };
  ActivationState activationState(PeriodicId id) const {
    const Periodic& p = periodics_[id];
    return ActivationState{p.when, p.priority, p.seq, p.armed};
  }

  /// Non-consuming variant of claimSoleActivation(): true when the armed
  /// activation of `id` is the only dispatch candidate. Callers may then
  /// reshape the activation (postponeArmed) before claiming it — the
  /// basis of the clock's dead-cycle warp.
  bool soleArmedActivation(PeriodicId id) const {
    return !eventQueueOnly_ && armedCount_ == 1 && queue_.empty() &&
           periodics_[id].armed;
  }

  /// Push the armed activation of `id` into the future by `delta`
  /// picoseconds. Only legal while soleArmedActivation(id) holds: with
  /// nothing else pending the move cannot reorder dispatch, so the
  /// tie-break sequence number is kept.
  void postponeArmed(PeriodicId id, Time delta) {
    if (!soleArmedActivation(id)) {
      throw std::logic_error(
          "Kernel::postponeArmed: activation is not the sole candidate");
    }
    periodics_[id].when += delta;
  }

  /// Companions to claimSoleActivation() for a self-driving process
  /// that runs many edges inline (sim::Clock's fused run loop). While
  /// the kernel is otherwise completely idle — the process claimed its
  /// sole activation and nothing has been scheduled since — dispatching
  /// through the kernel would only bounce the same activation back and
  /// forth, so the caller advances time itself and reports the edge
  /// dispatches it performed. The moment idleForInline() turns false
  /// the caller must fall back to arming ordinary activations.
  bool idleForInline() const { return queue_.empty() && armedCount_ == 0; }
  void advanceInline(Time when) { now_ = when; }
  void noteInlineDispatches(std::uint64_t n) { dispatched_ += n; }

  /// Testing hook: when set, armPeriodic() routes activations through
  /// the general event queue instead of the inline fast path. Dispatch
  /// order is identical by construction; this exists so the fast path
  /// can be checked against the reference behaviour. Must be set
  /// before any activation is armed.
  void setEventQueueOnly(bool v) { eventQueueOnly_ = v; }
  bool eventQueueOnly() const { return eventQueueOnly_; }

  /// Dispatch events until the queue is empty or stop() was requested.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Dispatch all events with timestamp <= `t`, then set now() = t
  /// (unless stopped earlier). Returns the number of events dispatched.
  std::uint64_t runUntil(Time t);

  /// Dispatch at most `maxEvents` events. Returns the number dispatched.
  std::uint64_t step(std::uint64_t maxEvents = 1);

  /// Request that the current run()/runUntil() returns after the
  /// currently executing callback. Cleared by the next run call.
  void stop() { stopRequested_ = true; }

  bool stopRequested() const { return stopRequested_; }

  /// True when nothing is pending: no queued events and no armed
  /// periodic activation.
  bool empty() const { return queue_.empty() && armedCount_ == 0; }

  /// Queued events plus armed periodic activations.
  std::size_t pendingEvents() const { return queue_.size() + armedCount_; }

  std::uint64_t dispatchedEvents() const { return dispatched_; }

  /// Tie-break sequence numbers handed out so far, i.e. events scheduled
  /// plus periodic activations armed.
  std::uint64_t scheduledEvents() const { return seq_; }

  /// Publish the kernel's counters into `reg` under `prefix`. The
  /// kernel keeps these counts anyway, so observability costs nothing
  /// on the dispatch path — this just copies them out at snapshot time.
  void publishObs(obs::StatsRegistry& reg,
                  const std::string& prefix = "kernel") const {
    reg.counter(prefix + ".dispatched_events").add(dispatched_);
    reg.counter(prefix + ".scheduled_events").add(seq_);
    reg.gauge(prefix + ".now_ps").set(static_cast<double>(now_));
  }

  /// Reset to time zero with an empty queue and all periodic
  /// activations disarmed. Registered periodic processes stay
  /// registered; modules holding a kernel reference stay valid.
  void reset();

  /// -- Checkpoint (see ckpt/checkpoint.h) ------------------------------
  /// The kernel section carries the scheduler's monotonic state: time,
  /// the tie-break sequence counter and the dispatch count. Checkpoints
  /// are only legal when the event queue is empty (quiesce point —
  /// armed periodic activations are saved by their owning Clock, which
  /// re-arms them on load via restoreActivation()).
  static constexpr std::uint32_t kCkptVersion = 1;

  void saveState(ckpt::StateWriter& w) const {
    if (!queue_.empty() || eventQueueOnly_) {
      throw ckpt::CheckpointError(
          "Kernel::saveState: checkpoint requires an empty event queue "
          "and the periodic fast path (quiesce point)");
    }
    w.u64(static_cast<std::uint64_t>(now_));
    w.u64(seq_);
    w.u64(dispatched_);
    w.u64(static_cast<std::uint64_t>(periodics_.size()));
  }

  void loadState(ckpt::StateReader& r) {
    if (!queue_.empty() || eventQueueOnly_) {
      throw ckpt::CheckpointError(
          "Kernel::loadState: restore target must have an empty event "
          "queue and use the periodic fast path");
    }
    // A freshly constructed system has each clock's first activation
    // armed; those are stale (the owning Clock re-arms the saved one
    // via restoreActivation() when its own section loads).
    for (Periodic& p : periodics_) p.armed = false;
    armedCount_ = 0;
    now_ = static_cast<Time>(r.u64());
    seq_ = r.u64();
    dispatched_ = r.u64();
    const std::uint64_t periodicCount = r.u64();
    if (periodicCount != periodics_.size()) {
      throw ckpt::CheckpointError(
          "Kernel::loadState: periodic-process count mismatch (snapshot " +
          std::to_string(periodicCount) + ", this system " +
          std::to_string(periodics_.size()) +
          ") — construction order differs from the saved system");
    }
  }

  /// Re-arm an activation with the exact (when, priority, seq) triple it
  /// had when saved — unlike armPeriodic() this does NOT allocate a new
  /// sequence number, so tie-break order against everything scheduled
  /// after the restore continues bit-identically. Load the Kernel
  /// section first: the saved seq must predate the restored counter.
  void restoreActivation(PeriodicId id, Time when, int priority,
                         std::uint64_t seq) {
    Periodic& p = periodics_[id];
    if (p.proc == nullptr) {
      throw std::logic_error(
          "Kernel::restoreActivation: process was removed");
    }
    if (p.armed || seq >= seq_ || when < now_) {
      throw ckpt::CheckpointError(
          "Kernel::restoreActivation: activation inconsistent with the "
          "restored scheduler state");
    }
    p.when = when;
    p.priority = priority;
    p.seq = seq;
    p.armed = true;
    ++armedCount_;
  }

 private:
  struct Event {
    Time when;
    int priority;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };
  struct Periodic {
    PeriodicProcess* proc = nullptr;
    Time when = 0;
    int priority = 0;
    std::uint64_t seq = 0;
    bool armed = false;
  };

  /// Index of the earliest armed periodic activation, or npos. With the
  /// handful of clocks a simulation owns this linear scan is cheaper
  /// than any ordered structure.
  std::size_t earliestPeriodic() const;

  /// True when activation `p` dispatches before queue event `e`.
  static bool activationBefore(const Periodic& p, const Event& e) {
    if (p.when != e.when) return p.when < e.when;
    if (p.priority != e.priority) return p.priority < e.priority;
    return p.seq < e.seq;
  }

  void firePeriodic(std::size_t idx);
  void fireQueuedActivation(PeriodicId id, std::uint64_t seq);
  /// Cold path of armPeriodic (eventQueueOnly mode): wrap the armed
  /// activation in an ordinary queue event.
  void armQueued(PeriodicId id, Periodic& p);
  bool dispatchOne();
  bool dispatchOneUntil(Time t);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::vector<Periodic> periodics_;
  std::size_t armedCount_ = 0;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  bool stopRequested_ = false;
  bool eventQueueOnly_ = false;
};

} // namespace sct::sim

#endif // SCT_SIM_KERNEL_H
