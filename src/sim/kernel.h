// Minimal discrete-event simulation kernel.
//
// This stands in for the SystemC 2.0 kernel used by the paper. The bus
// models only require: (a) timestamp-ordered event dispatch, (b) stable
// ordering of simultaneous events (insertion order, with an explicit
// integer priority to realise the paper's "masters and slaves are
// triggered at the rising edge, the bus process is sensitive to the
// falling edge" discipline), and (c) run control (run-to-exhaustion,
// run-until-time, cooperative stop).
#ifndef SCT_SIM_KERNEL_H
#define SCT_SIM_KERNEL_H

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.h"

namespace sct::sim {

/// Discrete-event scheduler. Not thread-safe; one kernel per simulation.
class Kernel {
 public:
  using Callback = std::function<void()>;

  Kernel() = default;
  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Current simulation time. Valid inside and outside callbacks.
  Time now() const { return now_; }

  /// Schedule `fn` to run `delay` picoseconds from now. `priority`
  /// breaks ties at equal timestamps: lower priorities run first;
  /// equal priorities run in insertion order.
  void schedule(Time delay, Callback fn, int priority = 0) {
    scheduleAt(now_ + delay, std::move(fn), priority);
  }

  /// Schedule `fn` at an absolute time, which must not be in the past.
  void scheduleAt(Time when, Callback fn, int priority = 0);

  /// Dispatch events until the queue is empty or stop() was requested.
  /// Returns the number of events dispatched.
  std::uint64_t run();

  /// Dispatch all events with timestamp <= `t`, then set now() = t
  /// (unless stopped earlier). Returns the number of events dispatched.
  std::uint64_t runUntil(Time t);

  /// Dispatch at most `maxEvents` events. Returns the number dispatched.
  std::uint64_t step(std::uint64_t maxEvents = 1);

  /// Request that the current run()/runUntil() returns after the
  /// currently executing callback. Cleared by the next run call.
  void stop() { stopRequested_ = true; }

  bool stopRequested() const { return stopRequested_; }
  bool empty() const { return queue_.empty(); }
  std::size_t pendingEvents() const { return queue_.size(); }
  std::uint64_t dispatchedEvents() const { return dispatched_; }

  /// Reset to time zero with an empty queue. Existing callbacks are
  /// dropped; modules holding a kernel reference stay valid.
  void reset();

 private:
  struct Event {
    Time when;
    int priority;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      if (a.priority != b.priority) return a.priority > b.priority;
      return a.seq > b.seq;
    }
  };

  bool dispatchOne();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t dispatched_ = 0;
  bool stopRequested_ = false;
};

} // namespace sct::sim

#endif // SCT_SIM_KERNEL_H
