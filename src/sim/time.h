// Simulation time base for the smart-card TLM framework.
//
// All models in this repository are clocked designs; time is kept as an
// integral count of picoseconds so that clock edges, wait states and
// energy-sampling windows are exact (no floating-point drift), which the
// cycle-accurate layer-1 model and the layer-0 reference model rely on
// when their cycle counts are compared bit-exactly (Table 1).
#ifndef SCT_SIM_TIME_H
#define SCT_SIM_TIME_H

#include <cstdint>
#include <limits>

namespace sct::sim {

/// Absolute simulation time or a duration, in picoseconds.
using Time = std::uint64_t;

inline constexpr Time kTimeMax = std::numeric_limits<Time>::max();

/// Convenience literals-style helpers (integral picosecond math only).
constexpr Time picoseconds(std::uint64_t v) { return v; }
constexpr Time nanoseconds(std::uint64_t v) { return v * 1000u; }
constexpr Time microseconds(std::uint64_t v) { return v * 1000u * 1000u; }
constexpr Time milliseconds(std::uint64_t v) { return v * 1000u * 1000u * 1000u; }

/// Period of a clock given its frequency in MHz. Smart-card cores of the
/// paper's generation run in the 1..66 MHz range; the default SoC uses
/// 33 MHz. Frequencies that do not divide 1e6 ps evenly are truncated.
constexpr Time periodFromMHz(std::uint64_t mhz) { return 1000u * 1000u / mhz; }

} // namespace sct::sim

#endif // SCT_SIM_TIME_H
