// Shared seedable PRNG primitives: splitmix64 in its three idioms.
//
// Before this header existed the same three splitmix64 constants were
// copy-pasted in three places (the Xoshiro256 seeder, the eh noisy
// field profile, ad-hoc test seeding). Everything funnels through here
// now:
//
//  * mix64      — the stateless finalizer: one 64-bit word in, one
//                 high-quality mixed word out. The determinism
//                 workhorse for "pure function of (seed, index)"
//                 contracts (eh::NoisyField, the sca noise and
//                 plaintext schedules): no RNG state means no
//                 evaluation-order dependence, which is what makes
//                 threads=1 vs threads=N sweeps bit-identical.
//  * SplitMix64 — the sequential generator (state += gamma, finalize).
//                 Streams are identical to the seeding loop the
//                 xoshiro authors recommend, so Xoshiro256's seeder
//                 delegates here without changing a single stream.
//  * hash64     — stateless mixing of several words into one, for
//                 keying a deterministic draw on a tuple such as
//                 (seed, trace, cycle).
//
// All three are constexpr and header-only; everything in the repo may
// include this without a link dependency.
#ifndef SCT_SIM_RNG_H
#define SCT_SIM_RNG_H

#include <cstdint>

namespace sct::sim {

/// The splitmix64 golden-ratio increment.
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ULL;

/// Stateless splitmix64 step: add the gamma, run the finalizer. Same
/// constants (and for a given input the same output) as the historical
/// copies in sim::Xoshiro256 and eh::NoisyField.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += kSplitMix64Gamma;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Fold several words into one mixed word (for seeding a draw on a
/// tuple). Not cryptographic — statistical independence only.
constexpr std::uint64_t hash64(std::uint64_t a, std::uint64_t b) {
  return mix64(mix64(a) ^ b);
}
constexpr std::uint64_t hash64(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) {
  return mix64(hash64(a, b) ^ c);
}

/// A double in [0, 1) from the top 53 bits of a mixed word.
constexpr double unitDouble(std::uint64_t mixed) {
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

/// Sequential splitmix64: the stream recommended by the xoshiro
/// authors for seeding, and a perfectly good small generator for test
/// data (fill patterns, fuzz schedules) where Xoshiro256 state would
/// be overkill.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    const std::uint64_t out = mix64(state_);
    state_ += kSplitMix64Gamma;
    return out;
  }

  /// UniformRandomBitGenerator-shaped call operator.
  constexpr std::uint64_t operator()() { return next(); }

  /// Uniform value in [0, bound). `bound` must be non-zero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

} // namespace sct::sim

#endif // SCT_SIM_RNG_H
