#include "hier/hybrid_bus.h"

#include <cassert>
#include <utility>

namespace sct::hier {

HybridBus::HybridBus(sim::Clock& clock, std::string name, Fidelity initial)
    : clock_(clock),
      name_(std::move(name)),
      tl1_(clock, name_ + ".tl1"),
      tl2_(clock, name_ + ".tl2"),
      bridge_(tl2_),
      active_(initial),
      pendingTarget_(initial) {
  // The inactive cycle-true process must not burn falling edges (or
  // strobe its observers) while the event-driven layer carries the
  // traffic.
  if (active_ == Fidelity::Tl2) tl1_.suspendProcess();
}

int HybridBus::attach(bus::EcSlave& slave) {
  const int idx = tl1_.attach(slave);
  const int idx2 = tl2_.attach(slave);
  assert(idx == idx2 && "layer decoders must agree on select indices");
  (void)idx2;
  return idx;
}

bus::BusStatus HybridBus::fetch(bus::Tl1Request& req) {
  return route(req, bus::Kind::InstrFetch);
}

bus::BusStatus HybridBus::read(bus::Tl1Request& req) {
  return route(req, bus::Kind::Read);
}

bus::BusStatus HybridBus::write(bus::Tl1Request& req) {
  return route(req, bus::Kind::Write);
}

bus::BusStatus HybridBus::route(bus::Tl1Request& req, bus::Kind kind) {
  if (req.stage == bus::Tl1Stage::Finished) {
    // Pickup of a posted result. Served here so that a payload finished
    // on one layer can be collected after a switch to the other; both
    // layers' own pickup branches do exactly this.
    const bus::BusStatus result = req.result;
    req.stage = bus::Tl1Stage::Idle;
    return result;
  }
  const bool fresh = req.stage == bus::Tl1Stage::Idle;
  if (fresh && switchPending_) {
    // Refuse new work while draining toward the switch — otherwise a
    // back-to-back master keeps the active layer busy forever.
    ++drainWaitAnswers_;
    return bus::BusStatus::Wait;
  }
  bus::BusStatus status;
  if (active_ == Fidelity::Tl1) {
    status = kind == bus::Kind::InstrFetch  ? tl1_.fetch(req)
             : kind == bus::Kind::Read      ? tl1_.read(req)
                                            : tl1_.write(req);
  } else {
    status = kind == bus::Kind::InstrFetch  ? bridge_.fetch(req)
             : kind == bus::Kind::Read      ? bridge_.read(req)
                                            : bridge_.write(req);
  }
  if (fresh && status == bus::BusStatus::Request && submitHook_) {
    submitHook_(req);
  }
  return status;
}

std::uint64_t HybridBus::nextFinishCycle() {
  if (active_ == Fidelity::Tl1) return bus::kFinishUnknown;
  return bridge_.nextFinishCycle();
}

bool HybridBus::quiesced() {
  // Bring the event-driven layer's lazy completions current first, so
  // finished-but-unretired transports don't read as in flight.
  bridge_.sync();
  return tl1_.outstandingTotal() == 0 && tl2_.idle() && bridge_.drained();
}

void HybridBus::requestSwitch(Fidelity target) {
  if (target == active_) {
    switchPending_ = false;  // Cancel: already there (or changed back).
    return;
  }
  pendingTarget_ = target;
  switchPending_ = true;
}

bool HybridBus::tryCompleteSwitch() {
  if (!switchPending_ || !quiesced()) return false;
  switchPending_ = false;
  active_ = pendingTarget_;
  if (active_ == Fidelity::Tl1) {
    tl1_.resumeProcess();
  } else {
    tl1_.suspendProcess();
  }
  ++switchCount_;
  return true;
}

void HybridBus::saveState(ckpt::StateWriter& w) {
  if (!quiesced()) {
    throw ckpt::CheckpointError(
        "HybridBus::saveState: not quiesced (snapshot only at quiesce "
        "points)");
  }
  tl1_.saveState(w);
  tl2_.saveState(w);
  bridge_.saveState(w);
  w.u8(static_cast<std::uint8_t>(active_));
  w.u8(static_cast<std::uint8_t>(pendingTarget_));
  w.b(switchPending_);
  w.u64(switchCount_);
  w.u64(drainWaitAnswers_);
}

void HybridBus::loadState(ckpt::StateReader& r) {
  if (!quiesced()) {
    throw ckpt::CheckpointError(
        "HybridBus::loadState: restore target is not quiesced");
  }
  tl1_.loadState(r);
  tl2_.loadState(r);
  bridge_.loadState(r);
  active_ = static_cast<Fidelity>(r.u8());
  pendingTarget_ = static_cast<Fidelity>(r.u8());
  switchPending_ = r.b();
  switchCount_ = r.u64();
  drainWaitAnswers_ = r.u64();
}

} // namespace sct::hier
