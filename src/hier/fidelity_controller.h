// Fidelity controller: drives HybridBus layer switches from ROI
// triggers and explicit scopes, and stitches the power estimate across
// the switch boundaries.
//
// The controller owns a rising-edge clock handler that runs *after*
// the masters (late priority): it consults the attached RoiTriggers
// (ORed with the enterRoi()/exitRoi() scope depth), requests a switch
// when the desired fidelity changes, and completes it at the first
// quiesce point — retrying every cycle while the drain is in progress,
// parked to the triggers' decision horizon otherwise, so TL2 regions
// keep the clock's dead-cycle warp.
//
// Power stitching: attachPower() marks both models' cumulative energy
// at every region boundary, so each Region carries the energy its
// active layer accrued — TL1 regions bit-identical to a pure-TL1 run
// over the same transactions (the suspended TL1 model sees no
// callbacks in between; see hybrid_bus.h). attachProfile() extends a
// PowerProfile across the run: cycle-resolved samples inside ROIs
// (via an internal Tl1ProfileRecorder, registered after any power
// model already attached to the TL1 bus), one aggregate sample per
// TL2 region stamped with the region's closing boundary.
//
// One boundary caveat, shared with every cycle-true power model: a
// handshake strobe deasserts on the cycle *after* its last active
// cycle. Exiting an ROI immediately after the last transaction books
// that trailing deassertion edge to the following TL2 region; run a
// couple of idle TL1 cycles before exitRoi() when the region energy
// must include it (the equivalence suite does).
#ifndef SCT_HIER_FIDELITY_CONTROLLER_H
#define SCT_HIER_FIDELITY_CONTROLLER_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hier/hybrid_bus.h"
#include "hier/roi_trigger.h"
#include "obs/stats.h"
#include "obs/trace_json.h"
#include "power/profile.h"
#include "power/tl1_power_model.h"
#include "power/tl2_power_model.h"
#include "sim/clock.h"

namespace sct::hier {

class FidelityController {
 public:
  /// A maximal run of cycles at one fidelity, [fromCycle, toCycle).
  struct Region {
    Fidelity fidelity;
    std::uint64_t fromCycle = 0;
    std::uint64_t toCycle = 0;
    double energy_fJ = 0.0;  ///< Active layer's model energy in the region.
  };

  /// The bus must outlive the controller. `name` prefixes the
  /// observability keys (<name>.switches, <name>.roi_cycles,
  /// <name>.drain_wait_cycles).
  FidelityController(sim::Clock& clock, HybridBus& bus,
                     std::string name = "hier");
  ~FidelityController();

  FidelityController(const FidelityController&) = delete;
  FidelityController& operator=(const FidelityController&) = delete;

  /// Attach a trigger (not owned; must outlive the controller).
  void addTrigger(RoiTrigger& trigger);

  /// Wire the per-layer power models (already attached to bus.tl1() /
  /// bus.tl2() by the caller) so regions carry energy and energy-driven
  /// triggers get fed. Call before running.
  void attachPower(power::Tl1PowerModel& tl1Model,
                   power::Tl2PowerModel& tl2Model);

  /// Stitch `profile` across the whole run (see file comment). Requires
  /// attachPower() first; call after every other Tl1 observer is
  /// registered so the recorder sees each cycle's final energy.
  void attachProfile(power::PowerProfile& profile);

  /// Resolve stats handles in `reg` and optionally emit a trace instant
  /// per completed switch.
  void attachObs(obs::StatsRegistry& reg, obs::TraceRecorder* rec = nullptr);

  /// Explicit ROI scope: while the depth is positive the controller
  /// holds TL1. Callable between runCycles() calls or from a handler;
  /// the switch completes immediately when the bus is quiesced.
  void enterRoi();
  void exitRoi();
  std::uint64_t scopeDepth() const { return scopeDepth_; }

  /// Close the open region at the current cycle (call after the run,
  /// before reading regions()).
  void finalize();

  const std::vector<Region>& regions() const { return regions_; }
  std::uint64_t switches() const { return switches_; }
  std::uint64_t roiCycles() const { return roiCycles_; }
  std::uint64_t drainWaitCycles() const { return drainWaitCycles_; }

  HybridBus& bus() { return bus_; }
  const std::string& name() const { return name_; }

 private:
  void tick();
  void evaluate(std::uint64_t cycle);
  void reactNow();
  void onSwitchCompleted(std::uint64_t cycle);
  void closeRegion(std::uint64_t boundary);
  void feedEnergy(std::uint64_t cycle);
  void parkToHorizon(std::uint64_t cycle);
  void noteSubmit(const bus::Tl1Request& req);
  double modelTotal(Fidelity f) const;

  sim::Clock& clock_;
  HybridBus& bus_;
  std::string name_;
  sim::Clock::HandlerId handlerId_;

  std::vector<RoiTrigger*> triggers_;
  std::uint64_t scopeDepth_ = 0;
  std::uint64_t switchRequestCycle_ = 0;

  std::uint64_t switches_ = 0;
  std::uint64_t roiCycles_ = 0;
  std::uint64_t drainWaitCycles_ = 0;

  std::vector<Region> regions_;
  Fidelity openFidelity_;
  std::uint64_t regionStart_ = 0;
  double regionStartEnergy_fJ_ = 0.0;

  power::Tl1PowerModel* pm1_ = nullptr;
  power::Tl2PowerModel* pm2_ = nullptr;
  power::PowerProfile* profile_ = nullptr;
  std::unique_ptr<power::Tl1ProfileRecorder> recorder_;
  double energyFed_fJ_ = 0.0;

  // Observability handles (null = detached; obsSwitches_ doubles as the
  // attached flag).
  obs::Counter* obsSwitches_ = nullptr;
  obs::Counter* obsRoiCycles_ = nullptr;
  obs::Counter* obsDrainWait_ = nullptr;
  obs::TraceRecorder* obsRec_ = nullptr;
};

/// RAII ROI scope guard.
class RoiScope {
 public:
  explicit RoiScope(FidelityController& controller) : controller_(&controller) {
    controller_->enterRoi();
  }
  ~RoiScope() {
    if (controller_ != nullptr) controller_->exitRoi();
  }
  RoiScope(RoiScope&& other) noexcept : controller_(other.controller_) {
    other.controller_ = nullptr;
  }
  RoiScope(const RoiScope&) = delete;
  RoiScope& operator=(const RoiScope&) = delete;
  RoiScope& operator=(RoiScope&&) = delete;

 private:
  FidelityController* controller_;
};

} // namespace sct::hier

#endif // SCT_HIER_FIDELITY_CONTROLLER_H
