#include "hier/fidelity_controller.h"

#include <cassert>

namespace sct::hier {

namespace {
/// Masters register rising handlers at the default priority 0; the
/// controller must see the cycle's submissions before deciding.
constexpr int kControllerPriority = 100;
} // namespace

FidelityController::FidelityController(sim::Clock& clock, HybridBus& bus,
                                       std::string name)
    : clock_(clock),
      bus_(bus),
      name_(std::move(name)),
      openFidelity_(bus.active()),
      regionStart_(clock.cycle()) {
  handlerId_ = clock_.onRising([this] { tick(); }, kControllerPriority);
  bus_.setSubmitHook(
      [this](const bus::Tl1Request& req) { noteSubmit(req); });
}

FidelityController::~FidelityController() {
  bus_.setSubmitHook({});
  if (recorder_) bus_.tl1().removeObserver(*recorder_);
  clock_.removeHandler(handlerId_);
}

void FidelityController::addTrigger(RoiTrigger& trigger) {
  triggers_.push_back(&trigger);
  // The new trigger's answer and horizon count from the next edge.
  clock_.parkHandler(handlerId_, 0);
}

void FidelityController::attachPower(power::Tl1PowerModel& tl1Model,
                                     power::Tl2PowerModel& tl2Model) {
  pm1_ = &tl1Model;
  pm2_ = &tl2Model;
  regionStartEnergy_fJ_ = modelTotal(openFidelity_);
  energyFed_fJ_ = pm1_->totalEnergy_fJ() + pm2_->totalEnergy_fJ();
}

void FidelityController::attachProfile(power::PowerProfile& profile) {
  assert(pm1_ != nullptr && "attachPower() must come first");
  profile_ = &profile;
  recorder_ =
      std::make_unique<power::Tl1ProfileRecorder>(*pm1_, profile);
  bus_.tl1().addObserver(*recorder_);
}

void FidelityController::attachObs(obs::StatsRegistry& reg,
                                   obs::TraceRecorder* rec) {
  if constexpr (obs::kEnabled) {
    obsRoiCycles_ = &reg.counter(name_ + ".roi_cycles");
    obsDrainWait_ = &reg.counter(name_ + ".drain_wait_cycles");
    obsRec_ = rec;
    obsSwitches_ = &reg.counter(name_ + ".switches");
  }
}

void FidelityController::enterRoi() {
  ++scopeDepth_;
  reactNow();
}

void FidelityController::exitRoi() {
  assert(scopeDepth_ > 0 && "exitRoi() without matching enterRoi()");
  --scopeDepth_;
  reactNow();
}

void FidelityController::finalize() { closeRegion(clock_.cycle()); }

void FidelityController::tick() {
  const std::uint64_t cycle = clock_.cycle();
  feedEnergy(cycle);
  evaluate(cycle);
  if (bus_.switchPending()) {
    // Retry the quiesce check every cycle until the drain completes:
    // returning without re-parking keeps the handler hot.
    if (!bus_.tryCompleteSwitch()) return;
    onSwitchCompleted(cycle);
  }
  parkToHorizon(cycle);
}

void FidelityController::reactNow() {
  const std::uint64_t cycle = clock_.cycle();
  feedEnergy(cycle);
  evaluate(cycle);
  if (bus_.switchPending() && bus_.tryCompleteSwitch()) {
    onSwitchCompleted(cycle);
  }
  if (bus_.switchPending()) {
    clock_.parkHandler(handlerId_, 0);  // Tick every cycle while draining.
  } else {
    parkToHorizon(cycle);
  }
}

void FidelityController::evaluate(std::uint64_t cycle) {
  bool roi = scopeDepth_ > 0;
  for (RoiTrigger* t : triggers_) {
    // Consult every trigger — no short-circuit; wantsRoi advances
    // window cursors and rolling accumulators.
    if (t->wantsRoi(cycle)) roi = true;
  }
  const Fidelity desired = roi ? Fidelity::Tl1 : Fidelity::Tl2;
  if (desired != bus_.active()) {
    if (!bus_.switchPending() || bus_.pendingTarget() != desired) {
      bus_.requestSwitch(desired);
      switchRequestCycle_ = cycle;
    }
  } else if (bus_.switchPending()) {
    bus_.requestSwitch(desired);  // Cancels the now-moot request.
  }
}

void FidelityController::onSwitchCompleted(std::uint64_t cycle) {
  ++switches_;
  const std::uint64_t waited = cycle - switchRequestCycle_;
  drainWaitCycles_ += waited;
  closeRegion(cycle);
  if constexpr (obs::kEnabled) {
    if (obsSwitches_ != nullptr) {
      obsSwitches_->add();
      obsDrainWait_->add(waited);
      if (obsRec_ != nullptr) {
        const char* name = bus_.active() == Fidelity::Tl1 ? "switch_to_tl1"
                                                          : "switch_to_tl2";
        obsRec_->instant("hier", name, cycle, obs::Track::Bus,
                         obs::TraceArg{"switches", switches_},
                         obs::TraceArg{"waited", waited});
      }
    }
  }
}

void FidelityController::closeRegion(std::uint64_t boundary) {
  Region r;
  r.fidelity = openFidelity_;
  r.fromCycle = regionStart_;
  r.toCycle = boundary;
  r.energy_fJ = modelTotal(openFidelity_) - regionStartEnergy_fJ_;
  if (r.toCycle > r.fromCycle || r.energy_fJ != 0.0) {
    regions_.push_back(r);
    if (r.fidelity == Fidelity::Tl1) {
      const std::uint64_t len = r.toCycle - r.fromCycle;
      roiCycles_ += len;
      if constexpr (obs::kEnabled) {
        if (obsRoiCycles_ != nullptr) obsRoiCycles_->add(len);
      }
    } else if (profile_ != nullptr) {
      // Stitch: one aggregate sample per TL2 region, stamped with its
      // closing boundary. Cycle-resolved ROI samples carry the cycle
      // number seen at their rising edge — (fromCycle, toCycle] of the
      // enclosing region — so the boundary stamp keeps the series
      // strictly monotone and collision-free on both sides.
      profile_->addSample(r.toCycle, r.energy_fJ);
    }
  }
  openFidelity_ = bus_.active();
  regionStart_ = boundary;
  regionStartEnergy_fJ_ = modelTotal(openFidelity_);
}

void FidelityController::feedEnergy(std::uint64_t cycle) {
  if (triggers_.empty() || (pm1_ == nullptr && pm2_ == nullptr)) return;
  const double total = (pm1_ != nullptr ? pm1_->totalEnergy_fJ() : 0.0) +
                       (pm2_ != nullptr ? pm2_->totalEnergy_fJ() : 0.0);
  const double delta = total - energyFed_fJ_;
  if (delta != 0.0) {
    for (RoiTrigger* t : triggers_) t->onEnergy(delta, cycle);
    energyFed_fJ_ = total;
  }
}

void FidelityController::parkToHorizon(std::uint64_t cycle) {
  std::uint64_t horizon = sim::Clock::kNeverWake;
  for (RoiTrigger* t : triggers_) {
    const std::uint64_t next = t->nextDecisionCycle(cycle);
    if (next < horizon) horizon = next;
  }
  // <= cycle + 1 needs no park: the handler ran this cycle, so it runs
  // on the next one anyway. Submissions and scope changes wake a parked
  // handler through noteSubmit()/reactNow().
  if (horizon > cycle + 1) clock_.parkHandler(handlerId_, horizon);
}

void FidelityController::noteSubmit(const bus::Tl1Request& req) {
  const std::uint64_t cycle = clock_.cycle();
  for (RoiTrigger* t : triggers_) t->onSubmit(req, cycle);
  // A submission can change a trigger's answer this very cycle; the
  // controller runs after the masters within the edge, so waking it is
  // enough to evaluate the hit immediately.
  clock_.parkHandler(handlerId_, 0);
}

double FidelityController::modelTotal(Fidelity f) const {
  if (f == Fidelity::Tl1) return pm1_ != nullptr ? pm1_->totalEnergy_fJ() : 0.0;
  return pm2_ != nullptr ? pm2_->totalEnergy_fJ() : 0.0;
}

} // namespace sct::hier
