// Region-of-interest triggers for the adaptive-fidelity controller.
//
// A trigger answers one question every decision cycle: does the run
// currently need cycle-true fidelity? The FidelityController ORs all
// attached triggers (plus the explicit enterRoi()/exitRoi() scope
// depth) and drives HybridBus switches from the result. Triggers also
// publish the next cycle their answer could change, so the controller
// can park its clock handler and keep the TL2 regions' dead-cycle warp
// intact.
//
// Shipped triggers:
//  * AddressWatchTrigger — accesses into watched windows (e.g. the
//    crypto coprocessor's SFR block) arm an ROI for `holdCycles`.
//    The tripping access itself still rides the layer that accepted
//    it; the switch happens at the next quiesce point.
//  * CycleWindowTrigger — a precomputed [begin, end) schedule, for
//    replaying known ROIs (APDU command windows, profiling scripts).
//  * EnergyBudgetTrigger — rolling-window mean current against a
//    SupplySpec budget; sustained draw near the budget drops the run
//    into cycle-true mode so the peak is profiled exactly.
#ifndef SCT_HIER_ROI_TRIGGER_H
#define SCT_HIER_ROI_TRIGGER_H

#include <cstdint>
#include <vector>

#include "bus/ec_request.h"
#include "bus/ec_types.h"
#include "power/budget.h"
#include "sim/clock.h"
#include "sim/time.h"

namespace sct::hier {

class RoiTrigger {
 public:
  virtual ~RoiTrigger() = default;

  /// Does this trigger want cycle-true fidelity at `cycle`? Called once
  /// per controller decision; may advance internal state (window
  /// cursors, rolling accumulators).
  virtual bool wantsRoi(std::uint64_t cycle) = 0;

  /// Earliest future cycle this trigger's answer could change on its
  /// own (sim::Clock::kNeverWake when it is purely input-driven).
  /// Input events — submits, energy — wake the controller anyway.
  virtual std::uint64_t nextDecisionCycle(std::uint64_t /*cycle*/) const {
    return sim::Clock::kNeverWake;
  }

  /// An accepted submission on the hybrid bus.
  virtual void onSubmit(const bus::Tl1Request& /*req*/,
                        std::uint64_t /*cycle*/) {}

  /// Energy accrued by the bus power models since the last feed (fJ).
  virtual void onEnergy(double /*fJ*/, std::uint64_t /*cycle*/) {}
};

/// ROI on accesses into address windows; re-arms on every hit.
class AddressWatchTrigger final : public RoiTrigger {
 public:
  struct Window {
    bus::Address base = 0;
    bus::Address size = 0;
    bool contains(bus::Address a) const { return a - base < size; }
  };

  AddressWatchTrigger(std::vector<Window> windows,
                      std::uint64_t holdCycles = 64)
      : windows_(std::move(windows)), holdCycles_(holdCycles) {}

  bool wantsRoi(std::uint64_t cycle) override { return cycle < armedUntil_; }
  std::uint64_t nextDecisionCycle(std::uint64_t cycle) const override {
    return cycle < armedUntil_ ? armedUntil_ : sim::Clock::kNeverWake;
  }
  void onSubmit(const bus::Tl1Request& req, std::uint64_t cycle) override;

  bool armed(std::uint64_t cycle) const { return cycle < armedUntil_; }
  std::uint64_t hits() const { return hits_; }

 private:
  std::vector<Window> windows_;
  std::uint64_t holdCycles_;
  std::uint64_t armedUntil_ = 0;
  std::uint64_t hits_ = 0;
};

/// ROI inside precomputed cycle windows [begin, end).
class CycleWindowTrigger final : public RoiTrigger {
 public:
  struct Window {
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
  };

  /// Windows are sorted by begin; overlapping windows behave as their
  /// union.
  explicit CycleWindowTrigger(std::vector<Window> windows);

  bool wantsRoi(std::uint64_t cycle) override;
  std::uint64_t nextDecisionCycle(std::uint64_t cycle) const override;

 private:
  std::vector<Window> windows_;
  std::size_t cursor_ = 0;
};

/// ROI when the rolling mean supply current approaches the budget.
class EnergyBudgetTrigger final : public RoiTrigger {
 public:
  /// `chipScale` converts bus-interface energy to the whole-chip
  /// estimate (see power::BudgetChecker); `triggerFraction` of the
  /// spec's current budget is the arming threshold.
  EnergyBudgetTrigger(power::SupplySpec spec, sim::Time clockPeriodPs,
                      double chipScale = 120.0,
                      std::uint64_t windowCycles = 64,
                      double triggerFraction = 0.8,
                      std::uint64_t holdCycles = 256);

  bool wantsRoi(std::uint64_t cycle) override;
  std::uint64_t nextDecisionCycle(std::uint64_t cycle) const override;
  void onEnergy(double fJ, std::uint64_t cycle) override;

  std::uint64_t windowsTripped() const { return windowsTripped_; }

 private:
  power::SupplySpec spec_;
  sim::Time clockPeriodPs_;
  double chipScale_;
  std::uint64_t windowCycles_;
  double triggerFraction_;
  std::uint64_t holdCycles_;

  std::uint64_t windowStart_ = 0;
  double window_fJ_ = 0.0;
  std::uint64_t armedUntil_ = 0;
  std::uint64_t windowsTripped_ = 0;
};

} // namespace sct::hier

#endif // SCT_HIER_ROI_TRIGGER_H
