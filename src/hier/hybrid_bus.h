// Adaptive-fidelity EC bus: runtime TL1 <-> TL2 layer switching.
//
// The paper picks one layer per run and trades accuracy for speed
// (Table 3). Smart-card analysis only needs cycle-accurate power
// inside regions of interest — the SPA/DPA crypto windows, an APDU
// command — so HybridBus owns BOTH models over the same attached
// slaves and hot-swaps the active one at run time: near-TL2 throughput
// outside the ROIs, TL1-exact cycles, signal frames and energy inside
// them. This is the speed/accuracy navigation Kim et al.'s AMBA TLM
// work motivates, applied across the paper's own hierarchy.
//
// Switch protocol (enforced here, driven by the FidelityController):
//  * A switch is requested at any time but only *completes* at a
//    quiesce point: the TL1 bus idle with zero outstanding in every
//    class, the TL2 bus idle, and the bridge drained. Requests made
//    mid-flight are deferred to the next drain.
//  * While a switch is pending the bus refuses new submissions
//    (BusStatus::Wait) so back-to-back masters cannot starve the
//    drain; polls of in-flight transactions pass through untouched.
//  * Finished payloads awaiting master pickup never block a switch —
//    the pickup is served here, layer-independently, exactly like
//    Tl1Bus::submitOrPoll's Finished branch.
//  * The inactive TL1 process is parked (Tl1Bus::suspendProcess), so
//    TL2 regions keep the event-driven clock warp; its power model
//    sees no callbacks, which is what keeps hybrid TL1-region energy
//    accumulation bit-identical to a pure-TL1 run over the same
//    transactions (idle TL1 cycles only ever add +0.0).
#ifndef SCT_HIER_HYBRID_BUS_H
#define SCT_HIER_HYBRID_BUS_H

#include <cstdint>
#include <functional>
#include <string>

#include "bus/ec_interfaces.h"
#include "bus/ec_request.h"
#include "bus/tl1_bus.h"
#include "bus/tl2_bridge.h"
#include "bus/tl2_bus.h"
#include "ckpt/state_io.h"
#include "sim/clock.h"

namespace sct::hier {

/// The two fidelity levels the hybrid bus can run at.
enum class Fidelity : std::uint8_t { Tl1, Tl2 };

constexpr const char* toString(Fidelity f) {
  return f == Fidelity::Tl1 ? "tl1" : "tl2";
}

/// Drop-in replacement for Tl1Bus/BridgedTl2Bus wherever a cycle-true
/// master expects the layer-1 interfaces: SmartCardSoC<hier::HybridBus>
/// and the replay masters run unchanged.
class HybridBus final : public bus::EcInstrIf, public bus::EcDataIf {
 public:
  /// Accepted-submission hook (the FidelityController's address
  /// watchpoints listen here).
  using SubmitHook = std::function<void(const bus::Tl1Request&)>;

  HybridBus(sim::Clock& clock, std::string name,
            Fidelity initial = Fidelity::Tl2);

  /// Register a slave with BOTH layers' decoders (same select index on
  /// each — asserted). The slave's state is shared; only the active
  /// layer ever transfers.
  int attach(bus::EcSlave& slave);

  // EcInstrIf / EcDataIf. Routing: Finished payloads are picked up
  // here (layer-independent), Idle payloads submit to the active layer
  // (refused while a switch is draining), anything else polls the
  // layer that owns it — which is always the active one, because a
  // switch only completes with nothing in flight.
  bus::BusStatus fetch(bus::Tl1Request& req) override;
  bus::BusStatus read(bus::Tl1Request& req) override;
  bus::BusStatus write(bus::Tl1Request& req) override;
  /// Both layers publish stages (TL1 natively, TL2 through the
  /// bridge's sync), so stage-gating masters work in either region.
  bool publishesStage() const override { return true; }
  /// TL2 regions predict completions (so masters park and the clock
  /// warps); TL1 regions answer kFinishUnknown — cycle-true masters
  /// must poll every cycle there, exactly as on a plain Tl1Bus.
  std::uint64_t nextFinishCycle() override;
  /// True: TL2 regions predict, so masters must keep asking even while
  /// a TL1 region answers kFinishUnknown.
  bool predictsFinish() const override { return true; }

  Fidelity active() const { return active_; }

  /// Ask for a layer switch. Completes immediately when already
  /// quiesced (via tryCompleteSwitch), otherwise stays pending until
  /// the next drain; requesting the currently active fidelity cancels
  /// a pending switch.
  void requestSwitch(Fidelity target);
  bool switchPending() const { return switchPending_; }
  Fidelity pendingTarget() const { return pendingTarget_; }

  /// Complete a pending switch if the quiesce condition holds. Returns
  /// true when the switch happened (the caller — normally the
  /// FidelityController — retries every cycle while draining).
  bool tryCompleteSwitch();

  /// The switch precondition: TL1 idle with zero outstanding, TL2 idle
  /// and the bridge drained. Brings the bridge's lazy completions
  /// current first, hence non-const.
  bool quiesced();

  /// Both layers drained (alias of quiesced() for harness symmetry
  /// with the other bus frontends).
  bool idle() { return quiesced(); }

  /// Completed switches so far.
  std::uint64_t switches() const { return switchCount_; }
  /// Wait answers handed to masters because a switch was draining.
  std::uint64_t drainWaitAnswers() const { return drainWaitAnswers_; }

  /// The controller (or a test) taps accepted submissions here; pass
  /// an empty function to detach.
  void setSubmitHook(SubmitHook hook) { submitHook_ = std::move(hook); }

  // The owned layers, for observer attachment (power models, tracers)
  // and stats.
  bus::Tl1Bus& tl1() { return tl1_; }
  const bus::Tl1Bus& tl1() const { return tl1_; }
  bus::Tl2Bus& tl2() { return tl2_; }
  const bus::Tl2Bus& tl2() const { return tl2_; }
  bus::Tl2MasterBridge& bridge() { return bridge_; }

  const std::string& name() const { return name_; }
  std::uint64_t cycle() const { return clock_.cycle(); }

  /// -- Checkpoint (see ckpt/checkpoint.h): both owned layers, the
  /// bridge and the switch bookkeeping, in one section. Only legal at a
  /// quiesce point — the same precondition a fidelity switch needs, so
  /// any cycle a switch could complete is also a snapshot cycle.
  /// Non-const: quiesced() brings the bridge's lazy completions
  /// current. The FidelityController is NOT part of the snapshot;
  /// checkpoint between its regions and re-drive ROIs from the harness.
  static constexpr std::uint32_t kCkptVersion = 1;
  void saveState(ckpt::StateWriter& w);
  void loadState(ckpt::StateReader& r);

 private:
  bus::BusStatus route(bus::Tl1Request& req, bus::Kind kind);

  sim::Clock& clock_;
  std::string name_;
  bus::Tl1Bus tl1_;
  bus::Tl2Bus tl2_;
  bus::Tl2MasterBridge bridge_;
  Fidelity active_;
  Fidelity pendingTarget_;
  bool switchPending_ = false;
  std::uint64_t switchCount_ = 0;
  std::uint64_t drainWaitAnswers_ = 0;
  SubmitHook submitHook_;
};

} // namespace sct::hier

#endif // SCT_HIER_HYBRID_BUS_H
