#include "hier/roi_trigger.h"

#include <algorithm>

namespace sct::hier {

void AddressWatchTrigger::onSubmit(const bus::Tl1Request& req,
                                   std::uint64_t cycle) {
  const bus::Address lo = req.address;
  const bus::Address hi = lo + static_cast<bus::Address>(req.byteCount());
  for (const Window& w : windows_) {
    if (lo < w.base + w.size && w.base < hi) {
      ++hits_;
      const std::uint64_t until = cycle + holdCycles_;
      if (until > armedUntil_) armedUntil_ = until;
      return;
    }
  }
}

CycleWindowTrigger::CycleWindowTrigger(std::vector<Window> windows)
    : windows_(std::move(windows)) {
  std::sort(windows_.begin(), windows_.end(),
            [](const Window& a, const Window& b) { return a.begin < b.begin; });
}

bool CycleWindowTrigger::wantsRoi(std::uint64_t cycle) {
  while (cursor_ < windows_.size() && windows_[cursor_].end <= cycle) {
    ++cursor_;
  }
  return cursor_ < windows_.size() && windows_[cursor_].begin <= cycle;
}

std::uint64_t CycleWindowTrigger::nextDecisionCycle(std::uint64_t cycle) const {
  if (cursor_ >= windows_.size()) return sim::Clock::kNeverWake;
  const Window& w = windows_[cursor_];
  // Inside the window the answer flips at its end; before it, at its
  // begin. Overlapping successors are re-examined on that wake-up.
  const std::uint64_t next = w.begin <= cycle ? w.end : w.begin;
  return next <= cycle ? cycle + 1 : next;
}

EnergyBudgetTrigger::EnergyBudgetTrigger(power::SupplySpec spec,
                                         sim::Time clockPeriodPs,
                                         double chipScale,
                                         std::uint64_t windowCycles,
                                         double triggerFraction,
                                         std::uint64_t holdCycles)
    : spec_(std::move(spec)),
      clockPeriodPs_(clockPeriodPs),
      chipScale_(chipScale),
      windowCycles_(windowCycles == 0 ? 1 : windowCycles),
      triggerFraction_(triggerFraction),
      holdCycles_(holdCycles) {}

bool EnergyBudgetTrigger::wantsRoi(std::uint64_t cycle) {
  if (cycle >= windowStart_ + windowCycles_) {
    const std::uint64_t elapsed = cycle - windowStart_;
    // 1 fJ / 1 ps = 1 µW; scale bus-interface energy up to the chip.
    const double power_uW =
        window_fJ_ * chipScale_ /
        (static_cast<double>(elapsed) * static_cast<double>(clockPeriodPs_));
    const double current_mA = power_uW / (spec_.vdd * 1000.0);
    if (current_mA >= triggerFraction_ * spec_.maxCurrent_mA) {
      ++windowsTripped_;
      const std::uint64_t until = cycle + holdCycles_;
      if (until > armedUntil_) armedUntil_ = until;
    }
    windowStart_ = cycle;
    window_fJ_ = 0.0;
  }
  return cycle < armedUntil_;
}

std::uint64_t EnergyBudgetTrigger::nextDecisionCycle(
    std::uint64_t cycle) const {
  std::uint64_t next = windowStart_ + windowCycles_;
  if (cycle < armedUntil_ && armedUntil_ < next) next = armedUntil_;
  return next <= cycle ? cycle + 1 : next;
}

void EnergyBudgetTrigger::onEnergy(double fJ, std::uint64_t /*cycle*/) {
  window_fJ_ += fJ;
}

} // namespace sct::hier
